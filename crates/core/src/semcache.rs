//! Semantic result cache keyed by `(db_fingerprint, canon_fingerprint)`.
//!
//! Correction runs execute the same SQL over and over: the gold query of
//! a case re-executes every round, candidate repairs are dense with
//! semantically-equal spellings, and serve sessions re-render the same
//! prediction grid after every feedback turn. [`SemanticCache`] turns
//! those repeats into hash lookups with two lanes:
//!
//! * the **semantic lane** serves correctness checks
//!   ([`check_prediction`](fisql_spider::check_prediction)-shaped
//!   executions under unlimited budgets). It is keyed by the canonical
//!   fingerprint ([`fisql_sqlkit::canon_fingerprint`]), so *any*
//!   canonically-equivalent spelling hits. Soundness leans on two
//!   established contracts: the canon soundness proptest (equal
//!   fingerprints ⇒ identical engine results) and the analyzer-agreement
//!   property (analyzer-clean queries execute without error) — the lane
//!   therefore only serves or stores analyzer-clean queries and `Ok`
//!   results, exactly the gate the PR 4 static oracle established for
//!   rewrite-based reasoning (rewrites may erase an erroring
//!   subexpression, so error behaviour is only preserved on queries that
//!   cannot error);
//! * the **exact lane** serves user-visible renders (view grids and
//!   serve-session result frames) under the interactive row budget. It
//!   is keyed by the exact printed SQL, which makes it trivially sound —
//!   byte-identical query text on the same database — so it may cache
//!   `Err` strings too.
//!
//! The cache is deliberately **per-shard** (one per worker thread, one
//! per serve session): no cross-thread state means worker count cannot
//! change which executions hit, and reports stay bit-identical at any
//! worker count. Hit counters are folded into
//! [`RunMetrics`](crate::runner::RunMetrics), which is `#[serde(skip)]`
//! in serialized reports, so cache effectiveness is observable without
//! perturbing replay contracts.

use fisql_engine::{Database, ExecLimits, ResultSet};
use fisql_sqlkit::{check_query, fnv64, print_query, Query, SchemaInfo};
use std::collections::HashMap;

/// Hit/miss accounting for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Engine executions served from cache (both lanes).
    pub hits: u64,
    /// Calls that had to execute the engine (including analyzer-gate
    /// bypasses on the semantic lane).
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-shard semantic + exact result cache. See the module docs for
/// the two lanes and their soundness arguments.
#[derive(Debug, Default)]
pub struct SemanticCache {
    enabled: bool,
    /// Database fingerprints, memoized by database name (corpus
    /// databases are unique by name; the fingerprint content-checks that
    /// assumption cheaply).
    db_fps: HashMap<String, u64>,
    /// Schema introspection memo for the analyzer gate, keyed by db
    /// fingerprint.
    schemas: HashMap<u64, SchemaInfo>,
    /// Canonical-fingerprint memo keyed by exact printed SQL (computing
    /// the canonical form is pure AST work but not free).
    canon_fps: HashMap<u64, u64>,
    /// Semantic lane: `(db_fp, canon_fp)` → unlimited-budget `Ok` rows.
    semantic: HashMap<(u64, u64), ResultSet>,
    /// Exact lane: `(db_fp, print_fp)` → interactive-budget outcome.
    exact: HashMap<(u64, u64), Result<ResultSet, String>>,
    /// Counters.
    pub stats: CacheStats,
}

impl SemanticCache {
    /// A live cache (`enabled = true`) or a transparent pass-through
    /// (`enabled = false`: every call executes, counters stay zero).
    pub fn new(enabled: bool) -> Self {
        SemanticCache {
            enabled,
            ..SemanticCache::default()
        }
    }

    /// Whether this cache serves lookups at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Fingerprint of a database: FNV-1a over its name plus every
    /// table's name, column names, and row count. Cheap (no row data)
    /// but strong enough to content-check the name-uniqueness assumption
    /// the corpus already guarantees.
    pub fn db_fingerprint(db: &Database) -> u64 {
        let mut payload = Vec::new();
        payload.extend_from_slice(db.name.as_bytes());
        for table in &db.tables {
            payload.push(0x1f);
            payload.extend_from_slice(table.name.as_bytes());
            for col in &table.columns {
                payload.push(0x1e);
                payload.extend_from_slice(col.name.as_bytes());
            }
            payload.push(0x1d);
            payload.extend_from_slice(&(table.rows.len() as u64).to_le_bytes());
        }
        fnv64(&payload)
    }

    fn db_fp(&mut self, db: &Database) -> u64 {
        if let Some(fp) = self.db_fps.get(&db.name) {
            return *fp;
        }
        let fp = Self::db_fingerprint(db);
        self.db_fps.insert(db.name.clone(), fp);
        fp
    }

    fn analyzer_clean(&mut self, db_fp: u64, db: &Database, query: &Query) -> bool {
        let schema = self
            .schemas
            .entry(db_fp)
            .or_insert_with(|| db.schema_info());
        !check_query(query, schema).iter().any(|d| d.is_error())
    }

    fn canon_fp(&mut self, print_fp: u64, query: &Query) -> u64 {
        if let Some(fp) = self.canon_fps.get(&print_fp) {
            return *fp;
        }
        let fp = fisql_sqlkit::canon_fingerprint(query);
        self.canon_fps.insert(print_fp, fp);
        fp
    }

    /// Execute under unlimited budgets through the semantic lane.
    ///
    /// Analyzer-clean queries are served by canonical fingerprint and
    /// their `Ok` results stored; analyzer-rejected queries bypass the
    /// lane entirely (their error behaviour is spelling-dependent, which
    /// canonical keying would erase).
    pub fn execute_semantic(&mut self, db: &Database, query: &Query) -> Result<ResultSet, String> {
        if !self.enabled {
            return fisql_engine::execute(db, query).map_err(|e| e.to_string());
        }
        let db_fp = self.db_fp(db);
        if !self.analyzer_clean(db_fp, db, query) {
            self.stats.misses += 1;
            return fisql_engine::execute(db, query).map_err(|e| e.to_string());
        }
        let print_fp = fnv64(print_query(query).as_bytes());
        let canon_fp = self.canon_fp(print_fp, query);
        if let Some(rs) = self.semantic.get(&(db_fp, canon_fp)) {
            self.stats.hits += 1;
            return Ok(rs.clone());
        }
        self.stats.misses += 1;
        let res = fisql_engine::execute(db, query).map_err(|e| e.to_string());
        if let Ok(rs) = &res {
            self.semantic.insert((db_fp, canon_fp), rs.clone());
        }
        res
    }

    /// Execute under the interactive row budget through the exact lane
    /// (byte-identical printed SQL on the same database; errors cached
    /// too). This is the lane user-visible grids render from, so hits
    /// reproduce exactly what a fresh execution would have shown.
    pub fn execute_view(&mut self, db: &Database, query: &Query) -> Result<ResultSet, String> {
        let guard = ExecLimits {
            max_rows: ExecLimits::interactive().max_rows,
            deadline_ms: None,
        };
        if !self.enabled {
            return fisql_engine::execute_with_limits(db, query, guard).map_err(|e| e.to_string());
        }
        let db_fp = self.db_fp(db);
        let print_fp = fnv64(print_query(query).as_bytes());
        if let Some(res) = self.exact.get(&(db_fp, print_fp)) {
            self.stats.hits += 1;
            return res.clone();
        }
        self.stats.misses += 1;
        let res = fisql_engine::execute_with_limits(db, query, guard).map_err(|e| e.to_string());
        self.exact.insert((db_fp, print_fp), res.clone());
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_spider::{build_spider, SpiderConfig};
    use fisql_sqlkit::parse_query;

    fn corpus_db() -> Database {
        build_spider(&SpiderConfig::small(77)).databases[0].clone()
    }

    fn first_table_and_int_col(db: &Database) -> (String, String) {
        for t in &db.tables {
            for c in &t.columns {
                if matches!(c.dtype, fisql_engine::DataType::Int) {
                    return (t.name.clone(), c.name.clone());
                }
            }
        }
        panic!("no int column in corpus db");
    }

    #[test]
    fn semantic_lane_serves_equivalent_spellings() {
        let db = corpus_db();
        let (t, c) = first_table_and_int_col(&db);
        let mut cache = SemanticCache::new(true);
        let a = parse_query(&format!("SELECT {c} FROM {t} WHERE {c} > 1")).unwrap();
        let b = parse_query(&format!("SELECT {c} FROM {t} WHERE NOT ({c} <= 1)")).unwrap();
        let ra = cache.execute_semantic(&db, &a).unwrap();
        assert_eq!(cache.stats, CacheStats { hits: 0, misses: 1 });
        let rb = cache.execute_semantic(&db, &b).unwrap();
        assert_eq!(cache.stats, CacheStats { hits: 1, misses: 1 });
        assert!(fisql_engine::results_match(&ra, &rb));
        // Fresh execution agrees with the served result.
        let fresh = fisql_engine::execute(&db, &b).unwrap();
        assert!(fisql_engine::results_match(&fresh, &rb));
    }

    #[test]
    fn analyzer_rejected_queries_bypass_the_semantic_lane() {
        let db = corpus_db();
        let (t, _) = first_table_and_int_col(&db);
        let mut cache = SemanticCache::new(true);
        let bad = parse_query(&format!("SELECT no_such_column FROM {t}")).unwrap();
        assert!(cache.execute_semantic(&db, &bad).is_err());
        assert!(cache.execute_semantic(&db, &bad).is_err());
        assert_eq!(cache.stats.hits, 0, "error executions are never served");
        assert_eq!(cache.stats.misses, 2);
    }

    #[test]
    fn exact_lane_caches_renders_and_errors() {
        let db = corpus_db();
        let (t, c) = first_table_and_int_col(&db);
        let mut cache = SemanticCache::new(true);
        let q = parse_query(&format!("SELECT {c} FROM {t}")).unwrap();
        let r1 = cache.execute_view(&db, &q);
        let r2 = cache.execute_view(&db, &q);
        assert_eq!(r1, r2);
        assert_eq!(cache.stats, CacheStats { hits: 1, misses: 1 });
        let bad = parse_query(&format!("SELECT nope FROM {t}")).unwrap();
        let e1 = cache.execute_view(&db, &bad);
        let e2 = cache.execute_view(&db, &bad);
        assert!(e1.is_err());
        assert_eq!(e1, e2);
        assert_eq!(cache.stats, CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn disabled_cache_is_transparent() {
        let db = corpus_db();
        let (t, c) = first_table_and_int_col(&db);
        let mut cache = SemanticCache::new(false);
        let q = parse_query(&format!("SELECT {c} FROM {t} WHERE {c} > 0")).unwrap();
        let a = cache.execute_semantic(&db, &q).unwrap();
        let b = cache.execute_semantic(&db, &q).unwrap();
        assert!(fisql_engine::results_match(&a, &b));
        assert_eq!(cache.stats, CacheStats::default());
    }

    #[test]
    fn db_fingerprints_distinguish_corpus_databases() {
        let corpus = build_spider(&SpiderConfig::small(78));
        let mut fps: Vec<u64> = corpus
            .databases
            .iter()
            .map(SemanticCache::db_fingerprint)
            .collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), corpus.databases.len());
    }
}
