//! Conversation sessions: the chat surface of Figures 3-4.
//!
//! A [`Session`] strings Assistant turns and feedback turns together,
//! maintaining the transcript a user of the tool would see. The example
//! binaries use it to replay the paper's walkthroughs, and `fisql serve`
//! hosts one per connected client.
//!
//! The transcript is a stream of typed, serde-serializable
//! [`SessionEvent`]s — the single interaction surface shared by the wire
//! protocol ([`crate::serve::protocol`]), [`Session::render_transcript`],
//! and the test suites. Consumers read structure off the events instead
//! of scraping the rendered chat text.

use crate::assistant::{Assistant, AssistantTurn};
use crate::pipeline::{
    try_incorporate, GateOutcome, IncorporateContext, IncorporateOutcome, Strategy,
};
use fisql_engine::Database;
use fisql_feedback::Feedback;
use fisql_llm::{BackendError, FallibleLanguageModel};
use fisql_spider::Example;
use fisql_sqlkit::Span;
use serde::{Deserialize, Serialize};

/// One event in the session's transcript.
///
/// Every variant is serde-serializable, so the same stream drives the
/// chat rendering, the `fisql serve` wire protocol, and the
/// journal-replay bit-identity checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// Something the user typed.
    User(String),
    /// An Assistant response: the rendered chat bubble plus the SQL it
    /// presented (structured, so consumers never scrape the rendering).
    Assistant {
        /// The rendered four-output bubble (Figure 4).
        rendered: String,
        /// The SQL shown under "[Show source]".
        sql: String,
    },
    /// A feedback turn: the user's utterance plus an optional highlight
    /// over the previously shown SQL.
    Feedback {
        /// The feedback utterance.
        text: String,
        /// Highlighted span of the rendered SQL, if any.
        highlight: Option<Span>,
    },
    /// The static-analysis gate's verdict on one feedback round's
    /// candidate query.
    Gate {
        /// Which feedback round (0-based) produced the candidate.
        round: u64,
        /// The analyzer outcome (diagnostics, repair, executions saved).
        outcome: GateOutcome,
    },
    /// A feedback round whose backend calls failed past the resilience
    /// layer's patience: the session kept the previous round's SQL
    /// instead of crashing (graceful degradation).
    Degraded {
        /// Which feedback round (0-based) degraded.
        round: u64,
        /// The rendered backend error chain (outermost first).
        error: String,
    },
    /// A feedback round whose incorporation *panicked* (a bug in the
    /// backend client or pipeline, not a reported error). The session
    /// contains the panic at the round boundary and keeps the previous
    /// round's SQL, the same recovery shape as [`SessionEvent::Degraded`].
    Crashed {
        /// Which feedback round (0-based) crashed.
        round: u64,
        /// The captured panic message (with source location when known).
        message: String,
    },
}

/// An interactive FISQL session over one database.
pub struct Session<'a> {
    /// The database under conversation.
    pub db: &'a Database,
    /// The Assistant front end.
    pub assistant: Assistant,
    /// The feedback-incorporation strategy.
    pub strategy: Strategy,
    /// The running transcript.
    pub transcript: Vec<SessionEvent>,
    /// The current example and state, once a question was asked.
    state: Option<State>,
    round: u64,
    /// Per-session result cache (exact-print lane): re-presenting the
    /// same SQL — degraded rounds, repeated feedback, replayed questions
    /// — replays the byte-identical grid without re-executing. On by
    /// default; [`Session::semantic_cache`] disables it.
    semcache: crate::semcache::SemanticCache,
}

struct State {
    question: String,
    current: fisql_sqlkit::Query,
}

impl<'a> Session<'a> {
    /// Opens a session (result cache on).
    pub fn new(db: &'a Database, assistant: Assistant, strategy: Strategy) -> Self {
        Session {
            db,
            assistant,
            strategy,
            transcript: Vec::new(),
            state: None,
            round: 0,
            semcache: crate::semcache::SemanticCache::new(true),
        }
    }

    /// Enables or disables the per-session result cache (builder-style;
    /// presented turns are byte-identical either way).
    pub fn semantic_cache(mut self, on: bool) -> Self {
        self.semcache = crate::semcache::SemanticCache::new(on);
        self
    }

    /// Hit/miss counters of the per-session result cache.
    pub fn cache_stats(&self) -> crate::semcache::CacheStats {
        self.semcache.stats
    }

    /// The typed event stream so far.
    pub fn events(&self) -> &[SessionEvent] {
        &self.transcript
    }

    /// The events appended since a cursor previously taken from
    /// `self.events().len()` — how the serve layer streams each turn's
    /// new events to its client.
    pub fn events_since(&self, cursor: usize) -> &[SessionEvent] {
        &self.transcript[cursor.min(self.transcript.len())..]
    }

    /// Feedback rounds taken on the current question (0 before any
    /// feedback; resets when a new question is asked).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether a question is active (i.e. [`Session::ask`] has run).
    pub fn has_question(&self) -> bool {
        self.state.is_some()
    }

    /// Asks the example's question; returns the Assistant's turn.
    pub fn ask(&mut self, example: &Example) -> AssistantTurn {
        self.transcript
            .push(SessionEvent::User(example.question.clone()));
        let assistant = &self.assistant;
        let semcache = &mut self.semcache;
        let turn = assistant.answer_with(self.db, example, 0, |db, q| semcache.execute_view(db, q));
        self.push_assistant(&turn);
        self.state = Some(State {
            question: example.question.clone(),
            current: turn.query.clone(),
        });
        self.round = 0;
        turn
    }

    /// Sends natural-language feedback (optionally with a highlight over
    /// the last shown SQL) through `llm` — the single, backend-generic
    /// feedback entry point. Infallible backends lift through the blanket
    /// [`FallibleLanguageModel`] impl; fallible stacks (a
    /// [`Resilient`](fisql_llm::Resilient) middleware over a remote or
    /// fault-injected client) plug in directly.
    ///
    /// Failure containment is always on: a backend error **degrades** the
    /// round ([`SessionEvent::Degraded`], previous SQL kept) and a panic
    /// in the backend or pipeline is contained at the round boundary
    /// ([`SessionEvent::Crashed`], same recovery shape). The session
    /// never unwinds.
    ///
    /// # Panics
    /// Panics if called before [`Session::ask`].
    pub fn give_feedback<L: FallibleLanguageModel + ?Sized>(
        &mut self,
        llm: &L,
        example: &Example,
        text: &str,
        highlight: Option<Span>,
    ) -> AssistantTurn {
        let state = self.state.as_ref().expect("ask() before give_feedback()");
        self.transcript.push(SessionEvent::Feedback {
            text: text.to_string(),
            highlight,
        });
        let feedback = Feedback {
            text: text.to_string(),
            highlight,
            intended: vec![],
            misaligned: false,
        };
        let round = self.round;
        match crate::isolate::run_isolated(|| {
            try_incorporate(
                self.strategy,
                llm,
                &IncorporateContext {
                    db: self.db,
                    example,
                    question: &state.question,
                    previous: &state.current,
                    feedback: &feedback,
                    round,
                    conformance_gate: false,
                },
            )
        }) {
            Ok(Ok(outcome)) => self.absorb(outcome),
            Ok(Err(err)) => self.degrade(err),
            Err(message) => self.crash(message),
        }
    }

    /// Commits one successful incorporation outcome to the session.
    fn absorb(&mut self, outcome: IncorporateOutcome) -> AssistantTurn {
        let state = self
            .state
            .as_mut()
            .expect("absorb() requires an active question");
        state.current = outcome.query.clone();
        state.question.clone_from(&outcome.question);
        self.transcript.push(SessionEvent::Gate {
            round: self.round,
            outcome: outcome.gate.clone(),
        });
        self.round += 1;
        let turn = self.present_cached(outcome.query, outcome.prompt);
        self.push_assistant(&turn);
        turn
    }

    /// Degrades one feedback round: records the error and re-presents
    /// the previous SQL unchanged.
    fn degrade(&mut self, err: BackendError) -> AssistantTurn {
        self.transcript.push(SessionEvent::Degraded {
            round: self.round,
            error: err.chain(),
        });
        self.repeat_previous()
    }

    /// Contains a panicked feedback round: records the panic message and
    /// re-presents the previous SQL unchanged, exactly like a degrade.
    fn crash(&mut self, message: String) -> AssistantTurn {
        self.transcript.push(SessionEvent::Crashed {
            round: self.round,
            message,
        });
        self.repeat_previous()
    }

    /// Closes a failed round: bumps the round counter and re-presents
    /// the previous round's SQL unchanged.
    fn repeat_previous(&mut self) -> AssistantTurn {
        self.round += 1;
        let current = self
            .state
            .as_ref()
            .expect("a failed round requires an active question")
            .current
            .clone();
        let turn = self.present_cached(current, String::new());
        self.push_assistant(&turn);
        turn
    }

    /// Presents a query through the session's result cache: the render
    /// re-executes only on the first sighting of each exact SQL text.
    fn present_cached(&mut self, query: fisql_sqlkit::Query, prompt: String) -> AssistantTurn {
        let assistant = &self.assistant;
        let semcache = &mut self.semcache;
        assistant.present_with(self.db, query, prompt, vec![], |db, q| {
            semcache.execute_view(db, q)
        })
    }

    /// Appends the structured Assistant event for `turn`.
    fn push_assistant(&mut self, turn: &AssistantTurn) {
        self.transcript.push(SessionEvent::Assistant {
            rendered: Assistant::render_turn(turn),
            sql: turn.sql_text.clone(),
        });
    }

    /// Renders the whole transcript.
    ///
    /// Feedback turns render as user lines; gate events render only when
    /// the analyzer actually found or repaired something (a clean gate is
    /// invisible in the chat, as in the paper's Figure 4).
    pub fn render_transcript(&self) -> String {
        render_events(&self.transcript)
    }
}

/// Renders a [`SessionEvent`] stream the way the chat surface would —
/// shared by [`Session::render_transcript`] and the serve client's
/// transcript dump.
pub fn render_events(events: &[SessionEvent]) -> String {
    let mut out = String::new();
    for event in events {
        match event {
            SessionEvent::User(t) => out.push_str(&format!("User> {t}\n\n")),
            SessionEvent::Assistant { rendered, .. } => {
                out.push_str(&format!("Assistant>\n{rendered}\n"));
            }
            SessionEvent::Feedback { text, .. } => {
                out.push_str(&format!("User> Here is my feedback: {text}\n\n"));
            }
            SessionEvent::Gate { round, outcome } if outcome.has_errors() || outcome.repaired => {
                out.push_str(&format!(
                    "[analyzer] round {round}: {} diagnostic(s){}\n\n",
                    outcome.diagnostics.len(),
                    if outcome.repaired {
                        ", auto-repaired"
                    } else {
                        ""
                    },
                ));
            }
            SessionEvent::Gate { .. } => {}
            SessionEvent::Degraded { round, error } => {
                out.push_str(&format!(
                    "[degraded] round {round}: kept previous SQL ({error})\n\n"
                ));
            }
            SessionEvent::Crashed { round, message } => {
                out.push_str(&format!(
                    "[crashed] round {round}: kept previous SQL ({message})\n\n"
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_llm::{Calibration, FaultConfig, FaultyBackend, LlmConfig, SimLlm};
    use fisql_spider::{build_aep, AepConfig, Corpus, Example};
    use fisql_sqlkit::structurally_equal;

    /// The Figure 4 fixture: a corpus whose first example keeps only its
    /// year-default channel, plus an over-firing model that reliably
    /// produces the wrong-year query.
    fn figure4_fixture() -> (Corpus, Example, SimLlm) {
        let corpus = build_aep(&AepConfig {
            n_examples: 3,
            seed: 44,
        });
        let mut e = corpus.examples[0].clone();
        e.channels.retain(|wc| wc.channel.kind() == "year-default");
        let llm = SimLlm::new(LlmConfig {
            seed: 9,
            calibration: Calibration {
                base_fire_rate: 10.0,
                max_fire_prob: 1.0,
                router_noise: 0.0,
                edit_apply_with_routing: 1.0,
                ..Default::default()
            },
        });
        (corpus, e, llm)
    }

    /// Sums `executions_saved` over the transcript's gate events — the
    /// transcript fold the deprecated `executions_saved()` shim used to
    /// wrap.
    fn saved_from_events(events: &[SessionEvent]) -> u64 {
        events
            .iter()
            .map(|e| match e {
                SessionEvent::Gate { outcome, .. } => outcome.executions_saved,
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn figure4_walkthrough_end_to_end() {
        // Force the Figure 4 failure mode: every channel fires, so the
        // year default lands on 2023.
        let (corpus, e, failing) = figure4_fixture();
        let e = &e;
        let assistant = Assistant {
            llm: failing.clone(),
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(
            corpus.database(e),
            assistant,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        );
        let first = session.ask(e);
        assert!(
            first.sql_text.contains("2023"),
            "expected the wrong-year query, got {}",
            first.sql_text
        );
        let revised = session.give_feedback(&failing, e, "we are in 2024", None);
        assert!(
            structurally_equal(&revised.query, &e.gold),
            "feedback did not fix the query: {}",
            revised.sql_text
        );
        let transcript = session.render_transcript();
        assert!(transcript.contains("Here is my feedback: we are in 2024"));
        assert!(transcript.matches("Assistant>").count() == 2);

        // The feedback turn and the gate verdict are structured events.
        assert!(session.events().iter().any(|e| matches!(
            e,
            SessionEvent::Feedback { text, highlight: None } if text == "we are in 2024"
        )));
        let gates: Vec<_> = session
            .events()
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Gate { round, outcome } => Some((*round, outcome)),
                _ => None,
            })
            .collect();
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].0, 0);

        // The Assistant events carry the presented SQL in structure: the
        // last one matches the revised query without scraping.
        let last_sql = session
            .events()
            .iter()
            .rev()
            .find_map(|e| match e {
                SessionEvent::Assistant { sql, .. } => Some(sql.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_sql, revised.sql_text);
    }

    /// The typed event stream round-trips through serde — the wire
    /// protocol, the session store, and the replay bit-identity checks
    /// all ride on this.
    #[test]
    fn session_events_roundtrip_serde() {
        let (corpus, e, llm) = figure4_fixture();
        let assistant = Assistant {
            llm: llm.clone(),
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(
            corpus.database(&e),
            assistant,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        );
        session.ask(&e);
        session.give_feedback(&llm, &e, "we are in 2024", None);

        let json = serde_json::to_string(&session.transcript).unwrap();
        let back: Vec<SessionEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, session.transcript);
        // The shared renderer agrees with the session's own.
        assert_eq!(render_events(&back), session.render_transcript());
    }

    /// The Figure-4 walkthrough again, but corrected by the static
    /// repair search instead of the prompting pipeline: the session
    /// surface is strategy-agnostic, and `SearchRefine` must fix the
    /// wrong-year query without any model edit application.
    #[test]
    fn search_refine_session_fixes_figure4() {
        let (corpus, e, failing) = figure4_fixture();
        let e = &e;
        let assistant = Assistant {
            llm: failing.clone(),
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(corpus.database(e), assistant, Strategy::SearchRefine);
        let first = session.ask(e);
        assert!(
            first.sql_text.contains("2023"),
            "expected the wrong-year query, got {}",
            first.sql_text
        );
        let revised = session.give_feedback(&failing, e, "we are in 2024", None);
        assert!(
            structurally_equal(&revised.query, &e.gold),
            "search did not fix the query: {}",
            revised.sql_text
        );
    }

    /// Replaying a question restarts the round counter, so gate events
    /// reuse round numbers — the transcript must still hold one gate
    /// event per feedback turn, and the executions-saved fold over it
    /// counts each exactly once.
    #[test]
    fn replayed_questions_keep_one_gate_event_per_feedback_turn() {
        let (corpus, e, llm) = figure4_fixture();
        let assistant = Assistant {
            llm: llm.clone(),
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(
            corpus.database(&e),
            assistant,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        );
        session.ask(&e);
        session.give_feedback(&llm, &e, "we are in 2024", None);
        let after_round_one = saved_from_events(session.events());
        session.give_feedback(&llm, &e, "we are in 2024", None);
        // Replay: re-asking resets the round counter to 0, so the next
        // gate event reuses round number 0 — it must still appear once.
        session.ask(&e);
        session.give_feedback(&llm, &e, "we are in 2024", None);

        let gate_rounds: Vec<u64> = session
            .events()
            .iter()
            .filter_map(|ev| match ev {
                SessionEvent::Gate { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(
            gate_rounds,
            vec![0, 1, 0],
            "one gate event per feedback turn"
        );
        assert!(saved_from_events(session.events()) >= after_round_one);
    }

    /// A degraded round records `SessionEvent::Degraded` — never a gate
    /// event — keeps the previous SQL, and adds nothing to the
    /// executions-saved fold.
    #[test]
    fn degraded_rounds_keep_sql_and_add_no_gate_events() {
        let (corpus, e, llm) = figure4_fixture();
        // Every non-calibration call faults, so incorporation always
        // exhausts into a degrade.
        let broken = FaultyBackend::new(llm.clone(), FaultConfig::uniform(1.0));
        let assistant = Assistant {
            llm,
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(
            corpus.database(&e),
            assistant,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        );
        let first = session.ask(&e);
        let saved_before = saved_from_events(session.events());

        let revised = session.give_feedback(&broken, &e, "we are in 2024", None);
        assert!(
            structurally_equal(&revised.query, &first.query),
            "a degraded round must keep the previous round's SQL"
        );
        let degraded: Vec<u64> = session
            .events()
            .iter()
            .filter_map(|ev| match ev {
                SessionEvent::Degraded { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(degraded, vec![0]);
        assert!(
            !session
                .events()
                .iter()
                .any(|ev| matches!(ev, SessionEvent::Gate { .. })),
            "degraded rounds must not fabricate gate events"
        );
        assert_eq!(saved_from_events(session.events()), saved_before);
        assert!(session
            .render_transcript()
            .contains("[degraded] round 0: kept previous SQL"));
    }

    /// A panicking backend must not unwind through the session: the round
    /// is contained as `SessionEvent::Crashed` and the previous SQL is
    /// kept.
    #[test]
    fn crashed_rounds_are_contained_and_keep_sql() {
        let (corpus, e, llm) = figure4_fixture();
        let crashing = FaultyBackend::new(
            llm.clone(),
            FaultConfig {
                panic: 1.0,
                ..FaultConfig::default()
            },
        );
        let assistant = Assistant {
            llm,
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(
            corpus.database(&e),
            assistant,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        );
        let first = session.ask(&e);
        let revised = session.give_feedback(&crashing, &e, "we are in 2024", None);
        assert!(
            structurally_equal(&revised.query, &first.query),
            "a crashed round must keep the previous round's SQL"
        );
        let crashed: Vec<&str> = session
            .events()
            .iter()
            .filter_map(|ev| match ev {
                SessionEvent::Crashed { round: 0, message } => Some(message.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(crashed.len(), 1);
        assert!(
            crashed[0].contains("injected backend panic"),
            "panic message should survive capture: {}",
            crashed[0]
        );
        assert!(session
            .render_transcript()
            .contains("[crashed] round 0: kept previous SQL"));

        // The session is still usable after containment.
        let healthy = session.assistant.llm.clone();
        let again = session.give_feedback(&healthy, &e, "we are in 2024", None);
        assert!(structurally_equal(&again.query, &e.gold));
    }
}
