//! Conversation sessions: the chat surface of Figures 3-4.
//!
//! A [`Session`] strings Assistant turns and feedback turns together,
//! maintaining the transcript a user of the tool would see. The example
//! binaries use it to replay the paper's walkthroughs.

use crate::assistant::{Assistant, AssistantTurn};
use crate::pipeline::{
    incorporate, try_incorporate, GateOutcome, IncorporateContext, IncorporateOutcome, Strategy,
};
use fisql_engine::Database;
use fisql_feedback::Feedback;
use fisql_llm::{BackendError, FallibleLanguageModel};
use fisql_spider::Example;
use fisql_sqlkit::Span;

/// One event in the chat transcript.
///
/// Feedback turns and analyzer-gate outcomes are structured variants, so
/// consumers read them straight off the transcript instead of through
/// side-channel getters (`last_gate()` / `executions_saved()` are now
/// deprecated shims over these events).
#[derive(Debug, Clone)]
pub enum ChatEvent {
    /// Something the user typed.
    User(String),
    /// An Assistant response (rendered).
    Assistant(String),
    /// A feedback turn: the user's utterance plus an optional highlight
    /// over the previously shown SQL.
    Feedback {
        /// The feedback utterance.
        text: String,
        /// Highlighted span of the rendered SQL, if any.
        highlight: Option<Span>,
    },
    /// The static-analysis gate's verdict on one feedback round's
    /// candidate query.
    Gate {
        /// Which feedback round (0-based) produced the candidate.
        round: u64,
        /// The analyzer outcome (diagnostics, repair, executions saved).
        outcome: GateOutcome,
    },
    /// A feedback round whose backend calls failed past the resilience
    /// layer's patience: the session kept the previous round's SQL
    /// instead of crashing (graceful degradation).
    Degraded {
        /// Which feedback round (0-based) degraded.
        round: u64,
        /// The rendered backend error chain (outermost first).
        error: String,
    },
    /// A feedback round whose incorporation *panicked* (a bug in the
    /// backend client or pipeline, not a reported error). The session
    /// contains the panic at the round boundary and keeps the previous
    /// round's SQL, the same recovery shape as [`ChatEvent::Degraded`].
    Crashed {
        /// Which feedback round (0-based) crashed.
        round: u64,
        /// The captured panic message (with source location when known).
        message: String,
    },
}

/// An interactive FISQL session over one database.
pub struct Session<'a> {
    /// The database under conversation.
    pub db: &'a Database,
    /// The Assistant front end.
    pub assistant: Assistant,
    /// The feedback-incorporation strategy.
    pub strategy: Strategy,
    /// The running transcript.
    pub transcript: Vec<ChatEvent>,
    /// The current example and state, once a question was asked.
    state: Option<State>,
    round: u64,
}

struct State {
    question: String,
    current: fisql_sqlkit::Query,
}

impl<'a> Session<'a> {
    /// Opens a session.
    pub fn new(db: &'a Database, assistant: Assistant, strategy: Strategy) -> Self {
        Session {
            db,
            assistant,
            strategy,
            transcript: Vec::new(),
            state: None,
            round: 0,
        }
    }

    /// Static-analysis gate outcome of the most recent feedback turn.
    #[deprecated(
        since = "0.2.0",
        note = "read `ChatEvent::Gate` events from `Session::transcript`"
    )]
    pub fn last_gate(&self) -> Option<&GateOutcome> {
        self.transcript.iter().rev().find_map(|e| match e {
            ChatEvent::Gate { outcome, .. } => Some(outcome),
            _ => None,
        })
    }

    /// Engine executions the analyzer gate has saved over this session.
    #[deprecated(
        since = "0.2.0",
        note = "sum `outcome.executions_saved` over `ChatEvent::Gate` events in `Session::transcript`"
    )]
    pub fn executions_saved(&self) -> u64 {
        self.transcript
            .iter()
            .map(|e| match e {
                ChatEvent::Gate { outcome, .. } => outcome.executions_saved,
                _ => 0,
            })
            .sum()
    }

    /// Asks the example's question; returns the Assistant's turn.
    pub fn ask(&mut self, example: &Example) -> AssistantTurn {
        self.transcript
            .push(ChatEvent::User(example.question.clone()));
        let turn = self.assistant.answer(self.db, example, 0);
        self.transcript
            .push(ChatEvent::Assistant(Assistant::render_turn(&turn)));
        self.state = Some(State {
            question: example.question.clone(),
            current: turn.query.clone(),
        });
        self.round = 0;
        turn
    }

    /// Sends natural-language feedback (optionally with a highlight over
    /// the last shown SQL); returns the revised Assistant turn.
    ///
    /// # Panics
    /// Panics if called before [`Session::ask`].
    pub fn give_feedback(
        &mut self,
        example: &Example,
        text: &str,
        highlight: Option<Span>,
    ) -> AssistantTurn {
        let state = self.state.as_ref().expect("ask() before give_feedback()");
        self.transcript.push(ChatEvent::Feedback {
            text: text.to_string(),
            highlight,
        });
        let feedback = Feedback {
            text: text.to_string(),
            highlight,
            intended: vec![],
            misaligned: false,
        };
        let outcome = incorporate(
            self.strategy,
            &self.assistant.llm,
            &IncorporateContext {
                db: self.db,
                example,
                question: &state.question,
                previous: &state.current,
                feedback: &feedback,
                round: self.round,
                conformance_gate: false,
            },
        );
        self.absorb(outcome)
    }

    /// Sends feedback through an *external fallible backend* (a
    /// [`Resilient`](fisql_llm::Resilient) stack over a remote client,
    /// or a fault-injected chaos backend) instead of the Assistant's own
    /// infallible model.
    ///
    /// On a backend error the round **degrades** instead of panicking:
    /// the previous round's SQL is kept, a [`ChatEvent::Degraded`] event
    /// records the error chain, and the Assistant re-presents the
    /// unchanged query.
    ///
    /// # Panics
    /// Panics if called before [`Session::ask`].
    pub fn give_feedback_via<L: FallibleLanguageModel + ?Sized>(
        &mut self,
        llm: &L,
        example: &Example,
        text: &str,
        highlight: Option<Span>,
    ) -> AssistantTurn {
        let state = self
            .state
            .as_ref()
            .expect("ask() before give_feedback_via()");
        self.transcript.push(ChatEvent::Feedback {
            text: text.to_string(),
            highlight,
        });
        let feedback = Feedback {
            text: text.to_string(),
            highlight,
            intended: vec![],
            misaligned: false,
        };
        let round = self.round;
        match crate::isolate::run_isolated(|| {
            try_incorporate(
                self.strategy,
                llm,
                &IncorporateContext {
                    db: self.db,
                    example,
                    question: &state.question,
                    previous: &state.current,
                    feedback: &feedback,
                    round,
                    conformance_gate: false,
                },
            )
        }) {
            Ok(Ok(outcome)) => self.absorb(outcome),
            Ok(Err(err)) => self.degrade(err),
            Err(message) => self.crash(message),
        }
    }

    /// Commits one successful incorporation outcome to the session.
    fn absorb(&mut self, outcome: IncorporateOutcome) -> AssistantTurn {
        let state = self
            .state
            .as_mut()
            .expect("absorb() requires an active question");
        state.current = outcome.query.clone();
        state.question = outcome.question.clone();
        self.transcript.push(ChatEvent::Gate {
            round: self.round,
            outcome: outcome.gate.clone(),
        });
        self.round += 1;
        let turn = self
            .assistant
            .present(self.db, outcome.query, outcome.prompt, vec![]);
        self.transcript
            .push(ChatEvent::Assistant(Assistant::render_turn(&turn)));
        turn
    }

    /// Degrades one feedback round: records the error and re-presents
    /// the previous SQL unchanged.
    fn degrade(&mut self, err: BackendError) -> AssistantTurn {
        self.transcript.push(ChatEvent::Degraded {
            round: self.round,
            error: err.chain(),
        });
        self.round += 1;
        let current = self
            .state
            .as_ref()
            .expect("degrade() requires an active question")
            .current
            .clone();
        let turn = self
            .assistant
            .present(self.db, current, String::new(), vec![]);
        self.transcript
            .push(ChatEvent::Assistant(Assistant::render_turn(&turn)));
        turn
    }

    /// Contains a panicked feedback round: records the panic message and
    /// re-presents the previous SQL unchanged, exactly like a degrade.
    fn crash(&mut self, message: String) -> AssistantTurn {
        self.transcript.push(ChatEvent::Crashed {
            round: self.round,
            message,
        });
        self.round += 1;
        let current = self
            .state
            .as_ref()
            .expect("crash() requires an active question")
            .current
            .clone();
        let turn = self
            .assistant
            .present(self.db, current, String::new(), vec![]);
        self.transcript
            .push(ChatEvent::Assistant(Assistant::render_turn(&turn)));
        turn
    }

    /// Renders the whole transcript.
    ///
    /// Feedback turns render as user lines; gate events render only when
    /// the analyzer actually found or repaired something (a clean gate is
    /// invisible in the chat, as in the paper's Figure 4).
    pub fn render_transcript(&self) -> String {
        let mut out = String::new();
        for event in &self.transcript {
            match event {
                ChatEvent::User(t) => out.push_str(&format!("User> {t}\n\n")),
                ChatEvent::Assistant(t) => out.push_str(&format!("Assistant>\n{t}\n")),
                ChatEvent::Feedback { text, .. } => {
                    out.push_str(&format!("User> Here is my feedback: {text}\n\n"));
                }
                ChatEvent::Gate { round, outcome } if outcome.has_errors() || outcome.repaired => {
                    out.push_str(&format!(
                        "[analyzer] round {round}: {} diagnostic(s){}\n\n",
                        outcome.diagnostics.len(),
                        if outcome.repaired {
                            ", auto-repaired"
                        } else {
                            ""
                        },
                    ));
                }
                ChatEvent::Gate { .. } => {}
                ChatEvent::Degraded { round, error } => {
                    out.push_str(&format!(
                        "[degraded] round {round}: kept previous SQL ({error})\n\n"
                    ));
                }
                ChatEvent::Crashed { round, message } => {
                    out.push_str(&format!(
                        "[crashed] round {round}: kept previous SQL ({message})\n\n"
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_llm::{Calibration, FaultConfig, FaultyBackend, LlmConfig, SimLlm};
    use fisql_spider::{build_aep, AepConfig, Corpus, Example};
    use fisql_sqlkit::structurally_equal;

    /// The Figure 4 fixture: a corpus whose first example keeps only its
    /// year-default channel, plus an over-firing model that reliably
    /// produces the wrong-year query.
    fn figure4_fixture() -> (Corpus, Example, SimLlm) {
        let corpus = build_aep(&AepConfig {
            n_examples: 3,
            seed: 44,
        });
        let mut e = corpus.examples[0].clone();
        e.channels.retain(|wc| wc.channel.kind() == "year-default");
        let llm = SimLlm::new(LlmConfig {
            seed: 9,
            calibration: Calibration {
                base_fire_rate: 10.0,
                max_fire_prob: 1.0,
                router_noise: 0.0,
                edit_apply_with_routing: 1.0,
                ..Default::default()
            },
        });
        (corpus, e, llm)
    }

    #[test]
    fn figure4_walkthrough_end_to_end() {
        // Force the Figure 4 failure mode: every channel fires, so the
        // year default lands on 2023.
        let (corpus, e, failing) = figure4_fixture();
        let e = &e;
        let assistant = Assistant {
            llm: failing,
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(
            corpus.database(e),
            assistant,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        );
        let first = session.ask(e);
        assert!(
            first.sql_text.contains("2023"),
            "expected the wrong-year query, got {}",
            first.sql_text
        );
        let revised = session.give_feedback(e, "we are in 2024", None);
        assert!(
            structurally_equal(&revised.query, &e.gold),
            "feedback did not fix the query: {}",
            revised.sql_text
        );
        let transcript = session.render_transcript();
        assert!(transcript.contains("Here is my feedback: we are in 2024"));
        assert!(transcript.matches("Assistant>").count() == 2);

        // The feedback turn and the gate verdict are structured events.
        assert!(session.transcript.iter().any(|e| matches!(
            e,
            ChatEvent::Feedback { text, highlight: None } if text == "we are in 2024"
        )));
        let gates: Vec<_> = session
            .transcript
            .iter()
            .filter_map(|e| match e {
                ChatEvent::Gate { round, outcome } => Some((*round, outcome)),
                _ => None,
            })
            .collect();
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].0, 0);

        // The deprecated getters agree with the transcript events.
        #[allow(deprecated)]
        {
            assert_eq!(
                session.last_gate().map(|g| g.executions_saved),
                Some(gates[0].1.executions_saved)
            );
            assert_eq!(session.executions_saved(), gates[0].1.executions_saved);
        }
    }

    /// The Figure-4 walkthrough again, but corrected by the static
    /// repair search instead of the prompting pipeline: the session
    /// surface is strategy-agnostic, and `SearchRefine` must fix the
    /// wrong-year query without any model edit application.
    #[test]
    fn search_refine_session_fixes_figure4() {
        let (corpus, e, failing) = figure4_fixture();
        let e = &e;
        let assistant = Assistant {
            llm: failing,
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(corpus.database(e), assistant, Strategy::SearchRefine);
        let first = session.ask(e);
        assert!(
            first.sql_text.contains("2023"),
            "expected the wrong-year query, got {}",
            first.sql_text
        );
        let revised = session.give_feedback(e, "we are in 2024", None);
        assert!(
            structurally_equal(&revised.query, &e.gold),
            "search did not fix the query: {}",
            revised.sql_text
        );
    }

    /// Regression: replaying a question after a deprecated-shim call used
    /// to double-count gate events. `executions_saved()` must be a pure
    /// fold over the transcript — idempotent, unaffected by interleaved
    /// shim reads, counting each `ChatEvent::Gate` exactly once even when
    /// `ask()` restarts the round counter at 0.
    #[test]
    fn replay_after_shim_call_does_not_double_count_gates() {
        let (corpus, e, llm) = figure4_fixture();
        let assistant = Assistant {
            llm,
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(
            corpus.database(&e),
            assistant,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        );
        session.ask(&e);
        session.give_feedback(&e, "we are in 2024", None);

        // A shim read between rounds must not mutate any counter.
        #[allow(deprecated)]
        let after_round_one = {
            let _ = session.last_gate();
            session.executions_saved()
        };

        session.give_feedback(&e, "we are in 2024", None);
        // Replay: re-asking resets the round counter to 0, so the next
        // gate event reuses round number 0 — it must still count once.
        session.ask(&e);
        session.give_feedback(&e, "we are in 2024", None);

        let gate_rounds: Vec<u64> = session
            .transcript
            .iter()
            .filter_map(|ev| match ev {
                ChatEvent::Gate { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(
            gate_rounds,
            vec![0, 1, 0],
            "one gate event per feedback turn"
        );

        let expected: u64 = session
            .transcript
            .iter()
            .filter_map(|ev| match ev {
                ChatEvent::Gate { outcome, .. } => Some(outcome.executions_saved),
                _ => None,
            })
            .sum();
        #[allow(deprecated)]
        {
            assert_eq!(
                session.executions_saved(),
                expected,
                "each gate event must be counted exactly once"
            );
            assert_eq!(
                session.executions_saved(),
                session.executions_saved(),
                "the shim must be idempotent"
            );
            assert!(session.executions_saved() >= after_round_one);
        }
    }

    /// A degraded round records `ChatEvent::Degraded` — never a gate
    /// event — keeps the previous SQL, and leaves `executions_saved()`
    /// untouched.
    #[test]
    fn degraded_rounds_keep_sql_and_add_no_gate_events() {
        let (corpus, e, llm) = figure4_fixture();
        // Every non-calibration call faults, so incorporation always
        // exhausts into a degrade.
        let broken = FaultyBackend::new(llm.clone(), FaultConfig::uniform(1.0));
        let assistant = Assistant {
            llm,
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(
            corpus.database(&e),
            assistant,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        );
        let first = session.ask(&e);
        #[allow(deprecated)]
        let saved_before = session.executions_saved();

        let revised = session.give_feedback_via(&broken, &e, "we are in 2024", None);
        assert!(
            structurally_equal(&revised.query, &first.query),
            "a degraded round must keep the previous round's SQL"
        );
        let degraded: Vec<u64> = session
            .transcript
            .iter()
            .filter_map(|ev| match ev {
                ChatEvent::Degraded { round, .. } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(degraded, vec![0]);
        assert!(
            !session
                .transcript
                .iter()
                .any(|ev| matches!(ev, ChatEvent::Gate { .. })),
            "degraded rounds must not fabricate gate events"
        );
        #[allow(deprecated)]
        {
            assert_eq!(session.executions_saved(), saved_before);
        }
        assert!(session
            .render_transcript()
            .contains("[degraded] round 0: kept previous SQL"));
    }

    /// A panicking backend must not unwind through the session: the round
    /// is contained as `ChatEvent::Crashed` and the previous SQL is kept.
    #[test]
    fn crashed_rounds_are_contained_and_keep_sql() {
        let (corpus, e, llm) = figure4_fixture();
        let crashing = FaultyBackend::new(
            llm.clone(),
            FaultConfig {
                panic: 1.0,
                ..FaultConfig::default()
            },
        );
        let assistant = Assistant {
            llm,
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(
            corpus.database(&e),
            assistant,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        );
        let first = session.ask(&e);
        let revised = session.give_feedback_via(&crashing, &e, "we are in 2024", None);
        assert!(
            structurally_equal(&revised.query, &first.query),
            "a crashed round must keep the previous round's SQL"
        );
        let crashed: Vec<&str> = session
            .transcript
            .iter()
            .filter_map(|ev| match ev {
                ChatEvent::Crashed { round: 0, message } => Some(message.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(crashed.len(), 1);
        assert!(
            crashed[0].contains("injected backend panic"),
            "panic message should survive capture: {}",
            crashed[0]
        );
        assert!(session
            .render_transcript()
            .contains("[crashed] round 0: kept previous SQL"));

        // The session is still usable after containment.
        let healthy = session.assistant.llm.clone();
        let again = session.give_feedback_via(&healthy, &e, "we are in 2024", None);
        assert!(structurally_equal(&again.query, &e.gold));
    }
}
