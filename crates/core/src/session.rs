//! Conversation sessions: the chat surface of Figures 3-4.
//!
//! A [`Session`] strings Assistant turns and feedback turns together,
//! maintaining the transcript a user of the tool would see. The example
//! binaries use it to replay the paper's walkthroughs.

use crate::assistant::{Assistant, AssistantTurn};
use crate::pipeline::{incorporate, GateOutcome, IncorporateContext, Strategy};
use fisql_engine::Database;
use fisql_feedback::Feedback;
use fisql_spider::Example;
use fisql_sqlkit::Span;

/// One event in the chat transcript.
#[derive(Debug, Clone)]
pub enum ChatEvent {
    /// Something the user typed.
    User(String),
    /// An Assistant response (rendered).
    Assistant(String),
}

/// An interactive FISQL session over one database.
pub struct Session<'a> {
    /// The database under conversation.
    pub db: &'a Database,
    /// The Assistant front end.
    pub assistant: Assistant,
    /// The feedback-incorporation strategy.
    pub strategy: Strategy,
    /// The running transcript.
    pub transcript: Vec<ChatEvent>,
    /// The current example and state, once a question was asked.
    state: Option<State>,
    round: u64,
    last_gate: Option<GateOutcome>,
    executions_saved: u64,
}

struct State {
    question: String,
    current: fisql_sqlkit::Query,
}

impl<'a> Session<'a> {
    /// Opens a session.
    pub fn new(db: &'a Database, assistant: Assistant, strategy: Strategy) -> Self {
        Session {
            db,
            assistant,
            strategy,
            transcript: Vec::new(),
            state: None,
            round: 0,
            last_gate: None,
            executions_saved: 0,
        }
    }

    /// Static-analysis gate outcome of the most recent feedback turn.
    pub fn last_gate(&self) -> Option<&GateOutcome> {
        self.last_gate.as_ref()
    }

    /// Engine executions the analyzer gate has saved over this session.
    pub fn executions_saved(&self) -> u64 {
        self.executions_saved
    }

    /// Asks the example's question; returns the Assistant's turn.
    pub fn ask(&mut self, example: &Example) -> AssistantTurn {
        self.transcript
            .push(ChatEvent::User(example.question.clone()));
        let turn = self.assistant.answer(self.db, example, 0);
        self.transcript
            .push(ChatEvent::Assistant(Assistant::render_turn(&turn)));
        self.state = Some(State {
            question: example.question.clone(),
            current: turn.query.clone(),
        });
        self.round = 0;
        turn
    }

    /// Sends natural-language feedback (optionally with a highlight over
    /// the last shown SQL); returns the revised Assistant turn.
    ///
    /// # Panics
    /// Panics if called before [`Session::ask`].
    pub fn give_feedback(
        &mut self,
        example: &Example,
        text: &str,
        highlight: Option<Span>,
    ) -> AssistantTurn {
        let state = self.state.as_mut().expect("ask() before give_feedback()");
        self.transcript
            .push(ChatEvent::User(format!("Here is my feedback: {text}")));
        let feedback = Feedback {
            text: text.to_string(),
            highlight,
            intended: vec![],
            misaligned: false,
        };
        let outcome = incorporate(
            self.strategy,
            &self.assistant.llm,
            &IncorporateContext {
                db: self.db,
                example,
                question: &state.question,
                previous: &state.current,
                feedback: &feedback,
                round: self.round,
            },
        );
        self.round += 1;
        state.current = outcome.query.clone();
        state.question = outcome.question.clone();
        self.executions_saved += outcome.gate.executions_saved;
        self.last_gate = Some(outcome.gate.clone());
        let turn = self
            .assistant
            .present(self.db, outcome.query, outcome.prompt, vec![]);
        self.transcript
            .push(ChatEvent::Assistant(Assistant::render_turn(&turn)));
        turn
    }

    /// Renders the whole transcript.
    pub fn render_transcript(&self) -> String {
        let mut out = String::new();
        for event in &self.transcript {
            match event {
                ChatEvent::User(t) => out.push_str(&format!("User> {t}\n\n")),
                ChatEvent::Assistant(t) => out.push_str(&format!("Assistant>\n{t}\n")),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_llm::{Calibration, LlmConfig, SimLlm};
    use fisql_spider::{build_aep, AepConfig};
    use fisql_sqlkit::structurally_equal;

    #[test]
    fn figure4_walkthrough_end_to_end() {
        let corpus = build_aep(&AepConfig {
            n_examples: 3,
            seed: 44,
        });
        let mut e = corpus.examples[0].clone();
        // Keep only the year-default channel so the forced failure is
        // exactly the Figure 4 misunderstanding.
        e.channels.retain(|wc| wc.channel.kind() == "year-default");
        let e = &e;
        // Force the Figure 4 failure mode: every channel fires, so the
        // year default lands on 2023.
        let failing = SimLlm::new(LlmConfig {
            seed: 9,
            calibration: Calibration {
                base_fire_rate: 10.0,
                max_fire_prob: 1.0,
                router_noise: 0.0,
                edit_apply_with_routing: 1.0,
                ..Default::default()
            },
        });
        let assistant = Assistant {
            llm: failing,
            store: fisql_llm::DemoStore::new(vec![]),
            demos_k: 0,
        };
        let mut session = Session::new(
            corpus.database(e),
            assistant,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        );
        let first = session.ask(e);
        assert!(
            first.sql_text.contains("2023"),
            "expected the wrong-year query, got {}",
            first.sql_text
        );
        let revised = session.give_feedback(e, "we are in 2024", None);
        assert!(
            structurally_equal(&revised.query, &e.gold),
            "feedback did not fix the query: {}",
            revised.sql_text
        );
        let transcript = session.render_transcript();
        assert!(transcript.contains("Here is my feedback: we are in 2024"));
        assert!(transcript.matches("Assistant>").count() == 2);
    }
}
