//! Parallel, sharded evaluation runner (the builder-style experiment API).
//!
//! [`CorrectionRun`] is the single entry point for the §4.1/§4.2
//! correction experiments:
//!
//! ```no_run
//! # use fisql_core::runner::CorrectionRun;
//! # use fisql_core::pipeline::Strategy;
//! # let (corpus, llm, user) = unimplemented!();
//! let run = CorrectionRun::new(&corpus, &llm, &user)
//!     .strategy(Strategy::Fisql { routing: true, highlighting: false })
//!     .rounds(3)
//!     .workers(4);
//! let errors = run.collect_errors();
//! let annotated = run.annotate(&errors);
//! let report = run.run(&annotated);
//! ```
//!
//! # Sharding and determinism
//!
//! Cases are split into contiguous chunks, one per worker, and each chunk
//! is evaluated on its own scoped thread ([`std::thread::scope`], so the
//! corpus, model, and user are plain borrows — no `Arc` plumbing).
//! Per-case work is *order-independent by construction*: every random
//! draw in the simulated model and user derives from a pure hash of
//! (component seed, example id, round), never from shared mutable state,
//! and the merged report is a sum of per-case outcomes. Chunks are merged
//! in shard order, so the report is **bit-identical to the serial driver
//! at any worker count** — asserted by this module's tests and
//! `tests/concurrency.rs`.
//!
//! The only thread-count-dependent observables are throughput numbers
//! (wall time, cache hit counters), which are quarantined in
//! [`RunMetrics`] and excluded from report serialization.

use crate::assistant::Assistant;
use crate::experiment::{build_view, AnnotatedCase, CorrectionReport, ErrorCase};
use crate::pipeline::{try_incorporate, IncorporateContext, Strategy};
use fisql_feedback::SimUser;
use fisql_llm::{cache, AgreementStats, FallibleLanguageModel, ResilienceStats, SimLlm};
use fisql_spider::{check_prediction, Corpus, Verdict};
use fisql_sqlkit::{normalize_query, print_query_spanned};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Environment variable overriding the default worker count (used by CI
/// to exercise the suite serially and sharded).
pub const WORKERS_ENV: &str = "FISQL_WORKERS";

/// Everything a correction experiment is parameterized by.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Feedback-incorporation strategy under test.
    pub strategy: Strategy,
    /// Feedback rounds per case (the paper's Figure 8 x-axis).
    pub rounds: usize,
    /// Experiment seed recorded with the run (per-component seeds live in
    /// the model/user configs; this labels the run as a whole).
    pub seed: u64,
    /// Worker threads for sharded evaluation. `0` means "auto": use
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Demonstrations retrieved per prompt for error collection.
    pub demos_k: usize,
    /// Static equivalence oracle: skip the engine correctness check when
    /// a candidate is provably equivalent to a query this case already
    /// executed and found incorrect (counts into
    /// `executions_skipped_static`). Sound by construction — the oracle
    /// only ever reuses verdicts of queries that executed without error.
    #[serde(default = "default_true")]
    pub static_oracle: bool,
    /// Feedback-conformance gate in the incorporation pipeline (see
    /// [`crate::pipeline::ConformanceReport`]).
    #[serde(default)]
    pub conformance_gate: bool,
}

fn default_true() -> bool {
    true
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            strategy: Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            rounds: 1,
            seed: 0xF15C,
            workers: workers_from_env(),
            demos_k: 3,
            static_oracle: default_true(),
            conformance_gate: false,
        }
    }
}

impl ExperimentConfig {
    /// Resolves `workers` to a concrete thread count for `n_items` work
    /// items: `0` becomes the machine's available parallelism, and the
    /// count never exceeds the number of items (and never drops below 1).
    pub fn effective_workers(&self, n_items: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        };
        requested.clamp(1, n_items.max(1))
    }
}

/// Reads [`WORKERS_ENV`]; unset, empty, or unparsable means `0` (auto).
pub fn workers_from_env() -> usize {
    std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Throughput metrics for one runner invocation.
///
/// These are the *volatile* observables — wall time and cache counters
/// legitimately vary with thread count and machine load — kept apart from
/// the deterministic report fields (and skipped during serialization of
/// [`CorrectionReport`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock time of the sharded evaluation, milliseconds.
    pub wall_ms: f64,
    /// Cases evaluated per second of wall time.
    pub cases_per_sec: f64,
    /// Engine executions attributable to the evaluation loop (user-view
    /// renders and correctness checks; deterministic).
    pub engine_executions: u64,
    /// Retrieval/embedding cache hits during the run (process-wide delta).
    pub cache_hits: u64,
    /// Retrieval/embedding cache misses during the run.
    pub cache_misses: u64,
    /// Resilience-layer telemetry deltas for the run (attempts, retries,
    /// breaker trips, fast-fails, …). All zeros when the backend exposes
    /// no resilience middleware.
    pub resilience: ResilienceStats,
    /// Router-vs-realized conformance telemetry (all zeros when the
    /// conformance gate is off). The serialized report carries the same
    /// totals in its own counter fields; this copy rides with the other
    /// run-level telemetry for programmatic access.
    pub agreement: AgreementStats,
}

impl RunMetrics {
    /// Cache hits as a fraction of all cache lookups during the run.
    pub fn cache_hit_rate(&self) -> f64 {
        cache::CacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
        }
        .hit_rate()
    }

    fn finish(
        workers: usize,
        n_cases: usize,
        started: Instant,
        before: cache::CacheStats,
        engine_executions: u64,
        resilience: ResilienceStats,
    ) -> RunMetrics {
        let wall = started.elapsed();
        let delta = cache::global_stats().since(&before);
        let secs = wall.as_secs_f64();
        RunMetrics {
            workers,
            wall_ms: secs * 1e3,
            cases_per_sec: if secs > 0.0 {
                n_cases as f64 / secs
            } else {
                0.0
            },
            engine_executions,
            cache_hits: delta.hits,
            cache_misses: delta.misses,
            resilience,
            agreement: AgreementStats::default(),
        }
    }
}

/// What one case contributes to the merged report. Summing these in any
/// order yields the same totals, which is what makes sharding free.
struct CaseOutcome {
    corrected_at: Option<usize>,
    statically_flagged: usize,
    executions_saved: u64,
    engine_executions: u64,
    degraded_rounds: u64,
    executions_skipped_static: u64,
    agreement: AgreementStats,
}

/// Builder for the correction experiment (see the module docs).
///
/// Generic over the *fallible* backend surface, so the simulated model
/// (via the blanket lift), a fault-injected chaos stack, or a real
/// remote client all drive the same runner;
/// [`collect_errors`](CorrectionRun::collect_errors) alone is specific
/// to [`SimLlm`] because the Assistant front end is.
///
/// When a backend call fails past the resilience layer, the affected
/// round **degrades** — the case keeps its previous SQL and moves on —
/// and the merged report counts degraded rounds/cases. The runner calls
/// [`FallibleLanguageModel::begin_session`] at the start of every case,
/// so circuit-breaker and deadline state is per-case and the report
/// stays bit-identical at any worker count even under injected faults.
#[derive(Debug)]
pub struct CorrectionRun<'a, L: FallibleLanguageModel + ?Sized = SimLlm> {
    corpus: &'a Corpus,
    llm: &'a L,
    user: &'a SimUser,
    cfg: ExperimentConfig,
}

// Manual Clone/Copy: derives would bound `L: Clone`/`L: Copy`, but only
// references to `L` are stored.
impl<'a, L: FallibleLanguageModel + ?Sized> Clone for CorrectionRun<'a, L> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, L: FallibleLanguageModel + ?Sized> Copy for CorrectionRun<'a, L> {}

impl<'a, L: FallibleLanguageModel + ?Sized> CorrectionRun<'a, L> {
    /// Starts a run over `corpus` with the default
    /// [`ExperimentConfig`].
    pub fn new(corpus: &'a Corpus, llm: &'a L, user: &'a SimUser) -> Self {
        CorrectionRun {
            corpus,
            llm,
            user,
            cfg: ExperimentConfig::default(),
        }
    }

    /// Sets the feedback-incorporation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Sets the number of feedback rounds.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.cfg.rounds = rounds;
        self
    }

    /// Sets the recorded experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Sets the demonstrations-per-prompt for error collection.
    pub fn demos_k(mut self, demos_k: usize) -> Self {
        self.cfg.demos_k = demos_k;
        self
    }

    /// Enables or disables the static equivalence oracle.
    pub fn static_oracle(mut self, on: bool) -> Self {
        self.cfg.static_oracle = on;
        self
    }

    /// Enables or disables the feedback-conformance gate.
    pub fn conformance_gate(mut self, on: bool) -> Self {
        self.cfg.conformance_gate = on;
        self
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, cfg: ExperimentConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The current configuration.
    pub fn current_config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Asks the simulated user for feedback on every error; keeps the
    /// annotatable subset (the paper's 101-of-243). Sharded like
    /// [`run`](CorrectionRun::run); output order matches input order.
    pub fn annotate(&self, errors: &[ErrorCase]) -> Vec<AnnotatedCase> {
        let annotate_one = |err: &ErrorCase| -> Option<AnnotatedCase> {
            let example = &self.corpus.examples[err.example_idx];
            let db = self.corpus.database(example);
            let view = build_view(db, example, &err.initial);
            self.user
                .feedback(example, &err.initial, &view, 0)
                .map(|feedback| AnnotatedCase {
                    error: err.clone(),
                    feedback,
                })
        };
        shard_map(
            errors,
            self.cfg.effective_workers(errors.len()),
            annotate_one,
        )
        .into_iter()
        .flatten()
        .collect()
    }

    /// Runs the multi-round correction protocol (§4.2, Figure 8) for the
    /// configured strategy over the annotated cases, sharded across the
    /// configured worker count. The returned report is bit-identical at
    /// any worker count; only [`CorrectionReport::metrics`] varies.
    pub fn run(&self, cases: &[AnnotatedCase]) -> CorrectionReport {
        let started = Instant::now();
        let cache_before = cache::global_stats();
        let resilience_before = self.llm.resilience_stats().unwrap_or_default();
        let workers = self.cfg.effective_workers(cases.len());

        let outcomes = shard_map(cases, workers, |case| self.run_case(case));

        let mut corrected_after_round = vec![0usize; self.cfg.rounds];
        let mut statically_flagged = 0usize;
        let mut executions_saved = 0u64;
        let mut engine_executions = 0u64;
        let mut degraded_rounds = 0u64;
        let mut cases_degraded = 0usize;
        let mut executions_skipped_static = 0u64;
        let mut agreement = AgreementStats::default();
        for outcome in &outcomes {
            statically_flagged += outcome.statically_flagged;
            executions_saved += outcome.executions_saved;
            engine_executions += outcome.engine_executions;
            degraded_rounds += outcome.degraded_rounds;
            cases_degraded += usize::from(outcome.degraded_rounds > 0);
            executions_skipped_static += outcome.executions_skipped_static;
            agreement.merge(&outcome.agreement);
            if let Some(r) = outcome.corrected_at {
                for slot in corrected_after_round.iter_mut().skip(r) {
                    *slot += 1;
                }
            }
        }
        let resilience = self
            .llm
            .resilience_stats()
            .unwrap_or_default()
            .since(&resilience_before);
        let mut metrics = RunMetrics::finish(
            workers,
            cases.len(),
            started,
            cache_before,
            engine_executions,
            resilience,
        );
        metrics.agreement = agreement;
        CorrectionReport {
            strategy: self.cfg.strategy.name().to_string(),
            total: cases.len(),
            corrected_after_round,
            statically_flagged,
            executions_saved,
            degraded_rounds,
            cases_degraded,
            executions_skipped_static,
            router_realized_agreements: agreement.agreements,
            router_realized_disagreements: agreement.disagreements(),
            conformance_retries: agreement.retries,
            metrics,
        }
    }

    /// One case's multi-round correction loop — the unit of sharding.
    fn run_case(&self, case: &AnnotatedCase) -> CaseOutcome {
        // One case = one resilience session: the backend resets its
        // per-session breaker/deadline state here, on this worker's
        // thread, so failure handling depends only on this case's own
        // call history (the sharding-invariance contract).
        self.llm.begin_session();
        let example = &self.corpus.examples[case.error.example_idx];
        let db = self.corpus.database(example);
        let mut current = normalize_query(&case.error.initial);
        let mut question = example.question.clone();
        let mut outcome = CaseOutcome {
            corrected_at: None,
            statically_flagged: 0,
            executions_saved: 0,
            engine_executions: 0,
            degraded_rounds: 0,
            executions_skipped_static: 0,
            agreement: AgreementStats::default(),
        };

        // Equivalence-oracle memo: normalized queries this case already
        // executed and found *incorrect* (but executable — execution
        // errors are never memoized, so a memo hit proves the candidate
        // would produce the same wrong result). The initial prediction
        // seeds it: the case exists because that query was wrong.
        let mut known_incorrect: Vec<fisql_sqlkit::Query> = Vec::new();
        if self.cfg.static_oracle && !case.error.execution_error {
            known_incorrect.push(current.clone());
        }

        for round in 0..self.cfg.rounds {
            // Elicit (or reuse) this round's feedback.
            let mut feedback = if round == 0 {
                Some(case.feedback.clone())
            } else {
                let view = build_view(db, example, &current);
                outcome.engine_executions += 1; // the view renders a result grid
                self.user.feedback(example, &current, &view, round as u64)
            };
            let Some(fb) = feedback.as_mut() else {
                break;
            };
            // Attach a highlight when the interface supports it.
            if let Strategy::Fisql {
                highlighting: true, ..
            } = self.cfg.strategy
            {
                if fb.highlight.is_none() {
                    let spanned = print_query_spanned(&current);
                    self.user
                        .add_highlight(fb, &spanned, example.id, round as u64);
                }
            }
            let Ok(step) = try_incorporate(
                self.cfg.strategy,
                self.llm,
                &IncorporateContext {
                    db,
                    example,
                    question: &question,
                    previous: &current,
                    feedback: fb,
                    round: round as u64,
                    conformance_gate: self.cfg.conformance_gate,
                },
            ) else {
                // Graceful degradation: the backend failed past the
                // resilience layer's patience, so this round keeps
                // the previous SQL (known incorrect — the loop only
                // reaches here uncorrected) and moves on. The next
                // round re-elicits feedback against it.
                outcome.degraded_rounds += 1;
                continue;
            };
            if step.gate.has_errors() {
                outcome.statically_flagged += 1;
            }
            outcome.executions_saved += step.gate.executions_saved;
            if let Some(c) = step.conformance {
                outcome
                    .agreement
                    .record(c.agreed, c.retried, c.agreed_after_retry);
            }
            current = step.query;
            question = step.question;

            // Equivalence oracle: a candidate provably equivalent to a
            // query this case already executed-and-found-incorrect must
            // produce the same (wrong) result — skip both engine runs of
            // the correctness check. Only analyzer-clean candidates are
            // eligible: a gate error means the query may not execute at
            // all, and the memo's verdicts only transfer to executions.
            if self.cfg.static_oracle
                && !step.gate.has_errors()
                && known_incorrect
                    .iter()
                    .any(|q| fisql_sqlkit::provably_equivalent(q, &current))
            {
                outcome.executions_skipped_static += 2;
                continue;
            }

            outcome.engine_executions += 2; // correctness check runs predicted + gold
            let verdict = check_prediction(db, example, &current);
            if verdict.is_correct() {
                outcome.corrected_at = Some(round);
                break;
            }
            if self.cfg.static_oracle
                && !step.gate.has_errors()
                && !matches!(verdict, Verdict::ExecutionError { .. })
            {
                known_incorrect.push(current.clone());
            }
        }
        outcome
    }
}

impl<'a> CorrectionRun<'a, SimLlm> {
    /// Runs the production Assistant (few-shot RAG) over the corpus and
    /// collects the error cases (§4.1). Sharded across the configured
    /// worker count; output order matches corpus order.
    pub fn collect_errors(&self) -> Vec<ErrorCase> {
        let assistant = Assistant::for_corpus(self.corpus, self.llm.clone(), self.cfg.demos_k);
        let indexed: Vec<usize> = (0..self.corpus.examples.len()).collect();
        let workers = self.cfg.effective_workers(indexed.len());
        let check_one = |i: &usize| -> Option<ErrorCase> {
            let e = &self.corpus.examples[*i];
            let db = self.corpus.database(e);
            let turn = assistant.answer(db, e, 0);
            let verdict = check_prediction(db, e, &turn.query);
            if verdict.is_correct() {
                None
            } else {
                Some(ErrorCase {
                    example_idx: *i,
                    initial: turn.query,
                    execution_error: matches!(verdict, Verdict::ExecutionError { .. }),
                })
            }
        };
        shard_map(&indexed, workers, check_one)
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Maps `f` over `items` on `workers` scoped threads, each taking one
/// contiguous chunk, and concatenates the per-chunk outputs in shard
/// order — so the result equals `items.iter().map(f).collect()` exactly,
/// for any `workers`.
fn shard_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| scope.spawn(|| shard.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        let mut merged = Vec::with_capacity(items.len());
        for handle in handles {
            merged.extend(handle.join().expect("runner worker panicked"));
        }
        merged
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_feedback::UserConfig;
    use fisql_llm::LlmConfig;
    use fisql_spider::SpiderConfig;

    fn small_setup() -> (Corpus, SimLlm, SimUser) {
        let corpus = fisql_spider::build_spider(&SpiderConfig::small(77));
        (
            corpus,
            SimLlm::new(LlmConfig::default()),
            SimUser::new(UserConfig::default()),
        )
    }

    #[test]
    fn shard_map_equals_serial_map_for_any_worker_count() {
        let items: Vec<u64> = (0..23).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(shard_map(&items, workers, |x| x * x), serial);
        }
        assert!(shard_map(&[] as &[u64], 4, |x| x * x).is_empty());
    }

    #[test]
    fn reports_are_bit_identical_at_any_worker_count() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .rounds(2);
        let errors = run.workers(1).collect_errors();
        let annotated = run.workers(1).annotate(&errors);
        assert!(
            !annotated.is_empty(),
            "need cases to make the test meaningful"
        );

        let serial = run.workers(1).run(&annotated);
        let serial_json = serde_json::to_string(&serial).unwrap();
        for workers in [2, 8] {
            let parallel = run.workers(workers).run(&annotated);
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                serial_json,
                "report diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn collection_and_annotation_are_worker_count_invariant() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user).demos_k(3);
        let serial_errors = run.workers(1).collect_errors();
        let sharded_errors = run.workers(8).collect_errors();
        assert_eq!(serial_errors.len(), sharded_errors.len());
        for (a, b) in serial_errors.iter().zip(&sharded_errors) {
            assert_eq!(a.example_idx, b.example_idx);
            assert_eq!(a.initial, b.initial);
        }
        let serial_ann = run.workers(1).annotate(&serial_errors);
        let sharded_ann = run.workers(8).annotate(&serial_errors);
        assert_eq!(serial_ann.len(), sharded_ann.len());
    }

    #[test]
    fn metrics_record_throughput() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .workers(2);
        let errors = run.collect_errors();
        let annotated = run.annotate(&errors);
        let report = run.run(&annotated);
        assert_eq!(report.metrics.workers, 2.min(annotated.len().max(1)));
        assert!(report.metrics.wall_ms >= 0.0);
        if !annotated.is_empty() {
            assert!(report.metrics.cases_per_sec > 0.0);
            // Every case's correctness check either ran (2 executions)
            // or was skipped by the static equivalence oracle.
            assert!(
                report.metrics.engine_executions + report.executions_skipped_static
                    >= 2 * annotated.len() as u64
            );
        }
        // metrics are serde(skip): serialized reports contain none of them
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("wall_ms"));
    }

    #[test]
    fn oracle_skips_executions_without_changing_verdicts() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .workers(1);
        let errors = run.collect_errors();
        let annotated = run.annotate(&errors);
        assert!(!annotated.is_empty());

        let with_oracle = run.static_oracle(true).run(&annotated);
        let without = run.static_oracle(false).run(&annotated);
        assert_eq!(without.executions_skipped_static, 0);
        assert!(
            with_oracle.executions_skipped_static > 0,
            "expected at least one statically skipped execution"
        );
        // Soundness: skipping executions must not change any verdict.
        assert_eq!(
            with_oracle.corrected_after_round,
            without.corrected_after_round
        );
        assert_eq!(with_oracle.statically_flagged, without.statically_flagged);
        // The oracle really avoided engine work.
        assert_eq!(
            with_oracle.metrics.engine_executions + with_oracle.executions_skipped_static,
            without.metrics.engine_executions
        );
    }

    #[test]
    fn conformance_gate_preserves_report_modulo_counters() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .workers(1);
        let errors = run.collect_errors();
        let annotated = run.annotate(&errors);
        assert!(!annotated.is_empty());

        let gated = run.conformance_gate(true).run(&annotated);
        let plain = run.conformance_gate(false).run(&annotated);
        assert_eq!(plain.router_realized_agreements, 0);
        assert_eq!(plain.conformance_retries, 0);
        assert!(
            gated.router_realized_agreements + gated.router_realized_disagreements > 0,
            "gate saw no candidates"
        );
        // On a deterministic backend the re-prompt regenerates the same
        // candidate, so everything except the new counters is identical.
        let mut neutered = gated.clone();
        neutered.router_realized_agreements = plain.router_realized_agreements;
        neutered.router_realized_disagreements = plain.router_realized_disagreements;
        neutered.conformance_retries = plain.conformance_retries;
        assert_eq!(
            serde_json::to_string(&neutered).unwrap(),
            serde_json::to_string(&plain).unwrap()
        );
    }

    #[test]
    fn workers_env_and_effective_workers_resolution() {
        let cfg = ExperimentConfig {
            workers: 4,
            ..ExperimentConfig::default()
        };
        assert_eq!(cfg.effective_workers(100), 4);
        assert_eq!(cfg.effective_workers(2), 2); // never more threads than items
        assert_eq!(cfg.effective_workers(0), 1); // never fewer than one
        let auto = ExperimentConfig {
            workers: 0,
            ..ExperimentConfig::default()
        };
        assert!(auto.effective_workers(100) >= 1);
    }
}
