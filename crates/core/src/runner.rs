//! Parallel, sharded evaluation runner (the builder-style experiment API).
//!
//! [`CorrectionRun`] is the single entry point for the §4.1/§4.2
//! correction experiments:
//!
//! ```no_run
//! # use fisql_core::runner::CorrectionRun;
//! # use fisql_core::pipeline::Strategy;
//! # let (corpus, llm, user) = unimplemented!();
//! let run = CorrectionRun::new(&corpus, &llm, &user)
//!     .strategy(Strategy::Fisql { routing: true, highlighting: false })
//!     .rounds(3)
//!     .workers(4);
//! let errors = run.collect_errors();
//! let annotated = run.annotate(&errors);
//! let report = run.run(&annotated);
//! ```
//!
//! # Sharding and determinism
//!
//! Cases are split into contiguous chunks, one per worker, and each chunk
//! is evaluated on its own scoped thread ([`std::thread::scope`], so the
//! corpus, model, and user are plain borrows — no `Arc` plumbing).
//! Per-case work is *order-independent by construction*: every random
//! draw in the simulated model and user derives from a pure hash of
//! (component seed, example id, round), never from shared mutable state,
//! and the merged report is a sum of per-case outcomes. Chunks are merged
//! in shard order, so the report is **bit-identical to the serial driver
//! at any worker count** — asserted by this module's tests and
//! `tests/concurrency.rs`.
//!
//! The only thread-count-dependent observables are throughput numbers
//! (wall time, cache hit counters), which are quarantined in
//! [`RunMetrics`] and excluded from report serialization.
//!
//! # Durability and robustness
//!
//! Three opt-in layers keep long evaluations alive and restartable:
//!
//! - **Write-ahead journal** ([`crate::journal`]): with
//!   [`CorrectionRun::journal`], every finished case is appended to an
//!   append-only, checksummed journal *before* it is merged; a killed
//!   run restarted with [`CorrectionRun::resume`] replays the journal,
//!   skips every recorded case, and produces a report bit-identical to
//!   an uninterrupted run — at any worker count, because per-case work
//!   is pure and the journal is keyed by case index, not append order.
//! - **Panic isolation**: each case runs under
//!   [`std::panic::catch_unwind`]; a panic (from a pipeline bug or an
//!   injected backend fault) records a [`CaseOutcome::Crashed`] verdict
//!   instead of aborting the run.
//! - **Stall watchdog**: with [`CorrectionRun::case_deadline_ms`], each
//!   case gets a wall-clock budget. Engine executions poll the budget
//!   through an execution pulse ([`fisql_engine::set_exec_pulse`]) and
//!   the round loop checks it at every round boundary, so a stalled
//!   case is marked [`CaseOutcome::TimedOut`] while the run continues;
//!   a monitor thread additionally journals cases hung long past their
//!   deadline so even a subsequent kill loses nothing. Backends that
//!   expose a virtual session clock
//!   ([`FallibleLanguageModel::session_virtual_elapsed_ms`]) are also
//!   expired *deterministically* against that clock, which keeps
//!   reports worker-count invariant under simulated stalls.

use crate::assistant::Assistant;
use crate::experiment::{build_view, build_view_with, AnnotatedCase, CorrectionReport, ErrorCase};
use crate::journal::{Fnv64, FsyncPolicy, RunJournal};
use crate::pipeline::{try_incorporate, IncorporateContext, Strategy};
use crate::semcache::SemanticCache;
use fisql_feedback::SimUser;
use fisql_llm::{cache, AgreementStats, FallibleLanguageModel, ResilienceStats, SimLlm};
use fisql_spider::{check_prediction, check_prediction_with, Corpus, Verdict};
use fisql_sqlkit::{normalize_query, print_query, print_query_spanned};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count (used by CI
/// to exercise the suite serially and sharded).
pub const WORKERS_ENV: &str = "FISQL_WORKERS";

/// Everything a correction experiment is parameterized by.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Feedback-incorporation strategy under test.
    pub strategy: Strategy,
    /// Feedback rounds per case (the paper's Figure 8 x-axis).
    pub rounds: usize,
    /// Experiment seed recorded with the run (per-component seeds live in
    /// the model/user configs; this labels the run as a whole).
    pub seed: u64,
    /// Worker threads for sharded evaluation. `0` means "auto": use
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Demonstrations retrieved per prompt for error collection.
    pub demos_k: usize,
    /// Static equivalence oracle: skip the engine correctness check when
    /// a candidate is provably equivalent to a query this case already
    /// executed and found incorrect (counts into
    /// `executions_skipped_static`). Sound by construction — the oracle
    /// only ever reuses verdicts of queries that executed without error.
    #[serde(default = "default_true")]
    pub static_oracle: bool,
    /// Feedback-conformance gate in the incorporation pipeline (see
    /// [`crate::pipeline::ConformanceReport`]).
    #[serde(default)]
    pub conformance_gate: bool,
    /// Stall-watchdog budget per case, in milliseconds. `None` (the
    /// default) disables the watchdog entirely — no monitor thread, no
    /// execution pulse, bit-for-bit the pre-watchdog behavior. When
    /// set, a case exceeding the budget is marked
    /// [`CaseOutcome::TimedOut`] and the run continues. Backends with a
    /// virtual session clock are expired against it deterministically;
    /// otherwise expiry is wall-clock (and so only deterministic when
    /// no case actually stalls).
    #[serde(default)]
    pub case_deadline_ms: Option<u64>,
    /// Per-shard semantic result cache: serve repeated executions of
    /// canonically-equivalent SQL (and byte-identical view renders)
    /// from memory instead of the engine (see [`crate::semcache`]).
    /// Reports are bit-identical with the cache on or off and at any
    /// worker count; only the [`RunMetrics`] cache counters move.
    #[serde(default = "default_true")]
    pub semantic_cache: bool,
}

fn default_true() -> bool {
    true
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            strategy: Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            rounds: 1,
            seed: 0xF15C,
            workers: workers_from_env(),
            demos_k: 3,
            static_oracle: default_true(),
            conformance_gate: false,
            case_deadline_ms: None,
            semantic_cache: default_true(),
        }
    }
}

impl ExperimentConfig {
    /// Resolves `workers` to a concrete thread count for `n_items` work
    /// items: `0` becomes the machine's available parallelism, and the
    /// count never exceeds the number of items (and never drops below 1).
    pub fn effective_workers(&self, n_items: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        };
        requested.clamp(1, n_items.max(1))
    }
}

/// Reads [`WORKERS_ENV`]; unset, empty, or unparsable means `0` (auto).
pub fn workers_from_env() -> usize {
    std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Throughput metrics for one runner invocation.
///
/// These are the *volatile* observables — wall time and cache counters
/// legitimately vary with thread count and machine load — kept apart from
/// the deterministic report fields (and skipped during serialization of
/// [`CorrectionReport`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock time of the sharded evaluation, milliseconds.
    pub wall_ms: f64,
    /// Cases evaluated per second of wall time.
    pub cases_per_sec: f64,
    /// Engine executions attributable to the evaluation loop (user-view
    /// renders and correctness checks; deterministic).
    pub engine_executions: u64,
    /// Retrieval/embedding cache hits during the run (process-wide delta).
    pub cache_hits: u64,
    /// Retrieval/embedding cache misses during the run.
    pub cache_misses: u64,
    /// Engine executions served from the per-shard semantic result
    /// caches instead of the engine (summed over shards; zero with the
    /// cache disabled).
    pub executions_skipped_cache: u64,
    /// Semantic-cache lookups that had to execute the engine.
    pub semantic_cache_misses: u64,
    /// Resilience-layer telemetry deltas for the run (attempts, retries,
    /// breaker trips, fast-fails, …). All zeros when the backend exposes
    /// no resilience middleware.
    pub resilience: ResilienceStats,
    /// Router-vs-realized conformance telemetry (all zeros when the
    /// conformance gate is off). The serialized report carries the same
    /// totals in its own counter fields; this copy rides with the other
    /// run-level telemetry for programmatic access.
    pub agreement: AgreementStats,
}

impl RunMetrics {
    /// Cache hits as a fraction of all cache lookups during the run.
    pub fn cache_hit_rate(&self) -> f64 {
        cache::CacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
        }
        .hit_rate()
    }

    /// Semantic result-cache hits as a fraction of all lookups.
    pub fn semantic_cache_hit_rate(&self) -> f64 {
        crate::semcache::CacheStats {
            hits: self.executions_skipped_cache,
            misses: self.semantic_cache_misses,
        }
        .hit_rate()
    }

    fn finish(
        workers: usize,
        n_cases: usize,
        started: Instant,
        before: cache::CacheStats,
        engine_executions: u64,
        resilience: ResilienceStats,
    ) -> RunMetrics {
        let wall = started.elapsed();
        let delta = cache::global_stats().since(&before);
        let secs = wall.as_secs_f64();
        RunMetrics {
            workers,
            wall_ms: secs * 1e3,
            cases_per_sec: if secs > 0.0 {
                n_cases as f64 / secs
            } else {
                0.0
            },
            engine_executions,
            cache_hits: delta.hits,
            cache_misses: delta.misses,
            executions_skipped_cache: 0,
            semantic_cache_misses: 0,
            resilience,
            agreement: AgreementStats::default(),
        }
    }
}

/// What one *completed* case contributes to the merged report. Summing
/// these in any order yields the same totals, which is what makes
/// sharding free.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CaseVerdict {
    /// Zero-based round after which the case was corrected (`None` if
    /// every round left it wrong).
    pub corrected_at: Option<usize>,
    /// Rounds whose candidate the static gate flagged with
    /// error-severity diagnostics.
    pub statically_flagged: usize,
    /// Engine executions the gate's auto-repair avoided.
    pub executions_saved: u64,
    /// Engine executions attributable to this case's evaluation loop.
    pub engine_executions: u64,
    /// Rounds that degraded gracefully after backend failures.
    pub degraded_rounds: u64,
    /// Engine executions skipped by the static equivalence oracle.
    pub executions_skipped_static: u64,
    /// Conformance-gate router-vs-realized telemetry for this case.
    pub agreement: AgreementStats,
}

/// Terminal outcome of one case — the unit the write-ahead journal
/// records and the sharded runner merges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CaseOutcome {
    /// The case ran its correction loop to completion.
    Completed(CaseVerdict),
    /// The case panicked. The panic was contained by the runner's
    /// per-case isolation; the run continued.
    Crashed {
        /// Captured panic message (with source location when known).
        message: String,
    },
    /// The stall watchdog expired the case.
    TimedOut {
        /// Zero-based round that was in flight when the budget ran out.
        round: usize,
    },
}

/// Builder for the correction experiment (see the module docs).
///
/// Generic over the *fallible* backend surface, so the simulated model
/// (via the blanket lift), a fault-injected chaos stack, or a real
/// remote client all drive the same runner;
/// [`collect_errors`](CorrectionRun::collect_errors) alone is specific
/// to [`SimLlm`] because the Assistant front end is.
///
/// When a backend call fails past the resilience layer, the affected
/// round **degrades** — the case keeps its previous SQL and moves on —
/// and the merged report counts degraded rounds/cases. The runner calls
/// [`FallibleLanguageModel::begin_session`] at the start of every case,
/// so circuit-breaker and deadline state is per-case and the report
/// stays bit-identical at any worker count even under injected faults.
#[derive(Debug)]
pub struct CorrectionRun<'a, L: FallibleLanguageModel + ?Sized = SimLlm> {
    corpus: &'a Corpus,
    llm: &'a L,
    user: &'a SimUser,
    cfg: ExperimentConfig,
    journal: Option<&'a Path>,
    resume: bool,
    fsync: FsyncPolicy,
}

// Manual Clone/Copy: derives would bound `L: Clone`/`L: Copy`, but only
// references to `L` are stored.
impl<L: FallibleLanguageModel + ?Sized> Clone for CorrectionRun<'_, L> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<L: FallibleLanguageModel + ?Sized> Copy for CorrectionRun<'_, L> {}

impl<'a, L: FallibleLanguageModel + ?Sized> CorrectionRun<'a, L> {
    /// Starts a run over `corpus` with the default
    /// [`ExperimentConfig`].
    pub fn new(corpus: &'a Corpus, llm: &'a L, user: &'a SimUser) -> Self {
        CorrectionRun {
            corpus,
            llm,
            user,
            cfg: ExperimentConfig::default(),
            journal: None,
            resume: false,
            fsync: FsyncPolicy::default(),
        }
    }

    /// Sets the feedback-incorporation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Sets the number of feedback rounds.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.cfg.rounds = rounds;
        self
    }

    /// Sets the recorded experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Sets the demonstrations-per-prompt for error collection.
    pub fn demos_k(mut self, demos_k: usize) -> Self {
        self.cfg.demos_k = demos_k;
        self
    }

    /// Enables or disables the static equivalence oracle.
    pub fn static_oracle(mut self, on: bool) -> Self {
        self.cfg.static_oracle = on;
        self
    }

    /// Enables or disables the feedback-conformance gate.
    pub fn conformance_gate(mut self, on: bool) -> Self {
        self.cfg.conformance_gate = on;
        self
    }

    /// Enables or disables the per-shard semantic result cache (on by
    /// default; reports are bit-identical either way).
    pub fn semantic_cache(mut self, on: bool) -> Self {
        self.cfg.semantic_cache = on;
        self
    }

    /// Sets the stall-watchdog budget per case (`None` disables the
    /// watchdog — the default).
    pub fn case_deadline_ms(mut self, deadline_ms: Option<u64>) -> Self {
        self.cfg.case_deadline_ms = deadline_ms;
        self
    }

    /// Journals every finished case to the write-ahead journal at
    /// `path` (see [`crate::journal`]). Without
    /// [`resume`](CorrectionRun::resume) an existing file is truncated
    /// and the run starts fresh.
    pub fn journal(mut self, path: &'a Path) -> Self {
        self.journal = Some(path);
        self
    }

    /// Resume from the configured journal when one already exists:
    /// recorded cases are skipped and their journaled outcomes merged
    /// directly, so a killed run picks up where it stopped and still
    /// produces a report bit-identical to an uninterrupted one. A
    /// journal written by a different experiment (config or case set)
    /// is refused. No-op without [`journal`](CorrectionRun::journal).
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Sets the journal's fsync policy (default:
    /// [`FsyncPolicy::Batch`]).
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, cfg: ExperimentConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The current configuration.
    pub fn current_config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Asks the simulated user for feedback on every error; keeps the
    /// annotatable subset (the paper's 101-of-243). Sharded like
    /// [`run`](CorrectionRun::run); output order matches input order.
    pub fn annotate(&self, errors: &[ErrorCase]) -> Vec<AnnotatedCase> {
        let annotate_one = |err: &ErrorCase| -> Option<AnnotatedCase> {
            let example = &self.corpus.examples[err.example_idx];
            let db = self.corpus.database(example);
            let view = build_view(db, example, &err.initial);
            self.user
                .feedback(example, &err.initial, &view, 0)
                .map(|feedback| AnnotatedCase {
                    error: err.clone(),
                    feedback,
                })
        };
        shard_map(
            errors,
            self.cfg.effective_workers(errors.len()),
            annotate_one,
        )
        .into_iter()
        .flatten()
        .collect()
    }

    /// Runs the multi-round correction protocol (§4.2, Figure 8) for the
    /// configured strategy over the annotated cases, sharded across the
    /// configured worker count. The returned report is bit-identical at
    /// any worker count; only [`CorrectionReport::metrics`] varies.
    ///
    /// Panics on journal I/O failure; use
    /// [`try_run`](CorrectionRun::try_run) to handle that gracefully.
    /// Runs without a journal configured never fail.
    pub fn run(&self, cases: &[AnnotatedCase]) -> CorrectionReport {
        self.try_run(cases).expect("run journal I/O failed")
    }

    /// [`run`](CorrectionRun::run) surfacing journal I/O errors instead
    /// of panicking.
    pub fn try_run(&self, cases: &[AnnotatedCase]) -> io::Result<CorrectionReport> {
        let started = Instant::now();
        let cache_before = cache::global_stats();
        let resilience_before = self.llm.resilience_stats().unwrap_or_default();

        let mut outcomes: Vec<Option<CaseOutcome>> = vec![None; cases.len()];
        let journal = self.open_journal(cases, &mut outcomes)?;
        let pending: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.is_none().then_some(i))
            .collect();
        let workers = self.cfg.effective_workers(pending.len());
        let semcache_hits = AtomicU64::new(0);
        let semcache_misses = AtomicU64::new(0);
        let semcache_totals = (&semcache_hits, &semcache_misses);
        for (idx, outcome) in
            self.run_pending(cases, &pending, workers, journal.as_ref(), semcache_totals)?
        {
            outcomes[idx] = Some(outcome);
        }
        if let Some(journal) = &journal {
            journal.lock().expect("journal lock").sync()?;
        }

        let mut corrected_after_round = vec![0usize; self.cfg.rounds];
        let mut statically_flagged = 0usize;
        let mut executions_saved = 0u64;
        let mut engine_executions = 0u64;
        let mut degraded_rounds = 0u64;
        let mut cases_degraded = 0usize;
        let mut executions_skipped_static = 0u64;
        let mut cases_crashed = 0usize;
        let mut cases_timed_out = 0usize;
        let mut agreement = AgreementStats::default();
        for outcome in outcomes.iter().flatten() {
            match outcome {
                CaseOutcome::Completed(verdict) => {
                    statically_flagged += verdict.statically_flagged;
                    executions_saved += verdict.executions_saved;
                    engine_executions += verdict.engine_executions;
                    degraded_rounds += verdict.degraded_rounds;
                    cases_degraded += usize::from(verdict.degraded_rounds > 0);
                    executions_skipped_static += verdict.executions_skipped_static;
                    agreement.merge(&verdict.agreement);
                    if let Some(r) = verdict.corrected_at {
                        for slot in corrected_after_round.iter_mut().skip(r) {
                            *slot += 1;
                        }
                    }
                }
                CaseOutcome::Crashed { .. } => cases_crashed += 1,
                CaseOutcome::TimedOut { .. } => cases_timed_out += 1,
            }
        }
        let resilience = self
            .llm
            .resilience_stats()
            .unwrap_or_default()
            .since(&resilience_before);
        let mut metrics = RunMetrics::finish(
            workers,
            cases.len(),
            started,
            cache_before,
            engine_executions,
            resilience,
        );
        metrics.agreement = agreement;
        metrics.executions_skipped_cache = semcache_hits.load(Ordering::Acquire);
        metrics.semantic_cache_misses = semcache_misses.load(Ordering::Acquire);
        Ok(CorrectionReport {
            strategy: self.cfg.strategy.name().to_string(),
            total: cases.len(),
            corrected_after_round,
            statically_flagged,
            executions_saved,
            degraded_rounds,
            cases_degraded,
            executions_skipped_static,
            cases_crashed,
            cases_timed_out,
            router_realized_agreements: agreement.agreements,
            router_realized_disagreements: agreement.disagreements(),
            conformance_retries: agreement.retries,
            metrics,
        })
    }

    /// Creates or resumes the configured journal, merging any recovered
    /// records into `outcomes`. `None` when journaling is off.
    fn open_journal(
        &self,
        cases: &[AnnotatedCase],
        outcomes: &mut [Option<CaseOutcome>],
    ) -> io::Result<Option<Mutex<RunJournal>>> {
        let Some(path) = self.journal else {
            return Ok(None);
        };
        let fingerprint = run_fingerprint(&self.cfg, cases);
        let n = cases.len() as u64;
        if self.resume && path.exists() {
            let (journal, records) =
                RunJournal::open_resume::<CaseOutcome>(path, fingerprint, n, self.fsync)?;
            for (idx, outcome) in records {
                if let Some(slot) = outcomes.get_mut(usize::try_from(idx).unwrap_or(usize::MAX)) {
                    *slot = Some(outcome); // duplicate records: last wins
                }
            }
            Ok(Some(Mutex::new(journal)))
        } else {
            let journal = RunJournal::create(path, fingerprint, n, self.fsync)?;
            Ok(Some(Mutex::new(journal)))
        }
    }

    /// Evaluates the not-yet-recorded cases, sharded contiguously over
    /// `workers` scoped threads, write-ahead journaling each outcome as
    /// it lands. Returns `(case index, outcome)` pairs.
    fn run_pending(
        &self,
        cases: &[AnnotatedCase],
        pending: &[usize],
        workers: usize,
        journal: Option<&Mutex<RunJournal>>,
        semcache_totals: (&AtomicU64, &AtomicU64),
    ) -> io::Result<Vec<(usize, CaseOutcome)>> {
        if pending.is_empty() {
            return Ok(Vec::new());
        }
        let slots: Vec<Arc<CaseSlot>> = (0..workers).map(|_| Arc::new(CaseSlot::idle())).collect();
        let done = AtomicBool::new(false);
        let epoch = Instant::now();
        let chunk = pending.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let watchdog = self.cfg.case_deadline_ms.map(|deadline_ms| {
                let slots = slots.clone();
                let done = &done;
                scope.spawn(move || watch_for_stalls(&slots, done, epoch, deadline_ms, journal))
            });
            let handles: Vec<_> = pending
                .chunks(chunk)
                .zip(&slots)
                .map(|(shard, slot)| {
                    scope.spawn(|| {
                        self.run_shard(cases, shard, slot, epoch, journal, semcache_totals)
                    })
                })
                .collect();
            let mut merged = Vec::with_capacity(pending.len());
            let mut first_err = None;
            for handle in handles {
                match handle.join().expect("runner worker panicked") {
                    Ok(part) => merged.extend(part),
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
            done.store(true, Ordering::Release);
            if let Some(watchdog) = watchdog {
                watchdog.join().expect("watchdog panicked");
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(merged),
            }
        })
    }

    /// One worker's loop: run each assigned case in panic isolation,
    /// journal its outcome, and keep the watchdog slot current.
    fn run_shard(
        &self,
        cases: &[AnnotatedCase],
        shard: &[usize],
        slot: &Arc<CaseSlot>,
        epoch: Instant,
        journal: Option<&Mutex<RunJournal>>,
        semcache_totals: (&AtomicU64, &AtomicU64),
    ) -> io::Result<Vec<(usize, CaseOutcome)>> {
        // While the watchdog is armed, long engine executions on this
        // thread poll the case budget (strided, inside the engine's
        // existing budget checks) and abort once it is exhausted.
        let _pulse = self.cfg.case_deadline_ms.map(|_| {
            let slot = Arc::clone(slot);
            fisql_engine::set_exec_pulse(Some(Box::new(move || {
                now_ms(epoch) > slot.deadline_at_ms.load(Ordering::Relaxed)
            })));
            PulseGuard
        });
        // One semantic result cache per shard: no cross-thread state, so
        // which executions hit depends only on this shard's own case
        // sequence — worker count still cannot change any report field.
        let mut semcache = SemanticCache::new(self.cfg.semantic_cache);
        let mut out = Vec::with_capacity(shard.len());
        for &idx in shard {
            slot.begin(idx, epoch, self.cfg.case_deadline_ms);
            let mut outcome = match crate::isolate::run_isolated(|| {
                self.run_case(&cases[idx], slot, epoch, &mut semcache)
            }) {
                Ok(outcome) => outcome,
                Err(message) => CaseOutcome::Crashed { message },
            };
            if slot.claim_journaled() {
                if let Some(journal) = journal {
                    journal
                        .lock()
                        .expect("journal lock")
                        .append(idx as u64, &outcome)?;
                }
            } else {
                // The watchdog already journaled this case as hung past
                // its grace period; keep the in-memory report
                // consistent with what the journal says.
                outcome = CaseOutcome::TimedOut {
                    round: slot.round.load(Ordering::Acquire),
                };
            }
            slot.end();
            out.push((idx, outcome));
        }
        semcache_totals
            .0
            .fetch_add(semcache.stats.hits, Ordering::AcqRel);
        semcache_totals
            .1
            .fetch_add(semcache.stats.misses, Ordering::AcqRel);
        Ok(out)
    }

    /// One case's multi-round correction loop — the unit of sharding.
    fn run_case(
        &self,
        case: &AnnotatedCase,
        slot: &CaseSlot,
        epoch: Instant,
        semcache: &mut SemanticCache,
    ) -> CaseOutcome {
        // One case = one resilience session: the backend resets its
        // per-session breaker/deadline state here, on this worker's
        // thread, so failure handling depends only on this case's own
        // call history (the sharding-invariance contract).
        self.llm.begin_session();
        let example = &self.corpus.examples[case.error.example_idx];
        let db = self.corpus.database(example);
        let mut current = normalize_query(&case.error.initial);
        let mut question = example.question.clone();
        let mut verdict = CaseVerdict::default();

        // Equivalence-oracle memo: normalized queries this case already
        // executed and found *incorrect* (but executable — execution
        // errors are never memoized, so a memo hit proves the candidate
        // would produce the same wrong result). The initial prediction
        // seeds it: the case exists because that query was wrong.
        let mut known_incorrect: Vec<fisql_sqlkit::Query> = Vec::new();
        if self.cfg.static_oracle && !case.error.execution_error {
            known_incorrect.push(current.clone());
        }

        for round in 0..self.cfg.rounds {
            // Heartbeat plus stall checks at every round boundary: the
            // wall-clock budget (the same one the engine pulse polls)
            // and, when the backend keeps one, the *virtual* session
            // clock — deterministic, so simulated stalls time out
            // identically at any worker count.
            slot.round.store(round, Ordering::Release);
            if let Some(limit) = self.cfg.case_deadline_ms {
                if now_ms(epoch) > slot.deadline_at_ms.load(Ordering::Relaxed) {
                    return CaseOutcome::TimedOut { round };
                }
                if self
                    .llm
                    .session_virtual_elapsed_ms()
                    .is_some_and(|virtual_ms| virtual_ms > limit)
                {
                    return CaseOutcome::TimedOut { round };
                }
            }
            // Elicit (or reuse) this round's feedback.
            let mut feedback = if round == 0 {
                Some(case.feedback.clone())
            } else {
                // The render goes through the cache's exact-print lane:
                // a hit replays the byte-identical grid or error string a
                // fresh execution would have produced. The logical
                // execution counter is charged either way — report
                // fields must not depend on cache state.
                let view =
                    build_view_with(db, example, &current, |db, q| semcache.execute_view(db, q));
                verdict.engine_executions += 1; // the view renders a result grid
                self.user.feedback(example, &current, &view, round as u64)
            };
            let Some(fb) = feedback.as_mut() else {
                break;
            };
            // Attach a highlight when the interface supports it.
            if let Strategy::Fisql {
                highlighting: true, ..
            } = self.cfg.strategy
            {
                if fb.highlight.is_none() {
                    let spanned = print_query_spanned(&current);
                    self.user
                        .add_highlight(fb, &spanned, example.id, round as u64);
                }
            }
            let Ok(step) = try_incorporate(
                self.cfg.strategy,
                self.llm,
                &IncorporateContext {
                    db,
                    example,
                    question: &question,
                    previous: &current,
                    feedback: fb,
                    round: round as u64,
                    conformance_gate: self.cfg.conformance_gate,
                },
            ) else {
                // Graceful degradation: the backend failed past the
                // resilience layer's patience, so this round keeps
                // the previous SQL (known incorrect — the loop only
                // reaches here uncorrected) and moves on. The next
                // round re-elicits feedback against it.
                verdict.degraded_rounds += 1;
                continue;
            };
            if step.gate.has_errors() {
                verdict.statically_flagged += 1;
            }
            verdict.executions_saved += step.gate.executions_saved;
            if let Some(s) = &step.search {
                // Search accounting: statically-pruned candidates are
                // executions a generate-and-test loop would have burned;
                // non-chosen survivors are candidates the beam ranked
                // below the one the validator actually runs.
                verdict.executions_skipped_static += s.pruned_static;
                verdict.executions_saved += s.survivors.saturating_sub(1);
            }
            if let Some(c) = step.conformance {
                verdict
                    .agreement
                    .record(c.agreed, c.retried, c.agreed_after_retry);
            }
            current = step.query;
            question = step.question;

            // Equivalence oracle: a candidate canonically equivalent to
            // a query this case already executed-and-found-incorrect
            // must produce the same (wrong) result — skip both engine
            // runs of the correctness check. Only analyzer-clean
            // candidates are eligible: a gate error means the query may
            // not execute at all, and the memo's verdicts only transfer
            // to executions. (`canonically_equivalent` subsumes the
            // pre-canon `provably_equivalent` check, so this strictly
            // grows the skip set.)
            if self.cfg.static_oracle
                && !step.gate.has_errors()
                && known_incorrect
                    .iter()
                    .any(|q| fisql_sqlkit::canonically_equivalent(q, &current))
            {
                verdict.executions_skipped_static += 2;
                continue;
            }

            // Both the gold and the predicted execution route through
            // the semantic lane; the logical counter is charged
            // unconditionally so reports stay cache-invariant.
            verdict.engine_executions += 2; // correctness check runs predicted + gold
            let check = check_prediction_with(db, example, &current, |db, q| {
                semcache.execute_semantic(db, q)
            });
            if check.is_correct() {
                verdict.corrected_at = Some(round);
                break;
            }
            if self.cfg.static_oracle
                && !step.gate.has_errors()
                && !matches!(check, Verdict::ExecutionError { .. })
            {
                known_incorrect.push(current.clone());
            }
        }
        CaseOutcome::Completed(verdict)
    }
}

impl CorrectionRun<'_, SimLlm> {
    /// Runs the production Assistant (few-shot RAG) over the corpus and
    /// collects the error cases (§4.1). Sharded across the configured
    /// worker count; output order matches corpus order.
    pub fn collect_errors(&self) -> Vec<ErrorCase> {
        let assistant = Assistant::for_corpus(self.corpus, self.llm.clone(), self.cfg.demos_k);
        let indexed: Vec<usize> = (0..self.corpus.examples.len()).collect();
        let workers = self.cfg.effective_workers(indexed.len());
        let check_one = |i: &usize| -> Option<ErrorCase> {
            let e = &self.corpus.examples[*i];
            let db = self.corpus.database(e);
            let turn = assistant.answer(db, e, 0);
            let verdict = check_prediction(db, e, &turn.query);
            if verdict.is_correct() {
                None
            } else {
                Some(ErrorCase {
                    example_idx: *i,
                    initial: turn.query,
                    execution_error: matches!(verdict, Verdict::ExecutionError { .. }),
                })
            }
        };
        shard_map(&indexed, workers, check_one)
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Maps `f` over `items` on `workers` scoped threads, each taking one
/// contiguous chunk, and concatenates the per-chunk outputs in shard
/// order — so the result equals `items.iter().map(f).collect()` exactly,
/// for any `workers`.
fn shard_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| scope.spawn(|| shard.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        let mut merged = Vec::with_capacity(items.len());
        for handle in handles {
            merged.extend(handle.join().expect("runner worker panicked"));
        }
        merged
    })
}

/// Milliseconds elapsed since the run epoch (saturating).
fn now_ms(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Shared per-worker watchdog slot: which case the worker is on, its
/// current round, and the case's absolute wall-clock deadline in
/// milliseconds since the run epoch (`u64::MAX` = unarmed,
/// `usize::MAX` case index = idle).
struct CaseSlot {
    case_idx: AtomicUsize,
    round: AtomicUsize,
    deadline_at_ms: AtomicU64,
    journaled: AtomicBool,
}

impl CaseSlot {
    fn idle() -> CaseSlot {
        CaseSlot {
            case_idx: AtomicUsize::new(usize::MAX),
            round: AtomicUsize::new(0),
            deadline_at_ms: AtomicU64::new(u64::MAX),
            journaled: AtomicBool::new(true),
        }
    }

    fn begin(&self, idx: usize, epoch: Instant, deadline_ms: Option<u64>) {
        self.round.store(0, Ordering::Release);
        self.journaled.store(false, Ordering::Release);
        self.deadline_at_ms.store(
            deadline_ms.map_or(u64::MAX, |d| now_ms(epoch).saturating_add(d)),
            Ordering::Release,
        );
        self.case_idx.store(idx, Ordering::Release);
    }

    fn end(&self) {
        self.case_idx.store(usize::MAX, Ordering::Release);
        self.deadline_at_ms.store(u64::MAX, Ordering::Release);
    }

    /// Exactly-once journaling handshake between the worker and the
    /// watchdog: whoever flips the flag first writes the record.
    fn claim_journaled(&self) -> bool {
        self.journaled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// Clears the engine's execution pulse when the worker thread finishes.
struct PulseGuard;

impl Drop for PulseGuard {
    fn drop(&mut self) {
        fisql_engine::set_exec_pulse(None);
    }
}

/// The stall monitor: wakes a few times per deadline period and
/// write-ahead journals any case hung *far* past its budget (cooperative
/// cancellation cannot fire while non-engine code is stuck), so that
/// killing the process mid-hang still leaves a record and the resumed
/// run skips the poisonous case instead of hanging on it again.
fn watch_for_stalls(
    slots: &[Arc<CaseSlot>],
    done: &AtomicBool,
    epoch: Instant,
    deadline_ms: u64,
    journal: Option<&Mutex<RunJournal>>,
) {
    let grace = deadline_ms.saturating_mul(4).max(1);
    let poll = Duration::from_millis((deadline_ms / 4).clamp(5, 250));
    while !done.load(Ordering::Acquire) {
        let now = now_ms(epoch);
        for slot in slots {
            let idx = slot.case_idx.load(Ordering::Acquire);
            if idx == usize::MAX {
                continue;
            }
            let due = slot.deadline_at_ms.load(Ordering::Acquire);
            if now <= due.saturating_add(grace) {
                continue;
            }
            if let Some(journal) = journal {
                if slot.claim_journaled() {
                    let outcome = CaseOutcome::TimedOut {
                        round: slot.round.load(Ordering::Acquire),
                    };
                    if let Ok(mut guard) = journal.lock() {
                        // Best effort: a journaling error here must not
                        // take down the monitor.
                        let _ = guard.append(idx as u64, &outcome);
                        let _ = guard.sync();
                    }
                }
            }
        }
        std::thread::sleep(poll);
    }
}

/// Content fingerprint binding a run journal to one experiment: the
/// full configuration *except* the worker count (sharding never changes
/// the report, so a journal written at one worker count resumes at any
/// other) plus a digest of the case set — example index, initial SQL,
/// feedback text, and execution status of every annotated case.
pub fn run_fingerprint(cfg: &ExperimentConfig, cases: &[AnnotatedCase]) -> u64 {
    let mut id_cfg = *cfg;
    id_cfg.workers = 0;
    let mut hasher = Fnv64::new();
    hasher.update(
        serde_json::to_string(&id_cfg)
            .expect("config serializes")
            .as_bytes(),
    );
    for case in cases {
        hasher.update(&(case.error.example_idx as u64).to_le_bytes());
        hasher.update(print_query(&case.error.initial).as_bytes());
        hasher.update(case.feedback.text.as_bytes());
        hasher.update(&[u8::from(case.error.execution_error)]);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_feedback::UserConfig;
    use fisql_llm::LlmConfig;
    use fisql_spider::SpiderConfig;

    fn small_setup() -> (Corpus, SimLlm, SimUser) {
        let corpus = fisql_spider::build_spider(&SpiderConfig::small(77));
        (
            corpus,
            SimLlm::new(LlmConfig::default()),
            SimUser::new(UserConfig::default()),
        )
    }

    #[test]
    fn shard_map_equals_serial_map_for_any_worker_count() {
        let items: Vec<u64> = (0..23).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(shard_map(&items, workers, |x| x * x), serial);
        }
        assert!(shard_map(&[] as &[u64], 4, |x| x * x).is_empty());
    }

    #[test]
    fn reports_are_bit_identical_at_any_worker_count() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .rounds(2);
        let errors = run.workers(1).collect_errors();
        let annotated = run.workers(1).annotate(&errors);
        assert!(
            !annotated.is_empty(),
            "need cases to make the test meaningful"
        );

        let serial = run.workers(1).run(&annotated);
        let serial_json = serde_json::to_string(&serial).unwrap();
        for workers in [2, 8] {
            let parallel = run.workers(workers).run(&annotated);
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                serial_json,
                "report diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn collection_and_annotation_are_worker_count_invariant() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user).demos_k(3);
        let serial_errors = run.workers(1).collect_errors();
        let sharded_errors = run.workers(8).collect_errors();
        assert_eq!(serial_errors.len(), sharded_errors.len());
        for (a, b) in serial_errors.iter().zip(&sharded_errors) {
            assert_eq!(a.example_idx, b.example_idx);
            assert_eq!(a.initial, b.initial);
        }
        let serial_ann = run.workers(1).annotate(&serial_errors);
        let sharded_ann = run.workers(8).annotate(&serial_errors);
        assert_eq!(serial_ann.len(), sharded_ann.len());
    }

    #[test]
    fn metrics_record_throughput() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .workers(2);
        let errors = run.collect_errors();
        let annotated = run.annotate(&errors);
        let report = run.run(&annotated);
        assert_eq!(report.metrics.workers, 2.min(annotated.len().max(1)));
        assert!(report.metrics.wall_ms >= 0.0);
        if !annotated.is_empty() {
            assert!(report.metrics.cases_per_sec > 0.0);
            // Every case's correctness check either ran (2 executions)
            // or was skipped by the static equivalence oracle.
            assert!(
                report.metrics.engine_executions + report.executions_skipped_static
                    >= 2 * annotated.len() as u64
            );
        }
        // metrics are serde(skip): serialized reports contain none of them
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("wall_ms"));
    }

    #[test]
    fn oracle_skips_executions_without_changing_verdicts() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .workers(1);
        let errors = run.collect_errors();
        let annotated = run.annotate(&errors);
        assert!(!annotated.is_empty());

        let with_oracle = run.static_oracle(true).run(&annotated);
        let without = run.static_oracle(false).run(&annotated);
        assert_eq!(without.executions_skipped_static, 0);
        assert!(
            with_oracle.executions_skipped_static > 0,
            "expected at least one statically skipped execution"
        );
        // Soundness: skipping executions must not change any verdict.
        assert_eq!(
            with_oracle.corrected_after_round,
            without.corrected_after_round
        );
        assert_eq!(with_oracle.statically_flagged, without.statically_flagged);
        // The oracle really avoided engine work.
        assert_eq!(
            with_oracle.metrics.engine_executions + with_oracle.executions_skipped_static,
            without.metrics.engine_executions
        );
    }

    #[test]
    fn search_refine_reports_bit_identical_and_resumable() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user)
            .strategy(Strategy::SearchRefine)
            .demos_k(3)
            .rounds(2);
        let errors = run.workers(1).collect_errors();
        let annotated = run.workers(1).annotate(&errors);
        assert!(!annotated.is_empty());

        let serial = run.workers(1).run(&annotated);
        let serial_json = serde_json::to_string(&serial).unwrap();
        for workers in [2, 8] {
            let parallel = run.workers(workers).run(&annotated);
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                serial_json,
                "SearchRefine report diverged at {workers} workers"
            );
        }

        // Torn-tail resume must reproduce the fresh report byte for byte.
        let path = std::env::temp_dir().join(format!(
            "fisql-runner-search-journal-{}.fjnl",
            std::process::id()
        ));
        let journaled = run
            .workers(1)
            .journal(&path)
            .fsync(FsyncPolicy::Never)
            .run(&annotated);
        assert_eq!(serde_json::to_string(&journaled).unwrap(), serial_json);
        let full = std::fs::read(&path).unwrap();
        let cut = (full.len() / 2).max(crate::journal::HEADER_LEN);
        std::fs::write(&path, &full[..cut]).unwrap();
        let resumed = run
            .workers(4)
            .journal(&path)
            .resume(true)
            .fsync(FsyncPolicy::Never)
            .run(&annotated);
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            serial_json,
            "SearchRefine resume diverged from the fresh run"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn search_refine_executes_less_than_rewrite_per_correction() {
        let (corpus, llm, user) = small_setup();
        let base = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .workers(1);
        let errors = base.collect_errors();
        let annotated = base.annotate(&errors);
        assert!(!annotated.is_empty());

        let corrected = |r: &CorrectionReport| *r.corrected_after_round.last().unwrap_or(&0);
        let search = base.strategy(Strategy::SearchRefine).run(&annotated);
        let rewrite = base.strategy(Strategy::QueryRewrite).run(&annotated);
        assert!(
            corrected(&search) >= corrected(&rewrite),
            "SearchRefine corrected {} < Query Rewrite {}",
            corrected(&search),
            corrected(&rewrite)
        );
        assert!(corrected(&search) > 0, "SearchRefine corrected nothing");
        let per_case =
            |r: &CorrectionReport| r.metrics.engine_executions as f64 / corrected(r).max(1) as f64;
        assert!(
            per_case(&search) < per_case(&rewrite),
            "SearchRefine {:.2} executions per corrected case >= Query Rewrite {:.2}",
            per_case(&search),
            per_case(&rewrite)
        );
        // The search's static pruning shows up in the ledger.
        assert!(search.executions_skipped_static > 0 || search.executions_saved > 0);
    }

    #[test]
    fn conformance_gate_preserves_report_modulo_counters() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .workers(1);
        let errors = run.collect_errors();
        let annotated = run.annotate(&errors);
        assert!(!annotated.is_empty());

        let gated = run.conformance_gate(true).run(&annotated);
        let plain = run.conformance_gate(false).run(&annotated);
        assert_eq!(plain.router_realized_agreements, 0);
        assert_eq!(plain.conformance_retries, 0);
        assert!(
            gated.router_realized_agreements + gated.router_realized_disagreements > 0,
            "gate saw no candidates"
        );
        // On a deterministic backend the re-prompt regenerates the same
        // candidate, so everything except the new counters is identical.
        let mut neutered = gated.clone();
        neutered.router_realized_agreements = plain.router_realized_agreements;
        neutered.router_realized_disagreements = plain.router_realized_disagreements;
        neutered.conformance_retries = plain.conformance_retries;
        assert_eq!(
            serde_json::to_string(&neutered).unwrap(),
            serde_json::to_string(&plain).unwrap()
        );
    }

    /// A forwarding backend whose virtual session clock is permanently
    /// past any deadline: every case expires at its first round boundary,
    /// deterministically, at any worker count.
    struct StalledClock<B>(B);

    impl<B: FallibleLanguageModel> FallibleLanguageModel for StalledClock<B> {
        fn try_generate_sql(
            &self,
            req: &fisql_llm::GenRequest<'_>,
        ) -> fisql_llm::BackendResult<fisql_llm::Generation> {
            self.0.try_generate_sql(req)
        }

        fn try_classify_feedback(
            &self,
            utterance: &str,
            salt: u64,
        ) -> fisql_llm::BackendResult<fisql_sqlkit::OpClass> {
            self.0.try_classify_feedback(utterance, salt)
        }

        fn try_rewrite_question(
            &self,
            question: &str,
            feedback: &str,
        ) -> fisql_llm::BackendResult<String> {
            self.0.try_rewrite_question(question, feedback)
        }

        fn try_edit_success_prob(
            &self,
            routed: bool,
            dynamic: bool,
        ) -> fisql_llm::BackendResult<f64> {
            self.0.try_edit_success_prob(routed, dynamic)
        }

        fn try_edit_complexity_factor(
            &self,
            edits: &[fisql_sqlkit::EditOp],
        ) -> fisql_llm::BackendResult<f64> {
            self.0.try_edit_complexity_factor(edits)
        }

        fn try_apply_feedback_edit_with_prob(
            &self,
            previous: &fisql_sqlkit::Query,
            edits: &[fisql_sqlkit::EditOp],
            p: f64,
            example_id: usize,
            salt: u64,
        ) -> fisql_llm::BackendResult<fisql_sqlkit::Query> {
            self.0
                .try_apply_feedback_edit_with_prob(previous, edits, p, example_id, salt)
        }

        fn session_virtual_elapsed_ms(&self) -> Option<u64> {
            Some(u64::MAX)
        }
    }

    #[test]
    fn panicking_cases_are_contained_and_bit_identical() {
        let (corpus, llm, user) = small_setup();
        let collect = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .workers(1);
        let errors = collect.collect_errors();
        let annotated = collect.annotate(&errors);
        assert!(!annotated.is_empty());

        let crashing = fisql_llm::FaultyBackend::new(
            llm.clone(),
            fisql_llm::FaultConfig {
                panic: 0.15,
                ..fisql_llm::FaultConfig::default()
            },
        );
        let run = CorrectionRun::new(&corpus, &crashing, &user)
            .demos_k(3)
            .rounds(2);
        let serial = run.workers(1).run(&annotated);
        assert!(
            serial.cases_crashed > 0,
            "a 15% per-call panic rate never fired across {} cases",
            annotated.len()
        );
        assert_eq!(serial.total, annotated.len());
        let serial_json = serde_json::to_string(&serial).unwrap();
        for workers in [4, 8] {
            let parallel = run.workers(workers).run(&annotated);
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                serial_json,
                "crash containment diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn virtual_clock_stalls_time_out_deterministically() {
        let (corpus, llm, user) = small_setup();
        let collect = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .workers(1);
        let errors = collect.collect_errors();
        let annotated = collect.annotate(&errors);
        assert!(!annotated.is_empty());

        let stalled = StalledClock(llm.clone());
        let run = CorrectionRun::new(&corpus, &stalled, &user)
            .demos_k(3)
            .rounds(2)
            .case_deadline_ms(Some(5_000));
        let serial = run.workers(1).run(&annotated);
        assert_eq!(
            serial.cases_timed_out,
            annotated.len(),
            "every case's virtual clock is past the deadline"
        );
        assert_eq!(serial.corrected_after_round, vec![0, 0]);
        let serial_json = serde_json::to_string(&serial).unwrap();
        for workers in [4, 8] {
            let parallel = run.workers(workers).run(&annotated);
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                serial_json,
                "virtual-clock expiry diverged at {workers} workers"
            );
        }

        // Without a deadline the same backend runs to completion: the
        // watchdog is strictly opt-in.
        let unarmed = run.case_deadline_ms(None).workers(1).run(&annotated);
        assert_eq!(unarmed.cases_timed_out, 0);
    }

    #[test]
    fn journal_resume_after_torn_tail_matches_fresh_run() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .workers(1);
        let errors = run.collect_errors();
        let annotated = run.annotate(&errors);
        assert!(annotated.len() >= 4, "need a few cases to truncate");
        let baseline = run.run(&annotated);
        let baseline_json = serde_json::to_string(&baseline).unwrap();

        let path =
            std::env::temp_dir().join(format!("fisql-runner-journal-{}.fjnl", std::process::id()));
        let journaled = run.journal(&path).fsync(FsyncPolicy::Never).run(&annotated);
        assert_eq!(
            serde_json::to_string(&journaled).unwrap(),
            baseline_json,
            "journaling must not perturb the report"
        );

        // Chop the journal mid-record — the moral equivalent of SIGKILL
        // mid-write — and resume at several worker counts.
        let full = std::fs::read(&path).unwrap();
        assert!(full.len() > crate::journal::HEADER_LEN + 16);
        for (workers, cut) in [
            (1, full.len() / 3),
            (4, full.len() / 2),
            (8, full.len() - 5),
        ] {
            let cut = cut.max(crate::journal::HEADER_LEN);
            std::fs::write(&path, &full[..cut]).unwrap();
            let resumed = run
                .workers(workers)
                .journal(&path)
                .resume(true)
                .fsync(FsyncPolicy::Never)
                .run(&annotated);
            assert_eq!(
                serde_json::to_string(&resumed).unwrap(),
                baseline_json,
                "resume(cut={cut}, workers={workers}) diverged from the fresh run"
            );
        }

        // A resume against a *different* experiment is refused outright.
        std::fs::write(&path, &full).unwrap();
        let err = run
            .rounds(1)
            .journal(&path)
            .resume(true)
            .try_run(&annotated)
            .unwrap_err();
        assert!(
            err.to_string().contains("fingerprint"),
            "wanted a fingerprint refusal, got: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn workers_env_and_effective_workers_resolution() {
        let cfg = ExperimentConfig {
            workers: 4,
            ..ExperimentConfig::default()
        };
        assert_eq!(cfg.effective_workers(100), 4);
        assert_eq!(cfg.effective_workers(2), 2); // never more threads than items
        assert_eq!(cfg.effective_workers(0), 1); // never fewer than one
        let auto = ExperimentConfig {
            workers: 0,
            ..ExperimentConfig::default()
        };
        assert!(auto.effective_workers(100) >= 1);
    }
}
