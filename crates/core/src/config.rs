//! Typed, validated configuration for the `fisql` entry points.
//!
//! The CLI used to thread every flag positionally through ad-hoc
//! `flag_value` lookups; `fisql --eval`, `fisql serve`, and `fisql load`
//! now parse into these builder-style structs (matching the
//! [`CorrectionRun`](crate::runner::CorrectionRun) idiom), validate
//! once, and hand a single config object to the code that runs. The
//! eval and serve surfaces share the backend-tuning knobs (fault rate,
//! retry budget, fsync policy), so a flag means the same thing in both
//! modes.

use crate::journal::{Fnv64, FsyncPolicy};
use crate::pipeline::Strategy;
use fisql_llm::{FaultConfig, FaultyBackend, ResilienceConfig, Resilient, SimLlm};
use std::path::PathBuf;

/// A configuration parse or validation failure, rendered for the CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Parses `--flag value` out of an argument list.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, ConfigError>
where
    T::Err: std::fmt::Display,
{
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(ConfigError(format!("{flag} needs a value")));
    };
    raw.parse()
        .map(Some)
        .map_err(|e| ConfigError(format!("{flag} got an invalid value {raw:?}: {e}")))
}

/// Whether a bare switch is present.
fn switch(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Validates a fault rate into `[0, 1]`.
fn check_rate(rate: f64, flag: &str) -> Result<(), ConfigError> {
    if !(0.0..=1.0).contains(&rate) {
        return Err(ConfigError(format!(
            "{flag} must be within [0, 1], got {rate}"
        )));
    }
    Ok(())
}

/// Builds the chaos backend stack both entry points evaluate through:
/// deterministic fault injection under the simulated model, retries and
/// breaker on top. Built even at rate 0 — the zero-rate injector passes
/// everything through and `Resilient` adds only bookkeeping — so the
/// pipeline is identical with and without chaos.
pub fn chaos_stack(
    llm: &SimLlm,
    fault_rate: f64,
    retry_budget: u32,
) -> Resilient<FaultyBackend<SimLlm>> {
    Resilient::new(
        FaultyBackend::new(llm.clone(), FaultConfig::uniform(fault_rate)),
        ResilienceConfig {
            attempt_budget: retry_budget,
            ..ResilienceConfig::default()
        },
    )
}

/// Configuration for `fisql --eval`: the sharded correction evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Feedback-incorporation strategy.
    pub strategy: Strategy,
    /// Worker threads (0 = all cores).
    pub workers: usize,
    /// Injected backend fault rate in `[0, 1]`.
    pub fault_rate: f64,
    /// Resilience attempts per backend call.
    pub retry_budget: u32,
    /// Run the static equivalence oracle (on by default).
    pub static_oracle: bool,
    /// Run the feedback-conformance gate.
    pub conformance_gate: bool,
    /// Serve repeated semantically-equivalent executions from the
    /// per-worker result cache (on by default; reports are bit-identical
    /// either way).
    pub semantic_cache: bool,
    /// Write-ahead journal path prefix (one file per corpus).
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal.
    pub resume: bool,
    /// Stall-watchdog deadline per case, virtual milliseconds.
    pub case_deadline_ms: Option<u64>,
    /// Journal fsync policy.
    pub fsync: FsyncPolicy,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            strategy: Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            workers: 0,
            fault_rate: 0.0,
            retry_budget: 3,
            static_oracle: true,
            conformance_gate: false,
            semantic_cache: true,
            journal: None,
            resume: false,
            case_deadline_ms: None,
            fsync: FsyncPolicy::default(),
        }
    }
}

impl EvalConfig {
    /// Parses the `--eval` flag surface, falling back to `FISQL_WORKERS`
    /// and `FISQL_FAULT_RATE` where the flags are absent, and validates
    /// the result.
    pub fn from_args(args: &[String]) -> Result<EvalConfig, ConfigError> {
        let config = EvalConfig {
            strategy: flag_value(args, "--strategy")?.unwrap_or(EvalConfig::default().strategy),
            workers: flag_value(args, "--workers")?.unwrap_or_else(crate::runner::workers_from_env),
            fault_rate: match flag_value(args, "--fault-rate")? {
                Some(rate) => rate,
                None => FaultConfig::from_env().map_or(0.0, |c| c.total_rate()),
            },
            retry_budget: flag_value(args, "--retry-budget")?.unwrap_or(3),
            static_oracle: !switch(args, "--no-static-oracle"),
            conformance_gate: switch(args, "--conformance-gate"),
            semantic_cache: !switch(args, "--no-semantic-cache"),
            journal: flag_value::<String>(args, "--journal")?.map(PathBuf::from),
            resume: switch(args, "--resume"),
            case_deadline_ms: flag_value(args, "--case-deadline")?,
            fsync: flag_value(args, "--fsync")?.unwrap_or_default(),
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks cross-field invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_rate(self.fault_rate, "--fault-rate")?;
        if self.retry_budget == 0 {
            return Err(ConfigError("--retry-budget must be at least 1".into()));
        }
        if self.resume && self.journal.is_none() {
            return Err(ConfigError("--resume requires --journal PATH".into()));
        }
        Ok(())
    }

    /// Builder: sets the strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder: sets the worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder: sets the injected fault rate.
    pub fn fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate;
        self
    }

    /// Builder: enables or disables the semantic result cache.
    pub fn semantic_cache(mut self, on: bool) -> Self {
        self.semantic_cache = on;
        self
    }
}

/// Configuration for `fisql serve`: the long-lived multi-session daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind host.
    pub host: String,
    /// Bind port (0 = ephemeral; the daemon prints the resolved address).
    pub port: u16,
    /// Concurrent-session cap: admissions beyond it queue.
    pub max_sessions: usize,
    /// Connections allowed to wait for a session slot; beyond this the
    /// server rejects immediately (backpressure).
    pub queue_depth: usize,
    /// Longest a queued connection waits for a slot before being
    /// rejected, milliseconds.
    pub queue_wait_ms: u64,
    /// Session-store journal path. `None` keeps sessions in memory only
    /// (no restart replay).
    pub store: Option<PathBuf>,
    /// Session-store fsync policy.
    pub fsync: FsyncPolicy,
    /// Idle-session reaping: a connection silent for this long has its
    /// slot reclaimed (journaled `Reaped`, typed close frame). 0
    /// disables the reaper.
    pub idle_timeout_ms: u64,
    /// Auto-compact the session store after this many closed/reaped
    /// sessions (0 = only on explicit `Compact` requests).
    pub compact_every: u64,
    /// Deterministic disk-fault injection rate in `[0, 1]` on the
    /// session store's append and fsync lanes (chaos serving).
    pub disk_fault_rate: f64,
    /// Feedback-incorporation strategy for hosted sessions.
    pub strategy: Strategy,
    /// Injected backend fault rate in `[0, 1]` (chaos serving).
    pub fault_rate: f64,
    /// Resilience attempts per backend call.
    pub retry_budget: u32,
    /// Corpus seed — the daemon serves the bundled AEP-like corpus built
    /// from this seed, and clients must build the same corpus to script
    /// against it.
    pub seed: u64,
    /// Corpus size (examples).
    pub n_examples: usize,
    /// Give each hosted session a result cache for re-presented SQL (on
    /// by default; transcripts are byte-identical either way).
    pub semantic_cache: bool,
    /// Boot as a hot standby following the primary whose `--repl-listen`
    /// address this is. A follower refuses sessions until promoted.
    pub replica_of: Option<String>,
    /// Accept follower connections on this address (primary side;
    /// `host:0` prints the resolved address like the client listener).
    pub repl_listen: Option<String>,
    /// When state-changing responses are released: `none` (immediately,
    /// shipping is async) or `quorum` (after a majority of connected
    /// followers acknowledged durability).
    pub repl_ack: crate::serve::AckMode,
    /// Longest one response waits for follower acknowledgement before
    /// being released anyway, milliseconds (quorum mode).
    pub repl_ack_timeout_ms: u64,
    /// Follower auto-promotion on primary link loss (on by default;
    /// `--no-auto-promote` leaves promotion to the admin `Promote`
    /// request).
    pub auto_promote: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_string(),
            port: 4151,
            max_sessions: 32,
            queue_depth: 16,
            queue_wait_ms: 5_000,
            store: None,
            fsync: FsyncPolicy::default(),
            idle_timeout_ms: 0,
            compact_every: 0,
            disk_fault_rate: 0.0,
            strategy: Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            fault_rate: 0.0,
            retry_budget: 3,
            seed: 0xC11,
            n_examples: 120,
            semantic_cache: true,
            replica_of: None,
            repl_listen: None,
            repl_ack: crate::serve::AckMode::None,
            repl_ack_timeout_ms: 5_000,
            auto_promote: true,
        }
    }
}

impl ServeConfig {
    /// Parses the `serve` flag surface and validates the result.
    pub fn from_args(args: &[String]) -> Result<ServeConfig, ConfigError> {
        let defaults = ServeConfig::default();
        let config = ServeConfig {
            host: flag_value(args, "--host")?.unwrap_or(defaults.host),
            port: flag_value(args, "--port")?.unwrap_or(defaults.port),
            max_sessions: flag_value(args, "--max-sessions")?.unwrap_or(defaults.max_sessions),
            queue_depth: flag_value(args, "--queue-depth")?.unwrap_or(defaults.queue_depth),
            queue_wait_ms: flag_value(args, "--queue-wait-ms")?.unwrap_or(defaults.queue_wait_ms),
            store: flag_value::<String>(args, "--store")?.map(PathBuf::from),
            fsync: flag_value(args, "--fsync")?.unwrap_or_default(),
            idle_timeout_ms: flag_value(args, "--idle-timeout")?.unwrap_or(0),
            compact_every: flag_value(args, "--compact-every")?.unwrap_or(0),
            disk_fault_rate: match flag_value(args, "--disk-fault-rate")? {
                Some(rate) => rate,
                None => crate::serve::DiskFaultConfig::from_env().map_or(0.0, |c| c.append_rate),
            },
            strategy: flag_value(args, "--strategy")?.unwrap_or(defaults.strategy),
            fault_rate: flag_value(args, "--fault-rate")?.unwrap_or(0.0),
            retry_budget: flag_value(args, "--retry-budget")?.unwrap_or(defaults.retry_budget),
            seed: flag_value(args, "--seed")?.unwrap_or(defaults.seed),
            n_examples: flag_value(args, "--examples")?.unwrap_or(defaults.n_examples),
            semantic_cache: !switch(args, "--no-semantic-cache"),
            replica_of: flag_value(args, "--replica-of")?,
            repl_listen: flag_value(args, "--repl-listen")?,
            repl_ack: match flag_value::<String>(args, "--repl-ack")? {
                Some(mode) => mode
                    .parse()
                    .map_err(|e| ConfigError(format!("--repl-ack: {e}")))?,
                None => defaults.repl_ack,
            },
            repl_ack_timeout_ms: flag_value(args, "--repl-ack-timeout")?
                .unwrap_or(defaults.repl_ack_timeout_ms),
            auto_promote: !switch(args, "--no-auto-promote"),
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks cross-field invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_rate(self.fault_rate, "--fault-rate")?;
        check_rate(self.disk_fault_rate, "--disk-fault-rate")?;
        if self.max_sessions == 0 {
            return Err(ConfigError("--max-sessions must be at least 1".into()));
        }
        if self.retry_budget == 0 {
            return Err(ConfigError("--retry-budget must be at least 1".into()));
        }
        if self.n_examples == 0 {
            return Err(ConfigError("--examples must be at least 1".into()));
        }
        if self.repl_ack == crate::serve::AckMode::Quorum
            && self.repl_listen.is_none()
            && self.replica_of.is_none()
        {
            return Err(ConfigError(
                "--repl-ack quorum needs replication (--repl-listen or --replica-of)".into(),
            ));
        }
        if self.repl_ack_timeout_ms == 0 {
            return Err(ConfigError(
                "--repl-ack-timeout must be at least 1 ms".into(),
            ));
        }
        Ok(())
    }

    /// The bind address.
    pub fn addr(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }

    /// Fingerprint binding a session store to everything that affects
    /// replay: corpus identity, strategy, and the chaos/resilience
    /// knobs. Restarting with a different configuration refuses the
    /// store instead of replaying sessions into different transcripts.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fnv64::new();
        fp.update(b"fisql-session-store-v1");
        fp.update(&self.seed.to_le_bytes());
        fp.update(&(self.n_examples as u64).to_le_bytes());
        fp.update(format!("{:?}", self.strategy).as_bytes());
        fp.update(&self.fault_rate.to_bits().to_le_bytes());
        fp.update(&self.retry_budget.to_le_bytes());
        fp.update(&[u8::from(self.semantic_cache)]);
        fp.finish()
    }

    /// Builder: sets the bind host.
    pub fn host(mut self, host: impl Into<String>) -> Self {
        self.host = host.into();
        self
    }

    /// Builder: sets the bind port.
    pub fn port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Builder: sets the concurrent-session cap.
    pub fn max_sessions(mut self, cap: usize) -> Self {
        self.max_sessions = cap;
        self
    }

    /// Builder: sets the admission queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Builder: sets the queued-admission wait budget.
    pub fn queue_wait_ms(mut self, ms: u64) -> Self {
        self.queue_wait_ms = ms;
        self
    }

    /// Builder: sets the session-store path.
    pub fn store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store = Some(path.into());
        self
    }

    /// Builder: sets the session-store fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Builder: sets the idle-session reap timeout (0 disables).
    pub fn idle_timeout_ms(mut self, ms: u64) -> Self {
        self.idle_timeout_ms = ms;
        self
    }

    /// Builder: sets the auto-compaction cadence (0 disables).
    pub fn compact_every(mut self, closed_sessions: u64) -> Self {
        self.compact_every = closed_sessions;
        self
    }

    /// Builder: sets the disk-fault injection rate.
    pub fn disk_fault_rate(mut self, rate: f64) -> Self {
        self.disk_fault_rate = rate;
        self
    }

    /// Builder: sets the strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder: sets the injected fault rate.
    pub fn fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate;
        self
    }

    /// Builder: sets the corpus seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the corpus size.
    pub fn n_examples(mut self, n: usize) -> Self {
        self.n_examples = n;
        self
    }

    /// Builder: enables or disables the per-session result cache.
    pub fn semantic_cache(mut self, on: bool) -> Self {
        self.semantic_cache = on;
        self
    }

    /// Builder: boots the daemon as a follower of this primary
    /// replication address.
    pub fn replica_of(mut self, primary: impl Into<String>) -> Self {
        self.replica_of = Some(primary.into());
        self
    }

    /// Builder: accepts follower connections on this address.
    pub fn repl_listen(mut self, addr: impl Into<String>) -> Self {
        self.repl_listen = Some(addr.into());
        self
    }

    /// Builder: sets the replication acknowledgement mode.
    pub fn repl_ack(mut self, mode: crate::serve::AckMode) -> Self {
        self.repl_ack = mode;
        self
    }

    /// Builder: sets the follower-ack wait budget (quorum mode).
    pub fn repl_ack_timeout_ms(mut self, ms: u64) -> Self {
        self.repl_ack_timeout_ms = ms;
        self
    }

    /// Builder: enables or disables follower auto-promotion.
    pub fn auto_promote(mut self, on: bool) -> Self {
        self.auto_promote = on;
        self
    }

    /// Builder: clears all replication wiring (standalone daemon) — the
    /// failover harness starts from this before wiring each node.
    pub fn replication_off(mut self) -> Self {
        self.replica_of = None;
        self.repl_listen = None;
        self.repl_ack = crate::serve::AckMode::None;
        self
    }
}

/// Configuration for `fisql load`: the deterministic load generator.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Server address to drive — or a comma-separated endpoint list
    /// (primary first, standbys after) the clients fail over across
    /// (see [`LoadConfig::endpoints`]).
    pub addr: String,
    /// Scripted sessions to run.
    pub sessions: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Feedback rounds per session (upper bound; scripts vary 1..=max).
    pub max_rounds: usize,
    /// Script seed (must match across runs for identical scripts).
    pub seed: u64,
    /// Corpus seed (must match the server's `--seed`).
    pub corpus_seed: u64,
    /// Corpus size (must match the server's `--examples`).
    pub n_examples: usize,
    /// Send a graceful `Shutdown` to the daemon after the load.
    pub shutdown: bool,
    /// How long to keep retrying the first connection, milliseconds
    /// (lets CI start the daemon and the load generator concurrently).
    pub connect_retry_ms: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        let serve = ServeConfig::default();
        LoadConfig {
            addr: serve.addr(),
            sessions: 48,
            concurrency: 16,
            max_rounds: 3,
            seed: 0x10AD,
            corpus_seed: serve.seed,
            n_examples: serve.n_examples,
            shutdown: false,
            connect_retry_ms: 10_000,
        }
    }
}

impl LoadConfig {
    /// Parses the `load` flag surface and validates the result.
    pub fn from_args(args: &[String]) -> Result<LoadConfig, ConfigError> {
        let defaults = LoadConfig::default();
        let config = LoadConfig {
            addr: flag_value(args, "--addr")?.unwrap_or(defaults.addr),
            sessions: flag_value(args, "--sessions")?.unwrap_or(defaults.sessions),
            concurrency: flag_value(args, "--concurrency")?.unwrap_or(defaults.concurrency),
            max_rounds: flag_value(args, "--rounds")?.unwrap_or(defaults.max_rounds),
            seed: flag_value(args, "--seed")?.unwrap_or(defaults.seed),
            corpus_seed: flag_value(args, "--corpus-seed")?.unwrap_or(defaults.corpus_seed),
            n_examples: flag_value(args, "--examples")?.unwrap_or(defaults.n_examples),
            shutdown: switch(args, "--shutdown"),
            connect_retry_ms: flag_value(args, "--connect-retry-ms")?
                .unwrap_or(defaults.connect_retry_ms),
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks cross-field invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sessions == 0 || self.concurrency == 0 || self.max_rounds == 0 {
            return Err(ConfigError(
                "--sessions, --concurrency, and --rounds must all be at least 1".into(),
            ));
        }
        if self.endpoints().is_empty() {
            return Err(ConfigError("--addr must name at least one endpoint".into()));
        }
        Ok(())
    }

    /// The failover endpoint list: `--addr` split on commas, in order
    /// (primary first). A single plain address is a one-entry list, so
    /// the non-replicated path is unchanged.
    pub fn endpoints(&self) -> Vec<String> {
        self.addr
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn eval_config_parses_the_full_flag_surface() {
        let config = EvalConfig::from_args(&args(&[
            "--strategy",
            "search",
            "--workers",
            "4",
            "--fault-rate",
            "0.2",
            "--retry-budget",
            "5",
            "--no-static-oracle",
            "--conformance-gate",
            "--no-semantic-cache",
            "--journal",
            "/tmp/j",
            "--resume",
            "--case-deadline",
            "9000",
            "--fsync",
            "each",
        ]))
        .unwrap();
        assert_eq!(config.strategy, Strategy::SearchRefine);
        assert_eq!(config.workers, 4);
        assert!((config.fault_rate - 0.2).abs() < 1e-12);
        assert_eq!(config.retry_budget, 5);
        assert!(!config.static_oracle);
        assert!(config.conformance_gate);
        assert!(!config.semantic_cache);
        assert_eq!(
            config.journal.as_deref(),
            Some(std::path::Path::new("/tmp/j"))
        );
        assert!(config.resume);
        assert_eq!(config.case_deadline_ms, Some(9000));
        assert_eq!(config.fsync, FsyncPolicy::EachRecord);
    }

    #[test]
    fn eval_config_rejects_invalid_combinations() {
        assert!(EvalConfig::from_args(&args(&["--resume"])).is_err());
        assert!(EvalConfig::from_args(&args(&["--fault-rate", "1.5"])).is_err());
        assert!(EvalConfig::from_args(&args(&["--retry-budget", "0"])).is_err());
        assert!(EvalConfig::from_args(&args(&["--strategy", "osmosis"])).is_err());
        assert!(EvalConfig::from_args(&args(&["--workers"])).is_err());
    }

    #[test]
    fn serve_config_defaults_and_fingerprint_stability() {
        let a = ServeConfig::from_args(&args(&[])).unwrap();
        assert_eq!(a, ServeConfig::default());
        let b = ServeConfig::default();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any replay-relevant knob moves the fingerprint.
        assert_ne!(a.fingerprint(), b.clone().seed(1).fingerprint());
        assert_ne!(a.fingerprint(), b.clone().fault_rate(0.5).fingerprint());
        assert_ne!(
            a.fingerprint(),
            b.clone().strategy(Strategy::SearchRefine).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            b.clone().semantic_cache(false).fingerprint()
        );
        // The transport and survivability knobs do not: replay is
        // transport-independent, and reaping/compaction/disk faults
        // change durability, never transcript content. The replication
        // knobs are in the same class — a follower must open a store
        // written by its primary, so they must never move the
        // fingerprint.
        assert_eq!(
            a.fingerprint(),
            b.clone()
                .port(0)
                .max_sessions(4)
                .queue_depth(1)
                .idle_timeout_ms(250)
                .compact_every(4)
                .disk_fault_rate(0.3)
                .replica_of("127.0.0.1:9000")
                .repl_listen("127.0.0.1:0")
                .repl_ack(crate::serve::AckMode::Quorum)
                .repl_ack_timeout_ms(100)
                .auto_promote(false)
                .fingerprint()
        );
    }

    #[test]
    fn serve_config_parses_the_replication_flags() {
        let config = ServeConfig::from_args(&args(&[
            "--replica-of",
            "127.0.0.1:9000",
            "--repl-listen",
            "127.0.0.1:0",
            "--repl-ack",
            "quorum",
            "--repl-ack-timeout",
            "750",
            "--no-auto-promote",
        ]))
        .unwrap();
        assert_eq!(config.replica_of.as_deref(), Some("127.0.0.1:9000"));
        assert_eq!(config.repl_listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(config.repl_ack, crate::serve::AckMode::Quorum);
        assert_eq!(config.repl_ack_timeout_ms, 750);
        assert!(!config.auto_promote);

        assert!(
            ServeConfig::from_args(&args(&["--repl-ack", "all"])).is_err(),
            "unknown ack mode"
        );
        assert!(
            ServeConfig::from_args(&args(&["--repl-ack", "quorum"])).is_err(),
            "quorum without replication is a config error"
        );
        assert!(ServeConfig::from_args(&args(&["--repl-ack-timeout", "0"])).is_err());
    }

    #[test]
    fn serve_config_parses_the_survivability_flags() {
        let config = ServeConfig::from_args(&args(&[
            "--idle-timeout",
            "750",
            "--compact-every",
            "8",
            "--disk-fault-rate",
            "0.1",
        ]))
        .unwrap();
        assert_eq!(config.idle_timeout_ms, 750);
        assert_eq!(config.compact_every, 8);
        assert!((config.disk_fault_rate - 0.1).abs() < 1e-12);
        assert!(ServeConfig::from_args(&args(&["--disk-fault-rate", "1.5"])).is_err());
    }

    #[test]
    fn serve_config_rejects_zero_caps() {
        assert!(ServeConfig::from_args(&args(&["--max-sessions", "0"])).is_err());
        assert!(ServeConfig::from_args(&args(&["--examples", "0"])).is_err());
        assert!(ServeConfig::from_args(&args(&["--fault-rate", "-0.1"])).is_err());
    }

    #[test]
    fn load_config_parses_and_validates() {
        let config = LoadConfig::from_args(&args(&[
            "--addr",
            "127.0.0.1:9999",
            "--sessions",
            "10",
            "--concurrency",
            "5",
            "--rounds",
            "2",
            "--shutdown",
        ]))
        .unwrap();
        assert_eq!(config.addr, "127.0.0.1:9999");
        assert_eq!(config.sessions, 10);
        assert_eq!(config.concurrency, 5);
        assert_eq!(config.max_rounds, 2);
        assert!(config.shutdown);
        assert!(LoadConfig::from_args(&args(&["--sessions", "0"])).is_err());
    }

    #[test]
    fn load_config_endpoint_list_splits_on_commas() {
        let single = LoadConfig::default();
        assert_eq!(single.endpoints(), vec![single.addr.clone()]);

        let config = LoadConfig {
            addr: "127.0.0.1:4151, 127.0.0.1:4152".to_string(),
            ..LoadConfig::default()
        };
        assert_eq!(
            config.endpoints(),
            vec!["127.0.0.1:4151".to_string(), "127.0.0.1:4152".to_string()]
        );
        assert!(config.validate().is_ok());
        let empty = LoadConfig {
            addr: " , ".to_string(),
            ..LoadConfig::default()
        };
        assert!(empty.validate().is_err());
    }
}
