//! Hot-standby replication: journal shipping, fencing epochs, and
//! promotion (DESIGN.md §17).
//!
//! A **primary** daemon streams its session-store records — the same
//! `(session_id, SessionOp)` units the store journals write-ahead — to
//! one or more **followers** over a second length-prefixed channel
//! (`--repl-listen` on the primary, `--replica-of` on the follower).
//! A follower applies each record through
//! [`SessionStore::apply_replicated`], which feeds the exact replay path
//! a restart uses, so the follower's in-memory session image tracks the
//! primary byte-identically: when a client re-attaches after failover,
//! the promoted follower replays the shipped ops into the same
//! transcript the primary would have produced.
//!
//! # The replication log
//!
//! [`ReplLog`] is the logical op stream since store lineage began:
//! every store append lands in it (metadata records — checkpoints,
//! epochs — never do), and its index is the shipping sequence number.
//! It is deliberately independent of the on-disk journal: compaction
//! rewrites the file but never renumbers the *live* stream, so a
//! follower can catch up across a primary compaction without
//! resynchronization. A node boots its log from the store's surviving
//! ops — which means a restart *after* a compaction renumbers the
//! stream (the dropped ops are gone), so raw record counts are **not**
//! trusted across reconnects. Every stream position carries a rolling
//! **lineage hash** of the records before it; the handshake exchanges
//! `(have, have_hash)` and the primary verifies the follower's prefix
//! is byte-identical to its own before resuming shipping there. On any
//! mismatch — a renumbered stream, a fenced ex-primary rejoining with
//! divergent history, ops lost to a degraded disk — the primary answers
//! [`ReplFrame::Resync`] instead of silently skipping records: the
//! follower resets its store to an empty image (keeping its fencing
//! epoch) and re-bootstraps from sequence zero.
//!
//! # Fencing
//!
//! Every store carries a monotonic **epoch**, persisted as a metadata
//! record (see [`SessionOp::Epoch`](super::store::SessionOp)) and bumped
//! on every promotion. The handshake exchanges epochs, and the rule is
//! one-directional: whoever sees a *higher* epoch than its own knows it
//! has been deposed. A promoted follower sends a best-effort fencing
//! notice to its old primary; a deposed primary flips
//! [`ReplState::fenced`] and answers every subsequent write attempt with
//! a typed [`Fenced`](super::protocol::ServerResponse::Fenced) response
//! instead of silently diverging its store.
//!
//! # Acknowledgement modes
//!
//! With `--repl-ack quorum`, the serving loop release-gates every
//! state-changing response on follower durability: the response is not
//! written until a majority of the *connected* followers (at least one)
//! has acknowledged the record the request itself appended — so while a
//! follower is connected, a round the client saw acknowledged is never
//! lost to a primary crash. With **zero** followers connected the
//! quorum is *not* trivially satisfied: the gate blocks for one full
//! ack timeout (giving a follower the chance to reconnect), and only
//! then does the node enter a counted **degraded-async** state —
//! subsequent responses are released immediately (each counted in
//! `repl_ack_timeouts`, the entry in `repl_ack_degraded_entries`) until
//! a follower reconnects, which re-arms the gate. Rounds released while
//! degraded ride at the same risk as `--repl-ack none`; the counters
//! make that window observable instead of silent. With `--repl-ack
//! none`, shipping is asynchronous and the tail of the stream rides at
//! risk (the `run_failover` harness measures exactly that trade).
//!
//! # The partition caveat
//!
//! Auto-promotion fires on *link loss*, which a network partition is
//! indistinguishable from: a partitioned-but-alive primary keeps
//! serving while the follower promotes itself, and the promoted node's
//! fencing notice cannot cross the partition — both sides accept writes
//! at different epochs until the partition heals and the old primary
//! hears the higher epoch (at which point it fences and refuses further
//! writes, but the divergence already happened). Quorum acks bound the
//! damage — the partitioned primary stalls one ack timeout and then
//! only releases counted degraded responses — but do not prevent it.
//! Deployments where partitions are plausible should run
//! `--no-auto-promote` and promote through the admin `Promote` request
//! instead.

use super::protocol::{read_frame, read_frame_deadline, write_frame};
use super::store::{Appended, SessionOp, SessionStore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Replication wire-protocol version (independent of the client
/// protocol's version).
pub const REPL_PROTOCOL_VERSION: u32 = 1;

/// Poll tick for the replication threads: how quickly shutdown,
/// new records, and link loss are observed.
const REPL_POLL: Duration = Duration::from_millis(10);

/// A primary sends a heartbeat after this long without records, so a
/// quiet stream still proves the link is alive.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(500);

/// A follower declares the link dead after this long without a frame
/// (heartbeats make this a true failure detector, not a quiet stream).
const LINK_TIMEOUT: Duration = Duration::from_secs(5);

/// Handshake bound: how long either side waits for the peer's first
/// frame.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Records shipped per batch before acks are drained again.
const SHIP_BATCH: usize = 256;

/// Seed of the rolling lineage hash (FNV-1a offset basis): the hash of
/// the empty stream prefix.
pub const LINEAGE_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a pass over `bytes`, continuing from `hash`.
fn fnv_mix(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Extends the rolling lineage hash by one record. Two nodes hold the
/// same hash at position `n` iff their first `n` records are
/// byte-identical — which is what makes a `(have, have_hash)` pair a
/// trustworthy resume point where a raw count is not.
fn record_hash(prev: u64, session_id: u64, op: &SessionOp) -> u64 {
    // Infallible in practice: `SessionOp` is plain-data serde (no maps
    // with non-string keys, no fallible Serialize impls).
    let body = serde_json::to_vec(op).expect("a SessionOp serializes");
    fnv_mix(fnv_mix(prev, &session_id.to_le_bytes()), &body)
}

/// Which role a serving node is currently playing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Accepting sessions and (when configured) shipping to followers.
    #[default]
    Primary,
    /// Standing by: applying the primary's stream, refusing sessions
    /// until promoted.
    Follower,
    /// A deposed ex-primary: a higher epoch exists, so every write
    /// attempt gets a typed refusal.
    Fenced,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
            Role::Fenced => "fenced",
        })
    }
}

/// When the primary releases a state-changing response to the client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AckMode {
    /// Immediately after local execution; shipping is asynchronous.
    #[default]
    None,
    /// After a majority of the connected followers (at least one) has
    /// acknowledged every record the request journaled.
    Quorum,
}

impl FromStr for AckMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(AckMode::None),
            "quorum" => Ok(AckMode::Quorum),
            other => Err(format!("unknown ack mode {other:?} (none|quorum)")),
        }
    }
}

impl std::fmt::Display for AckMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AckMode::None => "none",
            AckMode::Quorum => "quorum",
        })
    }
}

/// One replication-channel frame (either direction), carried by the same
/// length-prefixed JSON codec the client protocol uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplFrame {
    /// Follower → primary: opens the stream.
    Hello {
        /// The follower's [`REPL_PROTOCOL_VERSION`].
        version: u32,
        /// The follower's store fingerprint; a mismatch is refused (the
        /// stores would replay into different transcripts).
        fingerprint: u64,
        /// The follower's fencing epoch. Higher than the primary's means
        /// the "primary" is deposed — this frame doubles as the fencing
        /// notice a promoted follower sends its old primary.
        epoch: u64,
        /// Records the follower already holds; shipping resumes there.
        have: u64,
        /// The follower's rolling lineage hash at `have` (see
        /// [`LINEAGE_HASH_SEED`]). The primary refuses to resume from a
        /// raw count whose prefix it cannot prove byte-identical to its
        /// own stream — a compaction-then-restart renumbers the stream,
        /// and trusting `have` across that would silently skip records.
        have_hash: u64,
    },
    /// Primary → follower: the stream is open.
    Welcome {
        /// The primary's fencing epoch (the follower adopts it).
        epoch: u64,
        /// The primary's current stream length.
        tail: u64,
    },
    /// Either direction: the receiver's epoch is stale; it must stop
    /// writing and rejoin as a follower.
    Fenced {
        /// The higher epoch that deposed it.
        epoch: u64,
    },
    /// The handshake was refused for a non-epoch reason (version or
    /// fingerprint mismatch).
    Refused {
        /// Human-readable reason.
        message: String,
    },
    /// Primary → follower: the follower's `(have, have_hash)` does not
    /// name a prefix of the primary's stream — the stream was renumbered
    /// (compaction + restart) or the stores diverged (e.g. a deposed
    /// ex-primary rejoining). The follower must reset to an empty store
    /// image and re-handshake from sequence zero; resuming by count
    /// would skip records while still acknowledging them.
    Resync {
        /// Human-readable reason.
        message: String,
    },
    /// Primary → follower: one record of the op stream.
    Ship {
        /// Stream index of this record.
        seq: u64,
        /// The session the op belongs to.
        session_id: u64,
        /// The op itself — the same unit the store journals.
        op: SessionOp,
    },
    /// Primary → follower: the link is alive; `tail` lets an idle
    /// follower measure lag.
    Heartbeat {
        /// The primary's current stream length.
        tail: u64,
    },
    /// Follower → primary: every record below `upto` is durably applied.
    Ack {
        /// Exclusive upper bound of the acknowledged prefix.
        upto: u64,
    },
}

#[derive(Debug, Default)]
struct LogInner {
    /// The logical op stream; index = shipping sequence number.
    records: Vec<(u64, SessionOp)>,
    /// `hashes[i]` = rolling lineage hash of the prefix of length
    /// `i + 1` (the hash of the empty prefix is [`LINEAGE_HASH_SEED`]).
    hashes: Vec<u64>,
    /// Per-connected-follower acknowledged prefix length.
    followers: HashMap<u64, u64>,
    next_follower: u64,
    /// Ship frames written across all followers (stats).
    shipped: u64,
    /// Test/chaos hook: while held, shippers stop sending (acks still
    /// drain), so replication lag builds deterministically.
    held: bool,
}

impl LogInner {
    /// Appends one record, extending the lineage hash; returns the new
    /// stream length.
    fn push(&mut self, session_id: u64, op: SessionOp) -> u64 {
        let prev = self.hashes.last().copied().unwrap_or(LINEAGE_HASH_SEED);
        self.hashes.push(record_hash(prev, session_id, &op));
        self.records.push((session_id, op));
        self.records.len() as u64
    }
}

/// The in-memory logical op stream and follower-acknowledgement state
/// (see the module docs).
#[derive(Debug, Default)]
pub struct ReplLog {
    inner: Mutex<LogInner>,
    /// Signalled when records are appended.
    grew: Condvar,
    /// Signalled when a follower acknowledges.
    acked: Condvar,
}

impl ReplLog {
    /// An empty log.
    pub fn new() -> ReplLog {
        ReplLog::default()
    }

    /// A log seeded with a store's surviving ops. Counts (and lineage
    /// hashes) stay comparable across a restart only while nothing was
    /// compacted away; the handshake's hash check is what catches the
    /// renumbered case.
    pub fn preloaded(records: Vec<(u64, SessionOp)>) -> ReplLog {
        let mut inner = LogInner::default();
        for (session_id, op) in records {
            inner.push(session_id, op);
        }
        ReplLog {
            inner: Mutex::new(inner),
            ..ReplLog::default()
        }
    }

    fn lock(&self) -> MutexGuard<'_, LogInner> {
        // Poison tolerance mirrors the store's: the log is a Vec and two
        // maps, all well-formed at every await point.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one record; returns the stream length after it.
    pub fn append(&self, session_id: u64, op: SessionOp) -> u64 {
        let mut inner = self.lock();
        let tail = inner.push(session_id, op);
        drop(inner);
        self.grew.notify_all();
        tail
    }

    /// The stream length (the next record's sequence number).
    pub fn tail(&self) -> u64 {
        self.lock().records.len() as u64
    }

    /// The rolling lineage hash of the first `n` records — `None` when
    /// the stream is shorter than `n`, i.e. `n` is not a position this
    /// log can vouch for.
    pub fn prefix_hash(&self, n: u64) -> Option<u64> {
        if n == 0 {
            return Some(LINEAGE_HASH_SEED);
        }
        let inner = self.lock();
        inner.hashes.get(n as usize - 1).copied()
    }

    /// Empties the stream (records and hashes; connected-follower state
    /// is untouched) — the follower side of a [`ReplFrame::Resync`],
    /// invoked through [`SessionStore::reset_for_resync`].
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.records.clear();
        inner.hashes.clear();
        drop(inner);
        self.grew.notify_all();
    }

    /// A batch of records starting at `from` (empty while shipping is
    /// held, or when `from` is at or past the tail).
    pub fn records_from(&self, from: u64, max: usize) -> Vec<(u64, u64, SessionOp)> {
        let inner = self.lock();
        if inner.held {
            return Vec::new();
        }
        inner
            .records
            .iter()
            .enumerate()
            .skip(from as usize)
            .take(max)
            .map(|(seq, (id, op))| (seq as u64, *id, op.clone()))
            .collect()
    }

    /// Registers a follower connection whose acknowledged prefix starts
    /// at `have`; returns its id for [`ReplLog::ack`].
    pub fn register(&self, have: u64) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_follower;
        inner.next_follower += 1;
        inner.followers.insert(id, have);
        drop(inner);
        // A registration can satisfy (or change) quorum for waiters.
        self.acked.notify_all();
        id
    }

    /// Drops a follower connection from the quorum.
    pub fn deregister(&self, id: u64) {
        self.lock().followers.remove(&id);
        self.acked.notify_all();
    }

    /// Records a follower's acknowledged prefix (monotonic).
    pub fn ack(&self, id: u64, upto: u64) {
        let mut inner = self.lock();
        if let Some(slot) = inner.followers.get_mut(&id) {
            *slot = (*slot).max(upto);
        }
        drop(inner);
        self.acked.notify_all();
    }

    /// Counts one shipped record batch (stats).
    pub fn note_shipped(&self, n: u64) {
        self.lock().shipped += n;
    }

    /// Ship frames written across all followers since boot.
    pub fn shipped(&self) -> u64 {
        self.lock().shipped
    }

    /// Connected followers.
    pub fn followers(&self) -> usize {
        self.lock().followers.len()
    }

    /// Records not yet acknowledged by the slowest connected follower
    /// (0 with no followers: nothing is owed).
    pub fn lag(&self) -> u64 {
        let inner = self.lock();
        let tail = inner.records.len() as u64;
        inner
            .followers
            .values()
            .map(|acked| tail.saturating_sub(*acked))
            .max()
            .unwrap_or(0)
    }

    /// The prefix length acknowledged by a majority of the connected
    /// followers. With **none** connected nothing is durable anywhere
    /// else, so the answer is 0 — the gate (not this function) decides
    /// how to degrade after the ack timeout.
    fn quorum_acked(inner: &LogInner) -> u64 {
        let followers = inner.followers.len();
        if followers == 0 {
            return 0;
        }
        let mut acks: Vec<u64> = inner.followers.values().copied().collect();
        acks.sort_unstable_by(|a, b| b.cmp(a));
        // Majority of the replica set including the primary itself:
        // (followers + 1 primary) / 2 + 1 nodes, minus the primary.
        let needed = followers.div_ceil(2);
        acks[needed - 1]
    }

    /// Blocks until a follower majority has acknowledged `upto` records,
    /// the deadline passes, or `running` flips false. Returns whether
    /// the quorum was reached.
    pub fn wait_quorum(&self, upto: u64, deadline: Instant, running: &AtomicBool) -> bool {
        let mut inner = self.lock();
        loop {
            if Self::quorum_acked(&inner) >= upto {
                return true;
            }
            if !running.load(Ordering::Acquire) || Instant::now() >= deadline {
                return false;
            }
            let (guard, _) = self
                .acked
                .wait_timeout(inner, REPL_POLL)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Blocks until the stream grows past `from` or the timeout passes.
    fn wait_grow(&self, from: u64, timeout: Duration) {
        let inner = self.lock();
        if inner.records.len() as u64 > from && !inner.held {
            return;
        }
        let _ = self
            .grew
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
    }

    /// Test/chaos hook: pauses (or resumes) shipping so replication lag
    /// builds deterministically. Acks keep draining.
    pub fn hold(&self, held: bool) {
        self.lock().held = held;
        self.grew.notify_all();
    }
}

/// Shared replication state: the log, the fencing epoch, and the node's
/// current role. Present (and inert) even when replication is disabled,
/// so the serving loop has one code path.
#[derive(Debug)]
pub struct ReplState {
    /// The logical op stream (see [`ReplLog`]).
    pub log: Arc<ReplLog>,
    store: Arc<SessionStore>,
    epoch: AtomicU64,
    follower: AtomicBool,
    fenced: AtomicBool,
    /// The higher epoch that fenced this node (0 while unfenced).
    fenced_by: AtomicU64,
    /// When state-changing responses are released (see [`AckMode`]).
    pub ack: AckMode,
    /// Longest one response waits for follower acknowledgement before
    /// being released anyway (counted in `ack_timeouts`).
    pub ack_timeout_ms: u64,
    ack_timeouts: AtomicU64,
    /// Quorum gating is degraded to counted-async: zero followers were
    /// connected for a full ack timeout. Cleared when one reconnects.
    ack_degraded: AtomicBool,
    ack_degraded_entries: AtomicU64,
}

impl ReplState {
    /// Builds the node's replication state over its store: the log is
    /// seeded from the store's surviving ops and attached so every
    /// subsequent append flows into it.
    pub fn new(
        store: Arc<SessionStore>,
        follower: bool,
        ack: AckMode,
        ack_timeout_ms: u64,
    ) -> Arc<ReplState> {
        let log = Arc::new(ReplLog::preloaded(store.replication_image()));
        store.attach_repl(Arc::clone(&log));
        Arc::new(ReplState {
            log,
            epoch: AtomicU64::new(store.epoch()),
            store,
            follower: AtomicBool::new(follower),
            fenced: AtomicBool::new(false),
            fenced_by: AtomicU64::new(0),
            ack,
            ack_timeout_ms,
            ack_timeouts: AtomicU64::new(0),
            ack_degraded: AtomicBool::new(false),
            ack_degraded_entries: AtomicU64::new(0),
        })
    }

    /// The node's fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether a higher epoch has deposed this node.
    pub fn fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    /// The epoch that fenced this node (0 while unfenced).
    pub fn fenced_by(&self) -> u64 {
        self.fenced_by.load(Ordering::Acquire)
    }

    /// Whether the node is standing by as a follower.
    pub fn is_follower(&self) -> bool {
        self.follower.load(Ordering::Acquire)
    }

    /// The current role.
    pub fn role(&self) -> Role {
        if self.fenced() {
            Role::Fenced
        } else if self.is_follower() {
            Role::Follower
        } else {
            Role::Primary
        }
    }

    /// Whether `Hello` must be refused (followers and fenced nodes do
    /// not open sessions).
    pub fn refuses_sessions(&self) -> bool {
        self.is_follower() || self.fenced()
    }

    /// Marks the node deposed by `epoch`. Idempotent; the epoch itself
    /// is *not* adopted or persisted — a fenced node writes nothing.
    pub fn fence(&self, epoch: u64) {
        self.fenced_by.fetch_max(epoch, Ordering::AcqRel);
        self.fenced.store(true, Ordering::Release);
    }

    /// Promotes the node to primary: bumps the epoch past everything it
    /// has seen, persists it in the store, and starts accepting
    /// sessions. A fenced node refuses (it must rejoin as a follower
    /// under the new primary instead of forking history).
    pub fn promote(&self) -> io::Result<u64> {
        if self.fenced() {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!(
                    "node is fenced (deposed by epoch {}); rejoin as a follower instead of promoting",
                    self.fenced_by()
                ),
            ));
        }
        let epoch = self.epoch().max(self.fenced_by()) + 1;
        self.store.set_epoch(epoch)?;
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
        self.follower.store(false, Ordering::Release);
        Ok(epoch)
    }

    /// Adopts a primary's (equal-or-higher) epoch, persisting it.
    pub fn adopt_epoch(&self, epoch: u64) -> io::Result<()> {
        if epoch > self.epoch() {
            self.store.set_epoch(epoch)?;
            self.epoch.fetch_max(epoch, Ordering::AcqRel);
        }
        Ok(())
    }

    /// Release-gates one state-changing response on follower durability
    /// of the records the request itself appended — `upto` is the
    /// stream length right after that append (0 = the request appended
    /// nothing; nothing to gate). No-op under [`AckMode::None`].
    ///
    /// A timeout releases the response anyway — the client must not
    /// hang on a dead follower — and is counted. When the timeout fires
    /// with **zero** followers connected, the node additionally enters
    /// *degraded-async* mode: until a follower reconnects (which
    /// re-arms the gate), subsequent responses are released immediately
    /// but still counted in `ack_timeouts`, so the no-durability window
    /// is observable rather than a silent trivial pass.
    pub fn quorum_gate(&self, upto: u64, running: &AtomicBool) {
        if self.ack != AckMode::Quorum || upto == 0 {
            return;
        }
        if self.log.followers() > 0 {
            // A follower is back: leave degraded-async mode and gate
            // for real again.
            self.ack_degraded.store(false, Ordering::Release);
        } else if self.ack_degraded.load(Ordering::Acquire) {
            // Already degraded: zero followers have cost a full ack
            // timeout once; stalling every subsequent response would
            // add latency without adding durability.
            self.ack_timeouts.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let deadline = Instant::now() + Duration::from_millis(self.ack_timeout_ms);
        if !self.log.wait_quorum(upto, deadline, running) {
            self.ack_timeouts.fetch_add(1, Ordering::Relaxed);
            if self.log.followers() == 0 && !self.ack_degraded.swap(true, Ordering::AcqRel) {
                self.ack_degraded_entries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Responses released on an ack timeout (or while degraded-async)
    /// instead of follower durability.
    pub fn ack_timeouts(&self) -> u64 {
        self.ack_timeouts.load(Ordering::Relaxed)
    }

    /// Whether quorum gating is currently degraded to counted-async
    /// (zero followers connected for at least one full ack timeout).
    pub fn ack_degraded(&self) -> bool {
        self.ack_degraded.load(Ordering::Acquire)
    }

    /// Times the node entered degraded-async gating since boot.
    pub fn ack_degraded_entries(&self) -> u64 {
        self.ack_degraded_entries.load(Ordering::Relaxed)
    }

    /// Resets this node's store to an empty image — the follower side
    /// of a [`ReplFrame::Resync`]. The fencing epoch survives; every
    /// record does not (the primary re-ships its whole image from
    /// sequence zero).
    pub fn resync(&self) -> io::Result<()> {
        self.store.reset_for_resync()
    }
}

// ---------------------------------------------------------------------
// Primary side: the replication acceptor and per-follower shippers
// ---------------------------------------------------------------------

/// Accepts follower connections and spawns one shipper per follower.
/// Runs until `running` flips false.
pub fn run_repl_acceptor(
    listener: TcpListener,
    repl: Arc<ReplState>,
    running: Arc<AtomicBool>,
    fingerprint: u64,
) {
    let mut shippers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while running.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let repl = Arc::clone(&repl);
                let running = Arc::clone(&running);
                shippers.push(std::thread::spawn(move || {
                    run_shipper(stream, &repl, &running, fingerprint);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(REPL_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
        shippers.retain(|s| !s.is_finished());
    }
    for shipper in shippers {
        let _ = shipper.join();
    }
}

/// Serves one follower connection: handshake, then ship-and-drain until
/// the link drops, the daemon stops, or this node is fenced.
fn run_shipper(mut stream: TcpStream, repl: &ReplState, running: &AtomicBool, fingerprint: u64) {
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(REPL_POLL)).is_err() {
        return;
    }
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let hello = match read_frame_deadline::<_, ReplFrame>(&mut stream, deadline, true) {
        Ok(Some(ReplFrame::Hello {
            version,
            fingerprint: fp,
            epoch,
            have,
            have_hash,
        })) => {
            if version != REPL_PROTOCOL_VERSION {
                let _ = write_frame(
                    &mut stream,
                    &ReplFrame::Refused {
                        message: format!(
                            "replication protocol {version} unsupported (speaking {REPL_PROTOCOL_VERSION})"
                        ),
                    },
                );
                return;
            }
            if fp != fingerprint {
                let _ = write_frame(
                    &mut stream,
                    &ReplFrame::Refused {
                        message: format!(
                            "store fingerprint mismatch: follower {fp:#018x}, primary {fingerprint:#018x}"
                        ),
                    },
                );
                return;
            }
            (epoch, have, have_hash)
        }
        _ => return,
    };
    let (peer_epoch, have, have_hash) = hello;
    if peer_epoch > repl.epoch() {
        // The peer out-epochs us: we are the deposed one. Fence and say
        // so — this is the promoted follower's fencing notice landing.
        repl.fence(peer_epoch);
        let _ = write_frame(&mut stream, &ReplFrame::Fenced { epoch: peer_epoch });
        return;
    }
    // Lineage check: `have` is a trustworthy resume point only if the
    // follower's first `have` records are byte-identical to ours. A
    // compaction followed by a restart renumbers this node's stream, and
    // a fenced ex-primary rejoins with divergent history — in both
    // cases resuming by raw count would skip genuinely new records
    // while the follower still acknowledged them (silent acked data
    // loss). Refuse and demand a resync instead.
    match repl.log.prefix_hash(have) {
        Some(hash) if hash == have_hash => {}
        _ => {
            let _ = write_frame(
                &mut stream,
                &ReplFrame::Resync {
                    message: format!(
                        "stream lineage mismatch at record {have} (primary tail {}): the \
                         op stream was renumbered or diverged; reset to an empty store \
                         image and re-handshake from sequence zero",
                        repl.log.tail()
                    ),
                },
            );
            return;
        }
    }
    if write_frame(
        &mut stream,
        &ReplFrame::Welcome {
            epoch: repl.epoch(),
            tail: repl.log.tail(),
        },
    )
    .is_err()
    {
        return;
    }

    let id = repl.log.register(have);
    let mut sent = have;
    let mut last_write = Instant::now();
    loop {
        if !running.load(Ordering::Acquire) || repl.fenced() {
            break;
        }
        // Drain acknowledgements (non-blocking: the socket's poll tick
        // surfaces WouldBlock when the follower is quiet).
        loop {
            match read_frame::<_, ReplFrame>(&mut stream) {
                Ok(Some(ReplFrame::Ack { upto })) => repl.log.ack(id, upto),
                Ok(Some(_)) => {}
                Ok(None) => {
                    repl.log.deregister(id);
                    return;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break;
                }
                Err(_) => {
                    repl.log.deregister(id);
                    return;
                }
            }
        }
        // Ship the next batch.
        let batch = repl.log.records_from(sent, SHIP_BATCH);
        if batch.is_empty() {
            if last_write.elapsed() >= HEARTBEAT_EVERY {
                let tail = repl.log.tail();
                if write_frame(&mut stream, &ReplFrame::Heartbeat { tail }).is_err() {
                    break;
                }
                last_write = Instant::now();
            }
            repl.log.wait_grow(sent, REPL_POLL);
            continue;
        }
        let n = batch.len() as u64;
        let mut failed = false;
        for (seq, session_id, op) in batch {
            if write_frame(
                &mut stream,
                &ReplFrame::Ship {
                    seq,
                    session_id,
                    op,
                },
            )
            .is_err()
            {
                failed = true;
                break;
            }
            sent = seq + 1;
        }
        if failed {
            break;
        }
        repl.log.note_shipped(n);
        last_write = Instant::now();
    }
    repl.log.deregister(id);
}

// ---------------------------------------------------------------------
// Follower side: the receive/apply loop and promotion
// ---------------------------------------------------------------------

/// Why one connection to the primary ended.
enum FollowEnd {
    /// The daemon is stopping or the node was promoted elsewhere.
    Stopped,
    /// The peer acknowledged being deposed by our higher epoch; we are
    /// the rightful primary.
    PeerFenced,
    /// Version/fingerprint mismatch; retrying will not help quickly.
    Refused,
    /// The primary cannot vouch for our `(have, have_hash)` prefix —
    /// its stream was renumbered or our stores diverged. We must reset
    /// to an empty image and re-handshake from sequence zero.
    Resync,
    /// The link dropped (connect failure, EOF, or frame timeout).
    LinkLost {
        /// Whether a handshake had completed on this attempt.
        was_connected: bool,
    },
}

/// Follows a primary until the daemon stops, the node is promoted, or —
/// with `auto_promote` — the link to a once-reached primary drops, at
/// which point the follower promotes itself and sends the old primary a
/// best-effort fencing notice.
pub fn run_follower(
    primary: &str,
    repl: &Arc<ReplState>,
    running: &Arc<AtomicBool>,
    fingerprint: u64,
    auto_promote: bool,
) {
    let mut ever_connected = false;
    while running.load(Ordering::Acquire) && repl.is_follower() {
        match follow_once(primary, repl, running, fingerprint) {
            FollowEnd::Stopped => return,
            FollowEnd::PeerFenced => {
                // Our epoch already dominates; make the role match it.
                if repl.is_follower() {
                    let _ = repl.promote();
                }
                return;
            }
            FollowEnd::Refused => {
                // A config mismatch will not heal by tight retrying.
                sleep_while_running(running, Duration::from_millis(500));
            }
            FollowEnd::Resync => {
                // Our history is not a prefix of the primary's stream:
                // wipe to an empty image (the epoch survives) and
                // re-bootstrap from sequence zero. `ever_connected` is
                // deliberately reset — auto-promoting a just-wiped
                // follower would serve an empty store.
                ever_connected = false;
                if repl.resync().is_err() {
                    // The wipe needs a writable disk; back off and retry.
                    sleep_while_running(running, Duration::from_millis(500));
                }
            }
            FollowEnd::LinkLost { was_connected } => {
                ever_connected |= was_connected;
                if ever_connected && auto_promote && repl.is_follower() {
                    if repl.promote().is_ok() {
                        notify_deposed(primary, repl.epoch(), fingerprint);
                    }
                    return;
                }
                sleep_while_running(running, Duration::from_millis(100));
            }
        }
    }
}

/// One connection attempt to the primary: handshake, then apply shipped
/// records until the link ends.
fn follow_once(
    primary: &str,
    repl: &ReplState,
    running: &AtomicBool,
    fingerprint: u64,
) -> FollowEnd {
    let Ok(mut stream) = TcpStream::connect(primary) else {
        return FollowEnd::LinkLost {
            was_connected: false,
        };
    };
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(REPL_POLL)).is_err() {
        return FollowEnd::LinkLost {
            was_connected: false,
        };
    }
    let have = repl.log.tail();
    let have_hash = repl
        .log
        .prefix_hash(have)
        .unwrap_or(LINEAGE_HASH_SEED);
    if write_frame(
        &mut stream,
        &ReplFrame::Hello {
            version: REPL_PROTOCOL_VERSION,
            fingerprint,
            epoch: repl.epoch(),
            have,
            have_hash,
        },
    )
    .is_err()
    {
        return FollowEnd::LinkLost {
            was_connected: false,
        };
    }
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    match read_frame_deadline::<_, ReplFrame>(&mut stream, deadline, true) {
        Ok(Some(ReplFrame::Welcome { epoch, .. })) => {
            let _ = repl.adopt_epoch(epoch);
        }
        Ok(Some(ReplFrame::Fenced { .. })) => return FollowEnd::PeerFenced,
        Ok(Some(ReplFrame::Refused { .. })) => return FollowEnd::Refused,
        Ok(Some(ReplFrame::Resync { .. })) => return FollowEnd::Resync,
        _ => {
            return FollowEnd::LinkLost {
                was_connected: false,
            }
        }
    }

    let mut last_frame = Instant::now();
    loop {
        if !running.load(Ordering::Acquire) || !repl.is_follower() {
            return FollowEnd::Stopped;
        }
        match read_frame::<_, ReplFrame>(&mut stream) {
            Ok(Some(ReplFrame::Ship {
                seq,
                session_id,
                op,
            })) => {
                last_frame = Instant::now();
                let tail = repl.log.tail();
                if seq > tail {
                    // A gap means the streams desynchronized; drop the
                    // link and re-handshake from our actual count.
                    return FollowEnd::LinkLost {
                        was_connected: true,
                    };
                }
                if seq == tail {
                    // Applying through the store feeds the same replay
                    // image a restart uses — and the attached log, so
                    // our `have` advances with it.
                    let durability = repl.store.apply_replicated(session_id, op);
                    if !matches!(durability, Appended::Durable) {
                        // A degraded apply is in memory only; claiming
                        // durability to the primary would be a lie, so
                        // the ack stream simply stops advancing.
                        continue;
                    }
                }
                if write_frame(
                    &mut stream,
                    &ReplFrame::Ack {
                        upto: repl.log.tail(),
                    },
                )
                .is_err()
                {
                    return FollowEnd::LinkLost {
                        was_connected: true,
                    };
                }
            }
            Ok(Some(ReplFrame::Heartbeat { .. })) => {
                last_frame = Instant::now();
                if write_frame(
                    &mut stream,
                    &ReplFrame::Ack {
                        upto: repl.log.tail(),
                    },
                )
                .is_err()
                {
                    return FollowEnd::LinkLost {
                        was_connected: true,
                    };
                }
            }
            Ok(Some(ReplFrame::Fenced { .. })) => return FollowEnd::PeerFenced,
            Ok(Some(ReplFrame::Resync { .. })) => return FollowEnd::Resync,
            Ok(Some(_)) => {}
            Ok(None) => {
                return FollowEnd::LinkLost {
                    was_connected: true,
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if last_frame.elapsed() >= LINK_TIMEOUT {
                    return FollowEnd::LinkLost {
                        was_connected: true,
                    };
                }
            }
            Err(_) => {
                return FollowEnd::LinkLost {
                    was_connected: true,
                }
            }
        }
    }
}

/// Best-effort fencing notice to a (possibly dead) old primary: a
/// `Hello` carrying our higher epoch makes it fence itself; every
/// failure mode is fine (it is dead, or it will be fenced the moment it
/// ships to us).
pub fn notify_deposed(addr: &str, epoch: u64, fingerprint: u64) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(REPL_POLL));
    let _ = write_frame(
        &mut stream,
        &ReplFrame::Hello {
            version: REPL_PROTOCOL_VERSION,
            fingerprint,
            epoch,
            have: 0,
            have_hash: LINEAGE_HASH_SEED,
        },
    );
    let deadline = Instant::now() + Duration::from_millis(500);
    let _ = read_frame_deadline::<_, ReplFrame>(&mut stream, deadline, true);
}

fn sleep_while_running(running: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while running.load(Ordering::Acquire) && Instant::now() < deadline {
        std::thread::sleep(REPL_POLL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_mode_parses_and_renders() {
        assert_eq!("none".parse::<AckMode>().unwrap(), AckMode::None);
        assert_eq!("quorum".parse::<AckMode>().unwrap(), AckMode::Quorum);
        assert!("all".parse::<AckMode>().is_err());
        assert_eq!(AckMode::Quorum.to_string(), "quorum");
    }

    #[test]
    fn repl_frames_roundtrip() {
        let frames = vec![
            ReplFrame::Hello {
                version: REPL_PROTOCOL_VERSION,
                fingerprint: 0xF00D,
                epoch: 2,
                have: 17,
                have_hash: 0xBEEF,
            },
            ReplFrame::Welcome { epoch: 2, tail: 40 },
            ReplFrame::Fenced { epoch: 3 },
            ReplFrame::Resync {
                message: "lineage mismatch".to_string(),
            },
            ReplFrame::Ship {
                seq: 5,
                session_id: 1,
                op: SessionOp::Opened,
            },
            ReplFrame::Heartbeat { tail: 41 },
            ReplFrame::Ack { upto: 41 },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = &wire[..];
        for want in &frames {
            let got: ReplFrame = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn log_tracks_tail_acks_and_lag() {
        let log = ReplLog::new();
        assert_eq!(log.tail(), 0);
        assert_eq!(log.lag(), 0, "no followers: nothing owed");
        log.append(0, SessionOp::Opened);
        log.append(0, SessionOp::Closed);
        assert_eq!(log.tail(), 2);

        let f = log.register(0);
        assert_eq!(log.lag(), 2);
        log.ack(f, 1);
        assert_eq!(log.lag(), 1);
        log.ack(f, 2);
        assert_eq!(log.lag(), 0);
        // Acks are monotonic: a stale ack never regresses.
        log.ack(f, 1);
        assert_eq!(log.lag(), 0);
        log.deregister(f);
        assert_eq!(log.lag(), 0);
    }

    #[test]
    fn hold_pauses_shipping_reads() {
        let log = ReplLog::new();
        log.append(0, SessionOp::Opened);
        assert_eq!(log.records_from(0, 16).len(), 1);
        log.hold(true);
        assert!(log.records_from(0, 16).is_empty(), "held log ships nothing");
        log.hold(false);
        assert_eq!(log.records_from(0, 16).len(), 1);
    }

    #[test]
    fn quorum_wait_blocks_without_followers_and_gates_with_one() {
        let log = ReplLog::new();
        log.append(0, SessionOp::Opened);
        let running = AtomicBool::new(true);
        // No followers: nothing is durable anywhere else, so the wait
        // must NOT pass trivially — it times out (the gate's degraded
        // accounting takes over from there).
        assert!(
            !log.wait_quorum(1, Instant::now() + Duration::from_millis(30), &running),
            "zero connected followers must not satisfy a quorum"
        );

        let f = log.register(0);
        assert!(
            !log.wait_quorum(1, Instant::now() + Duration::from_millis(30), &running),
            "an unacknowledged record must gate"
        );
        log.ack(f, 1);
        assert!(log.wait_quorum(1, Instant::now() + Duration::from_millis(30), &running));
    }

    #[test]
    fn quorum_is_a_majority_of_connected_followers() {
        let inner_with = |acks: &[u64]| {
            let mut inner = LogInner::default();
            for (i, a) in acks.iter().enumerate() {
                inner.followers.insert(i as u64, *a);
            }
            inner
        };
        assert_eq!(ReplLog::quorum_acked(&inner_with(&[])), 0);
        assert_eq!(ReplLog::quorum_acked(&inner_with(&[3])), 3);
        // Two followers: one ack (plus the primary) is a 2/3 majority.
        assert_eq!(ReplLog::quorum_acked(&inner_with(&[5, 1])), 5);
        // Three followers: two must acknowledge (3/4 majority).
        assert_eq!(ReplLog::quorum_acked(&inner_with(&[9, 4, 1])), 4);
    }

    #[test]
    fn prefix_hash_identifies_identical_prefixes_only() {
        let ask = |i: u64| SessionOp::Ask {
            example_idx: i,
            question: format!("q{i}"),
        };
        let a = ReplLog::new();
        let b = ReplLog::new();
        assert_eq!(a.prefix_hash(0), Some(LINEAGE_HASH_SEED));
        assert_eq!(a.prefix_hash(1), None, "no record to vouch for");
        for log in [&a, &b] {
            log.append(0, SessionOp::Opened);
            log.append(0, ask(1));
            log.append(1, SessionOp::Opened);
        }
        for n in 0..=3u64 {
            assert_eq!(a.prefix_hash(n), b.prefix_hash(n), "identical streams at {n}");
        }
        // Diverge: same length, different content → different hashes.
        a.append(0, ask(2));
        b.append(0, ask(3));
        assert_ne!(a.prefix_hash(4), b.prefix_hash(4));
        // A renumbered (compacted + restarted) stream: the survivors of
        // `a` reloaded from scratch share no comparable positions.
        let survivors = vec![(1, SessionOp::Opened)];
        let reseeded = ReplLog::preloaded(survivors);
        assert_eq!(reseeded.tail(), 1);
        assert_ne!(
            reseeded.prefix_hash(1),
            a.prefix_hash(1),
            "a renumbered stream must not look like a prefix of the original"
        );
    }

    #[test]
    fn preloaded_log_matches_incrementally_built_hashes() {
        let incremental = ReplLog::new();
        incremental.append(3, SessionOp::Opened);
        incremental.append(3, SessionOp::Closed);
        let preloaded =
            ReplLog::preloaded(vec![(3, SessionOp::Opened), (3, SessionOp::Closed)]);
        assert_eq!(incremental.prefix_hash(2), preloaded.prefix_hash(2));
        preloaded.reset();
        assert_eq!(preloaded.tail(), 0);
        assert_eq!(preloaded.prefix_hash(0), Some(LINEAGE_HASH_SEED));
        assert_eq!(preloaded.prefix_hash(1), None);
    }

    #[test]
    fn quorum_gate_degrades_to_counted_async_without_followers() {
        let store = Arc::new(
            SessionStore::open(None, super::super::store::StoreOptions::new(0)).expect("store"),
        );
        let repl = ReplState::new(Arc::clone(&store), false, AckMode::Quorum, 40);
        let running = AtomicBool::new(true);

        // First gated response with zero followers: stalls one full ack
        // timeout, counts it, and enters degraded-async.
        let upto = repl.log.append(0, SessionOp::Opened);
        let started = Instant::now();
        repl.quorum_gate(upto, &running);
        assert!(started.elapsed() >= Duration::from_millis(40));
        assert_eq!(repl.ack_timeouts(), 1);
        assert!(repl.ack_degraded());
        assert_eq!(repl.ack_degraded_entries(), 1);

        // Degraded: subsequent releases are immediate but still counted.
        let upto = repl.log.append(0, SessionOp::Closed);
        let started = Instant::now();
        repl.quorum_gate(upto, &running);
        assert!(started.elapsed() < Duration::from_millis(40));
        assert_eq!(repl.ack_timeouts(), 2);
        assert_eq!(repl.ack_degraded_entries(), 1, "one entry, many releases");

        // A follower reconnecting re-arms the gate; once it has
        // acknowledged the tail the gate passes on durability again.
        let f = repl.log.register(0);
        repl.log.ack(f, repl.log.tail());
        repl.quorum_gate(repl.log.tail(), &running);
        assert!(!repl.ack_degraded(), "a connected follower re-arms gating");
        assert_eq!(repl.ack_timeouts(), 2, "a satisfied quorum is not a timeout");
    }

    #[test]
    fn records_from_respects_offset_and_batch() {
        let log = ReplLog::new();
        for i in 0..10u64 {
            log.append(i, SessionOp::Opened);
        }
        let batch = log.records_from(7, 2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].0, 7);
        assert_eq!(batch[1].0, 8);
        assert!(log.records_from(10, 4).is_empty());
    }
}
