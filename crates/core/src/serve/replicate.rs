//! Hot-standby replication: journal shipping, fencing epochs, and
//! promotion (DESIGN.md §17).
//!
//! A **primary** daemon streams its session-store records — the same
//! `(session_id, SessionOp)` units the store journals write-ahead — to
//! one or more **followers** over a second length-prefixed channel
//! (`--repl-listen` on the primary, `--replica-of` on the follower).
//! A follower applies each record through
//! [`SessionStore::apply_replicated`], which feeds the exact replay path
//! a restart uses, so the follower's in-memory session image tracks the
//! primary byte-identically: when a client re-attaches after failover,
//! the promoted follower replays the shipped ops into the same
//! transcript the primary would have produced.
//!
//! # The replication log
//!
//! [`ReplLog`] is the logical op stream since store lineage began:
//! every store append lands in it (metadata records — checkpoints,
//! epochs — never do), and its index is the shipping sequence number.
//! It is deliberately independent of the on-disk journal: compaction
//! rewrites the file but never renumbers the stream, so a follower can
//! catch up across a primary compaction without resynchronization. A
//! node boots its log from the store's surviving ops, which is what
//! makes record counts comparable across restarts of the same lineage
//! (a follower whose store diverged from the primary's lineage must
//! start from an empty store instead).
//!
//! # Fencing
//!
//! Every store carries a monotonic **epoch**, persisted as a metadata
//! record (see [`SessionOp::Epoch`](super::store::SessionOp)) and bumped
//! on every promotion. The handshake exchanges epochs, and the rule is
//! one-directional: whoever sees a *higher* epoch than its own knows it
//! has been deposed. A promoted follower sends a best-effort fencing
//! notice to its old primary; a deposed primary flips
//! [`ReplState::fenced`] and answers every subsequent write attempt with
//! a typed [`Fenced`](super::protocol::ServerResponse::Fenced) response
//! instead of silently diverging its store.
//!
//! # Acknowledgement modes
//!
//! With `--repl-ack quorum`, the serving loop release-gates every
//! state-changing response on follower durability: the response is not
//! written until a majority of the *connected* followers (at least one)
//! has acknowledged the record — so a round the client saw acknowledged
//! is never lost to a primary crash. With `--repl-ack none`, shipping is
//! asynchronous and the tail of the stream rides at risk (the
//! `run_failover` harness measures exactly that trade).

use super::protocol::{read_frame, read_frame_deadline, write_frame};
use super::store::{Appended, SessionOp, SessionStore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Replication wire-protocol version (independent of the client
/// protocol's version).
pub const REPL_PROTOCOL_VERSION: u32 = 1;

/// Poll tick for the replication threads: how quickly shutdown,
/// new records, and link loss are observed.
const REPL_POLL: Duration = Duration::from_millis(10);

/// A primary sends a heartbeat after this long without records, so a
/// quiet stream still proves the link is alive.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(500);

/// A follower declares the link dead after this long without a frame
/// (heartbeats make this a true failure detector, not a quiet stream).
const LINK_TIMEOUT: Duration = Duration::from_secs(5);

/// Handshake bound: how long either side waits for the peer's first
/// frame.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Records shipped per batch before acks are drained again.
const SHIP_BATCH: usize = 256;

/// Which role a serving node is currently playing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Accepting sessions and (when configured) shipping to followers.
    #[default]
    Primary,
    /// Standing by: applying the primary's stream, refusing sessions
    /// until promoted.
    Follower,
    /// A deposed ex-primary: a higher epoch exists, so every write
    /// attempt gets a typed refusal.
    Fenced,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
            Role::Fenced => "fenced",
        })
    }
}

/// When the primary releases a state-changing response to the client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AckMode {
    /// Immediately after local execution; shipping is asynchronous.
    #[default]
    None,
    /// After a majority of the connected followers (at least one) has
    /// acknowledged every record the request journaled.
    Quorum,
}

impl FromStr for AckMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(AckMode::None),
            "quorum" => Ok(AckMode::Quorum),
            other => Err(format!("unknown ack mode {other:?} (none|quorum)")),
        }
    }
}

impl std::fmt::Display for AckMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AckMode::None => "none",
            AckMode::Quorum => "quorum",
        })
    }
}

/// One replication-channel frame (either direction), carried by the same
/// length-prefixed JSON codec the client protocol uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplFrame {
    /// Follower → primary: opens the stream.
    Hello {
        /// The follower's [`REPL_PROTOCOL_VERSION`].
        version: u32,
        /// The follower's store fingerprint; a mismatch is refused (the
        /// stores would replay into different transcripts).
        fingerprint: u64,
        /// The follower's fencing epoch. Higher than the primary's means
        /// the "primary" is deposed — this frame doubles as the fencing
        /// notice a promoted follower sends its old primary.
        epoch: u64,
        /// Records the follower already holds; shipping resumes there.
        have: u64,
    },
    /// Primary → follower: the stream is open.
    Welcome {
        /// The primary's fencing epoch (the follower adopts it).
        epoch: u64,
        /// The primary's current stream length.
        tail: u64,
    },
    /// Either direction: the receiver's epoch is stale; it must stop
    /// writing and rejoin as a follower.
    Fenced {
        /// The higher epoch that deposed it.
        epoch: u64,
    },
    /// The handshake was refused for a non-epoch reason (version or
    /// fingerprint mismatch).
    Refused {
        /// Human-readable reason.
        message: String,
    },
    /// Primary → follower: one record of the op stream.
    Ship {
        /// Stream index of this record.
        seq: u64,
        /// The session the op belongs to.
        session_id: u64,
        /// The op itself — the same unit the store journals.
        op: SessionOp,
    },
    /// Primary → follower: the link is alive; `tail` lets an idle
    /// follower measure lag.
    Heartbeat {
        /// The primary's current stream length.
        tail: u64,
    },
    /// Follower → primary: every record below `upto` is durably applied.
    Ack {
        /// Exclusive upper bound of the acknowledged prefix.
        upto: u64,
    },
}

#[derive(Debug, Default)]
struct LogInner {
    /// The logical op stream; index = shipping sequence number.
    records: Vec<(u64, SessionOp)>,
    /// Per-connected-follower acknowledged prefix length.
    followers: HashMap<u64, u64>,
    next_follower: u64,
    /// Ship frames written across all followers (stats).
    shipped: u64,
    /// Test/chaos hook: while held, shippers stop sending (acks still
    /// drain), so replication lag builds deterministically.
    held: bool,
}

/// The in-memory logical op stream and follower-acknowledgement state
/// (see the module docs).
#[derive(Debug, Default)]
pub struct ReplLog {
    inner: Mutex<LogInner>,
    /// Signalled when records are appended.
    grew: Condvar,
    /// Signalled when a follower acknowledges.
    acked: Condvar,
}

impl ReplLog {
    /// An empty log.
    pub fn new() -> ReplLog {
        ReplLog::default()
    }

    /// A log seeded with a store's surviving ops, so record counts are
    /// comparable across restarts of the same lineage.
    pub fn preloaded(records: Vec<(u64, SessionOp)>) -> ReplLog {
        ReplLog {
            inner: Mutex::new(LogInner {
                records,
                ..LogInner::default()
            }),
            ..ReplLog::default()
        }
    }

    fn lock(&self) -> MutexGuard<'_, LogInner> {
        // Poison tolerance mirrors the store's: the log is a Vec and two
        // maps, all well-formed at every await point.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one record; returns the stream length after it.
    pub fn append(&self, session_id: u64, op: SessionOp) -> u64 {
        let mut inner = self.lock();
        inner.records.push((session_id, op));
        let tail = inner.records.len() as u64;
        drop(inner);
        self.grew.notify_all();
        tail
    }

    /// The stream length (the next record's sequence number).
    pub fn tail(&self) -> u64 {
        self.lock().records.len() as u64
    }

    /// A batch of records starting at `from` (empty while shipping is
    /// held, or when `from` is at or past the tail).
    pub fn records_from(&self, from: u64, max: usize) -> Vec<(u64, u64, SessionOp)> {
        let inner = self.lock();
        if inner.held {
            return Vec::new();
        }
        inner
            .records
            .iter()
            .enumerate()
            .skip(from as usize)
            .take(max)
            .map(|(seq, (id, op))| (seq as u64, *id, op.clone()))
            .collect()
    }

    /// Registers a follower connection whose acknowledged prefix starts
    /// at `have`; returns its id for [`ReplLog::ack`].
    pub fn register(&self, have: u64) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_follower;
        inner.next_follower += 1;
        inner.followers.insert(id, have);
        drop(inner);
        // A registration can satisfy (or change) quorum for waiters.
        self.acked.notify_all();
        id
    }

    /// Drops a follower connection from the quorum.
    pub fn deregister(&self, id: u64) {
        self.lock().followers.remove(&id);
        self.acked.notify_all();
    }

    /// Records a follower's acknowledged prefix (monotonic).
    pub fn ack(&self, id: u64, upto: u64) {
        let mut inner = self.lock();
        if let Some(slot) = inner.followers.get_mut(&id) {
            *slot = (*slot).max(upto);
        }
        drop(inner);
        self.acked.notify_all();
    }

    /// Counts one shipped record batch (stats).
    pub fn note_shipped(&self, n: u64) {
        self.lock().shipped += n;
    }

    /// Ship frames written across all followers since boot.
    pub fn shipped(&self) -> u64 {
        self.lock().shipped
    }

    /// Connected followers.
    pub fn followers(&self) -> usize {
        self.lock().followers.len()
    }

    /// Records not yet acknowledged by the slowest connected follower
    /// (0 with no followers: nothing is owed).
    pub fn lag(&self) -> u64 {
        let inner = self.lock();
        let tail = inner.records.len() as u64;
        inner
            .followers
            .values()
            .map(|acked| tail.saturating_sub(*acked))
            .max()
            .unwrap_or(0)
    }

    /// The prefix length acknowledged by a majority of the connected
    /// followers (`u64::MAX` with none connected: a single-node quorum
    /// is trivially satisfied).
    fn quorum_acked(inner: &LogInner) -> u64 {
        let followers = inner.followers.len();
        if followers == 0 {
            return u64::MAX;
        }
        let mut acks: Vec<u64> = inner.followers.values().copied().collect();
        acks.sort_unstable_by(|a, b| b.cmp(a));
        // Majority of the replica set including the primary itself:
        // (followers + 1 primary) / 2 + 1 nodes, minus the primary.
        let needed = followers.div_ceil(2);
        acks[needed - 1]
    }

    /// Blocks until a follower majority has acknowledged `upto` records,
    /// the deadline passes, or `running` flips false. Returns whether
    /// the quorum was reached.
    pub fn wait_quorum(&self, upto: u64, deadline: Instant, running: &AtomicBool) -> bool {
        let mut inner = self.lock();
        loop {
            if Self::quorum_acked(&inner) >= upto {
                return true;
            }
            if !running.load(Ordering::Acquire) || Instant::now() >= deadline {
                return false;
            }
            let (guard, _) = self
                .acked
                .wait_timeout(inner, REPL_POLL)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Blocks until the stream grows past `from` or the timeout passes.
    fn wait_grow(&self, from: u64, timeout: Duration) {
        let inner = self.lock();
        if inner.records.len() as u64 > from && !inner.held {
            return;
        }
        let _ = self
            .grew
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
    }

    /// Test/chaos hook: pauses (or resumes) shipping so replication lag
    /// builds deterministically. Acks keep draining.
    pub fn hold(&self, held: bool) {
        self.lock().held = held;
        self.grew.notify_all();
    }
}

/// Shared replication state: the log, the fencing epoch, and the node's
/// current role. Present (and inert) even when replication is disabled,
/// so the serving loop has one code path.
#[derive(Debug)]
pub struct ReplState {
    /// The logical op stream (see [`ReplLog`]).
    pub log: Arc<ReplLog>,
    store: Arc<SessionStore>,
    epoch: AtomicU64,
    follower: AtomicBool,
    fenced: AtomicBool,
    /// The higher epoch that fenced this node (0 while unfenced).
    fenced_by: AtomicU64,
    /// When state-changing responses are released (see [`AckMode`]).
    pub ack: AckMode,
    /// Longest one response waits for follower acknowledgement before
    /// being released anyway (counted in `ack_timeouts`).
    pub ack_timeout_ms: u64,
    ack_timeouts: AtomicU64,
}

impl ReplState {
    /// Builds the node's replication state over its store: the log is
    /// seeded from the store's surviving ops and attached so every
    /// subsequent append flows into it.
    pub fn new(
        store: Arc<SessionStore>,
        follower: bool,
        ack: AckMode,
        ack_timeout_ms: u64,
    ) -> Arc<ReplState> {
        let log = Arc::new(ReplLog::preloaded(store.replication_image()));
        store.attach_repl(Arc::clone(&log));
        Arc::new(ReplState {
            log,
            epoch: AtomicU64::new(store.epoch()),
            store,
            follower: AtomicBool::new(follower),
            fenced: AtomicBool::new(false),
            fenced_by: AtomicU64::new(0),
            ack,
            ack_timeout_ms,
            ack_timeouts: AtomicU64::new(0),
        })
    }

    /// The node's fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether a higher epoch has deposed this node.
    pub fn fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    /// The epoch that fenced this node (0 while unfenced).
    pub fn fenced_by(&self) -> u64 {
        self.fenced_by.load(Ordering::Acquire)
    }

    /// Whether the node is standing by as a follower.
    pub fn is_follower(&self) -> bool {
        self.follower.load(Ordering::Acquire)
    }

    /// The current role.
    pub fn role(&self) -> Role {
        if self.fenced() {
            Role::Fenced
        } else if self.is_follower() {
            Role::Follower
        } else {
            Role::Primary
        }
    }

    /// Whether `Hello` must be refused (followers and fenced nodes do
    /// not open sessions).
    pub fn refuses_sessions(&self) -> bool {
        self.is_follower() || self.fenced()
    }

    /// Marks the node deposed by `epoch`. Idempotent; the epoch itself
    /// is *not* adopted or persisted — a fenced node writes nothing.
    pub fn fence(&self, epoch: u64) {
        self.fenced_by.fetch_max(epoch, Ordering::AcqRel);
        self.fenced.store(true, Ordering::Release);
    }

    /// Promotes the node to primary: bumps the epoch past everything it
    /// has seen, persists it in the store, and starts accepting
    /// sessions. A fenced node refuses (it must rejoin as a follower
    /// under the new primary instead of forking history).
    pub fn promote(&self) -> io::Result<u64> {
        if self.fenced() {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!(
                    "node is fenced (deposed by epoch {}); rejoin as a follower instead of promoting",
                    self.fenced_by()
                ),
            ));
        }
        let epoch = self.epoch().max(self.fenced_by()) + 1;
        self.store.set_epoch(epoch)?;
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
        self.follower.store(false, Ordering::Release);
        Ok(epoch)
    }

    /// Adopts a primary's (equal-or-higher) epoch, persisting it.
    pub fn adopt_epoch(&self, epoch: u64) -> io::Result<()> {
        if epoch > self.epoch() {
            self.store.set_epoch(epoch)?;
            self.epoch.fetch_max(epoch, Ordering::AcqRel);
        }
        Ok(())
    }

    /// Release-gates one state-changing response on follower durability
    /// (no-op under [`AckMode::None`]). A timeout releases the response
    /// anyway — the client must not hang on a dead follower — and is
    /// counted.
    pub fn quorum_gate(&self, running: &AtomicBool) {
        if self.ack != AckMode::Quorum {
            return;
        }
        let upto = self.log.tail();
        let deadline = Instant::now() + Duration::from_millis(self.ack_timeout_ms);
        if !self.log.wait_quorum(upto, deadline, running) {
            self.ack_timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Responses released on an ack timeout instead of follower
    /// durability.
    pub fn ack_timeouts(&self) -> u64 {
        self.ack_timeouts.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Primary side: the replication acceptor and per-follower shippers
// ---------------------------------------------------------------------

/// Accepts follower connections and spawns one shipper per follower.
/// Runs until `running` flips false.
pub fn run_repl_acceptor(
    listener: TcpListener,
    repl: Arc<ReplState>,
    running: Arc<AtomicBool>,
    fingerprint: u64,
) {
    let mut shippers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while running.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let repl = Arc::clone(&repl);
                let running = Arc::clone(&running);
                shippers.push(std::thread::spawn(move || {
                    run_shipper(stream, &repl, &running, fingerprint);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(REPL_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
        shippers.retain(|s| !s.is_finished());
    }
    for shipper in shippers {
        let _ = shipper.join();
    }
}

/// Serves one follower connection: handshake, then ship-and-drain until
/// the link drops, the daemon stops, or this node is fenced.
fn run_shipper(mut stream: TcpStream, repl: &ReplState, running: &AtomicBool, fingerprint: u64) {
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(REPL_POLL)).is_err() {
        return;
    }
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let hello = match read_frame_deadline::<_, ReplFrame>(&mut stream, deadline, true) {
        Ok(Some(ReplFrame::Hello {
            version,
            fingerprint: fp,
            epoch,
            have,
        })) => {
            if version != REPL_PROTOCOL_VERSION {
                let _ = write_frame(
                    &mut stream,
                    &ReplFrame::Refused {
                        message: format!(
                            "replication protocol {version} unsupported (speaking {REPL_PROTOCOL_VERSION})"
                        ),
                    },
                );
                return;
            }
            if fp != fingerprint {
                let _ = write_frame(
                    &mut stream,
                    &ReplFrame::Refused {
                        message: format!(
                            "store fingerprint mismatch: follower {fp:#018x}, primary {fingerprint:#018x}"
                        ),
                    },
                );
                return;
            }
            (epoch, have)
        }
        _ => return,
    };
    let (peer_epoch, have) = hello;
    if peer_epoch > repl.epoch() {
        // The peer out-epochs us: we are the deposed one. Fence and say
        // so — this is the promoted follower's fencing notice landing.
        repl.fence(peer_epoch);
        let _ = write_frame(&mut stream, &ReplFrame::Fenced { epoch: peer_epoch });
        return;
    }
    if write_frame(
        &mut stream,
        &ReplFrame::Welcome {
            epoch: repl.epoch(),
            tail: repl.log.tail(),
        },
    )
    .is_err()
    {
        return;
    }

    let id = repl.log.register(have.min(repl.log.tail()));
    let mut sent = have.min(repl.log.tail());
    let mut last_write = Instant::now();
    loop {
        if !running.load(Ordering::Acquire) || repl.fenced() {
            break;
        }
        // Drain acknowledgements (non-blocking: the socket's poll tick
        // surfaces WouldBlock when the follower is quiet).
        loop {
            match read_frame::<_, ReplFrame>(&mut stream) {
                Ok(Some(ReplFrame::Ack { upto })) => repl.log.ack(id, upto),
                Ok(Some(_)) => {}
                Ok(None) => {
                    repl.log.deregister(id);
                    return;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break;
                }
                Err(_) => {
                    repl.log.deregister(id);
                    return;
                }
            }
        }
        // Ship the next batch.
        let batch = repl.log.records_from(sent, SHIP_BATCH);
        if batch.is_empty() {
            if last_write.elapsed() >= HEARTBEAT_EVERY {
                let tail = repl.log.tail();
                if write_frame(&mut stream, &ReplFrame::Heartbeat { tail }).is_err() {
                    break;
                }
                last_write = Instant::now();
            }
            repl.log.wait_grow(sent, REPL_POLL);
            continue;
        }
        let n = batch.len() as u64;
        let mut failed = false;
        for (seq, session_id, op) in batch {
            if write_frame(
                &mut stream,
                &ReplFrame::Ship {
                    seq,
                    session_id,
                    op,
                },
            )
            .is_err()
            {
                failed = true;
                break;
            }
            sent = seq + 1;
        }
        if failed {
            break;
        }
        repl.log.note_shipped(n);
        last_write = Instant::now();
    }
    repl.log.deregister(id);
}

// ---------------------------------------------------------------------
// Follower side: the receive/apply loop and promotion
// ---------------------------------------------------------------------

/// Why one connection to the primary ended.
enum FollowEnd {
    /// The daemon is stopping or the node was promoted elsewhere.
    Stopped,
    /// The primary fenced *us*?? No — the primary acknowledged being
    /// deposed by our higher epoch; we are the rightful primary.
    PeerFenced,
    /// Version/fingerprint mismatch; retrying will not help quickly.
    Refused,
    /// The link dropped (connect failure, EOF, or frame timeout).
    LinkLost {
        /// Whether a handshake had completed on this attempt.
        was_connected: bool,
    },
}

/// Follows a primary until the daemon stops, the node is promoted, or —
/// with `auto_promote` — the link to a once-reached primary drops, at
/// which point the follower promotes itself and sends the old primary a
/// best-effort fencing notice.
pub fn run_follower(
    primary: &str,
    repl: &Arc<ReplState>,
    running: &Arc<AtomicBool>,
    fingerprint: u64,
    auto_promote: bool,
) {
    let mut ever_connected = false;
    while running.load(Ordering::Acquire) && repl.is_follower() {
        match follow_once(primary, repl, running, fingerprint) {
            FollowEnd::Stopped => return,
            FollowEnd::PeerFenced => {
                // Our epoch already dominates; make the role match it.
                if repl.is_follower() {
                    let _ = repl.promote();
                }
                return;
            }
            FollowEnd::Refused => {
                // A config mismatch will not heal by tight retrying.
                sleep_while_running(running, Duration::from_millis(500));
            }
            FollowEnd::LinkLost { was_connected } => {
                ever_connected |= was_connected;
                if ever_connected && auto_promote && repl.is_follower() {
                    if repl.promote().is_ok() {
                        notify_deposed(primary, repl.epoch(), fingerprint);
                    }
                    return;
                }
                sleep_while_running(running, Duration::from_millis(100));
            }
        }
    }
}

/// One connection attempt to the primary: handshake, then apply shipped
/// records until the link ends.
fn follow_once(
    primary: &str,
    repl: &ReplState,
    running: &AtomicBool,
    fingerprint: u64,
) -> FollowEnd {
    let Ok(mut stream) = TcpStream::connect(primary) else {
        return FollowEnd::LinkLost {
            was_connected: false,
        };
    };
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(REPL_POLL)).is_err() {
        return FollowEnd::LinkLost {
            was_connected: false,
        };
    }
    if write_frame(
        &mut stream,
        &ReplFrame::Hello {
            version: REPL_PROTOCOL_VERSION,
            fingerprint,
            epoch: repl.epoch(),
            have: repl.log.tail(),
        },
    )
    .is_err()
    {
        return FollowEnd::LinkLost {
            was_connected: false,
        };
    }
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    match read_frame_deadline::<_, ReplFrame>(&mut stream, deadline, true) {
        Ok(Some(ReplFrame::Welcome { epoch, .. })) => {
            let _ = repl.adopt_epoch(epoch);
        }
        Ok(Some(ReplFrame::Fenced { .. })) => return FollowEnd::PeerFenced,
        Ok(Some(ReplFrame::Refused { .. })) => return FollowEnd::Refused,
        _ => {
            return FollowEnd::LinkLost {
                was_connected: false,
            }
        }
    }

    let mut last_frame = Instant::now();
    loop {
        if !running.load(Ordering::Acquire) || !repl.is_follower() {
            return FollowEnd::Stopped;
        }
        match read_frame::<_, ReplFrame>(&mut stream) {
            Ok(Some(ReplFrame::Ship {
                seq,
                session_id,
                op,
            })) => {
                last_frame = Instant::now();
                let tail = repl.log.tail();
                if seq > tail {
                    // A gap means the streams desynchronized; drop the
                    // link and re-handshake from our actual count.
                    return FollowEnd::LinkLost {
                        was_connected: true,
                    };
                }
                if seq == tail {
                    // Applying through the store feeds the same replay
                    // image a restart uses — and the attached log, so
                    // our `have` advances with it.
                    let durability = repl.store.apply_replicated(session_id, op);
                    if !matches!(durability, Appended::Durable) {
                        // A degraded apply is in memory only; claiming
                        // durability to the primary would be a lie, so
                        // the ack stream simply stops advancing.
                        continue;
                    }
                }
                if write_frame(
                    &mut stream,
                    &ReplFrame::Ack {
                        upto: repl.log.tail(),
                    },
                )
                .is_err()
                {
                    return FollowEnd::LinkLost {
                        was_connected: true,
                    };
                }
            }
            Ok(Some(ReplFrame::Heartbeat { .. })) => {
                last_frame = Instant::now();
                if write_frame(
                    &mut stream,
                    &ReplFrame::Ack {
                        upto: repl.log.tail(),
                    },
                )
                .is_err()
                {
                    return FollowEnd::LinkLost {
                        was_connected: true,
                    };
                }
            }
            Ok(Some(ReplFrame::Fenced { .. })) => return FollowEnd::PeerFenced,
            Ok(Some(_)) => {}
            Ok(None) => {
                return FollowEnd::LinkLost {
                    was_connected: true,
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if last_frame.elapsed() >= LINK_TIMEOUT {
                    return FollowEnd::LinkLost {
                        was_connected: true,
                    };
                }
            }
            Err(_) => {
                return FollowEnd::LinkLost {
                    was_connected: true,
                }
            }
        }
    }
}

/// Best-effort fencing notice to a (possibly dead) old primary: a
/// `Hello` carrying our higher epoch makes it fence itself; every
/// failure mode is fine (it is dead, or it will be fenced the moment it
/// ships to us).
pub fn notify_deposed(addr: &str, epoch: u64, fingerprint: u64) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(REPL_POLL));
    let _ = write_frame(
        &mut stream,
        &ReplFrame::Hello {
            version: REPL_PROTOCOL_VERSION,
            fingerprint,
            epoch,
            have: 0,
        },
    );
    let deadline = Instant::now() + Duration::from_millis(500);
    let _ = read_frame_deadline::<_, ReplFrame>(&mut stream, deadline, true);
}

fn sleep_while_running(running: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while running.load(Ordering::Acquire) && Instant::now() < deadline {
        std::thread::sleep(REPL_POLL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_mode_parses_and_renders() {
        assert_eq!("none".parse::<AckMode>().unwrap(), AckMode::None);
        assert_eq!("quorum".parse::<AckMode>().unwrap(), AckMode::Quorum);
        assert!("all".parse::<AckMode>().is_err());
        assert_eq!(AckMode::Quorum.to_string(), "quorum");
    }

    #[test]
    fn repl_frames_roundtrip() {
        let frames = vec![
            ReplFrame::Hello {
                version: REPL_PROTOCOL_VERSION,
                fingerprint: 0xF00D,
                epoch: 2,
                have: 17,
            },
            ReplFrame::Welcome { epoch: 2, tail: 40 },
            ReplFrame::Fenced { epoch: 3 },
            ReplFrame::Ship {
                seq: 5,
                session_id: 1,
                op: SessionOp::Opened,
            },
            ReplFrame::Heartbeat { tail: 41 },
            ReplFrame::Ack { upto: 41 },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = &wire[..];
        for want in &frames {
            let got: ReplFrame = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn log_tracks_tail_acks_and_lag() {
        let log = ReplLog::new();
        assert_eq!(log.tail(), 0);
        assert_eq!(log.lag(), 0, "no followers: nothing owed");
        log.append(0, SessionOp::Opened);
        log.append(0, SessionOp::Closed);
        assert_eq!(log.tail(), 2);

        let f = log.register(0);
        assert_eq!(log.lag(), 2);
        log.ack(f, 1);
        assert_eq!(log.lag(), 1);
        log.ack(f, 2);
        assert_eq!(log.lag(), 0);
        // Acks are monotonic: a stale ack never regresses.
        log.ack(f, 1);
        assert_eq!(log.lag(), 0);
        log.deregister(f);
        assert_eq!(log.lag(), 0);
    }

    #[test]
    fn hold_pauses_shipping_reads() {
        let log = ReplLog::new();
        log.append(0, SessionOp::Opened);
        assert_eq!(log.records_from(0, 16).len(), 1);
        log.hold(true);
        assert!(log.records_from(0, 16).is_empty(), "held log ships nothing");
        log.hold(false);
        assert_eq!(log.records_from(0, 16).len(), 1);
    }

    #[test]
    fn quorum_wait_is_trivial_without_followers_and_gated_with_one() {
        let log = ReplLog::new();
        log.append(0, SessionOp::Opened);
        let running = AtomicBool::new(true);
        // No followers: a single-node quorum is already satisfied.
        assert!(log.wait_quorum(1, Instant::now() + Duration::from_millis(10), &running));

        let f = log.register(0);
        assert!(
            !log.wait_quorum(1, Instant::now() + Duration::from_millis(30), &running),
            "an unacknowledged record must gate"
        );
        log.ack(f, 1);
        assert!(log.wait_quorum(1, Instant::now() + Duration::from_millis(30), &running));
    }

    #[test]
    fn quorum_is_a_majority_of_connected_followers() {
        let inner_with = |acks: &[u64]| {
            let mut inner = LogInner::default();
            for (i, a) in acks.iter().enumerate() {
                inner.followers.insert(i as u64, *a);
            }
            inner
        };
        assert_eq!(ReplLog::quorum_acked(&inner_with(&[])), u64::MAX);
        assert_eq!(ReplLog::quorum_acked(&inner_with(&[3])), 3);
        // Two followers: one ack (plus the primary) is a 2/3 majority.
        assert_eq!(ReplLog::quorum_acked(&inner_with(&[5, 1])), 5);
        // Three followers: two must acknowledge (3/4 majority).
        assert_eq!(ReplLog::quorum_acked(&inner_with(&[9, 4, 1])), 4);
    }

    #[test]
    fn records_from_respects_offset_and_batch() {
        let log = ReplLog::new();
        for i in 0..10u64 {
            log.append(i, SessionOp::Opened);
        }
        let batch = log.records_from(7, 2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].0, 7);
        assert_eq!(batch[1].0, 8);
        assert!(log.records_from(10, 4).is_empty());
    }
}
