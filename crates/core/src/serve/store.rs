//! The session store: the write-ahead run journal reused as a durable,
//! replayable log of session operations.
//!
//! `fisql serve` persists **inputs, not outputs**. Every state-changing
//! client operation is appended as a `(session_id, SessionOp)` record to
//! a [`RunJournal`] *before* it executes (write-ahead), and a session is
//! reconstructed — after a client reconnect or a daemon restart, same
//! code path — by replaying its ops through a fresh [`Session`]
//! (../session.rs). Because the whole pipeline is deterministic (the
//! simulated model, the fault injector, and the resilience middleware
//! are all pure functions of their inputs), replay reproduces the
//! transcript bit-identically; there is no second on-disk format and no
//! snapshot to keep consistent.
//!
//! The journal's existing integrity machinery carries over unchanged:
//! checksummed records mean a torn tail from a crash mid-append costs at
//! most the last operation, and the header fingerprint — here derived
//! from [`ServeConfig::fingerprint`](crate::config::ServeConfig) — makes
//! the daemon refuse a store written under a different corpus, strategy,
//! or chaos configuration rather than replay it into different
//! transcripts. The header's case-count slot is pinned to
//! [`SESSION_STORE_MARKER`], so an evaluation run journal can never be
//! mistaken for a session store (or vice versa).

use crate::journal::{FsyncPolicy, RunJournal};
use fisql_sqlkit::Span;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// Value pinned into the journal header's case-count slot for session
/// stores. An eval journal records its real (small) case count there, so
/// the two uses of the format can never be confused.
pub const SESSION_STORE_MARKER: u64 = u64::MAX;

/// One journaled session operation — the replay unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionOp {
    /// The session was opened.
    Opened,
    /// The client asked a question; the server resolved it to a corpus
    /// example. The resolved index is journaled so replay never depends
    /// on the resolution heuristic staying stable.
    Ask {
        /// Index into the serve corpus's example list.
        example_idx: u64,
        /// The question as the client typed it (diagnostics only).
        question: String,
    },
    /// The client sent feedback.
    Feedback {
        /// The feedback utterance.
        text: String,
        /// Optional highlight over the rendered SQL.
        highlight: Option<Span>,
    },
    /// The client closed the session with `Bye`.
    Closed,
}

#[derive(Debug)]
struct Inner {
    /// The backing journal, when the store is durable.
    journal: Option<RunJournal>,
    /// Every op, in append order — the in-memory image replays read.
    ops: Vec<(u64, SessionOp)>,
    /// Next session id to hand out.
    next_id: u64,
}

/// A concurrent, durable session-operation log (see the module docs).
#[derive(Debug)]
pub struct SessionStore {
    inner: Mutex<Inner>,
}

impl SessionStore {
    /// Opens a store. With a `path`, an existing journal is resumed
    /// (validating its fingerprint and truncating any torn tail) and a
    /// missing one is created; without, the store is memory-only.
    pub fn open(
        path: Option<&Path>,
        fingerprint: u64,
        fsync: FsyncPolicy,
    ) -> io::Result<SessionStore> {
        let (journal, ops) = match path {
            None => (None, Vec::new()),
            Some(path) if path.exists() => {
                let (journal, ops) = RunJournal::open_resume::<SessionOp>(
                    path,
                    fingerprint,
                    SESSION_STORE_MARKER,
                    fsync,
                )?;
                (Some(journal), ops)
            }
            Some(path) => (
                Some(RunJournal::create(
                    path,
                    fingerprint,
                    SESSION_STORE_MARKER,
                    fsync,
                )?),
                Vec::new(),
            ),
        };
        let next_id = ops.iter().map(|(id, _)| id + 1).max().unwrap_or(0);
        Ok(SessionStore {
            inner: Mutex::new(Inner {
                journal,
                ops,
                next_id,
            }),
        })
    }

    /// Opens a fresh session: assigns the next id and journals its
    /// `Opened` record.
    pub fn open_session(&self) -> io::Result<u64> {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        append_locked(&mut inner, id, SessionOp::Opened)?;
        Ok(id)
    }

    /// Appends one op to an existing session, write-ahead.
    pub fn append(&self, session_id: u64, op: SessionOp) -> io::Result<()> {
        append_locked(&mut self.lock(), session_id, op)
    }

    /// The ops of one session, in order (empty = unknown session).
    pub fn session_ops(&self, session_id: u64) -> Vec<SessionOp> {
        self.lock()
            .ops
            .iter()
            .filter(|(id, _)| *id == session_id)
            .map(|(_, op)| op.clone())
            .collect()
    }

    /// Every session id the store knows, ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        let inner = self.lock();
        let mut ids: Vec<u64> = inner.ops.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Sessions recovered from disk at open time that were never closed
    /// with `Bye` — the ones a crash interrupted.
    pub fn unclosed_sessions(&self) -> Vec<u64> {
        let inner = self.lock();
        let mut open: Vec<u64> = Vec::new();
        for (id, op) in &inner.ops {
            match op {
                SessionOp::Opened => open.push(*id),
                SessionOp::Closed => open.retain(|o| o != id),
                _ => {}
            }
        }
        open
    }

    /// Flushes pending appends to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        match self.lock().journal.as_mut() {
            Some(journal) => journal.sync(),
            None => Ok(()),
        }
    }

    /// Total ops recorded (all sessions).
    pub fn len(&self) -> usize {
        self.lock().ops.len()
    }

    /// Whether the store holds no ops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned store lock means a panic escaped the serve layer's
        // isolation while appending; the in-memory image is still
        // well-formed (Vec pushes are atomic at this granularity).
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

fn append_locked(inner: &mut Inner, session_id: u64, op: SessionOp) -> io::Result<()> {
    if let Some(journal) = inner.journal.as_mut() {
        journal.append(session_id, &op)?;
    }
    inner.ops.push((session_id, op));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fisql-session-store-{}-{name}.fjnl",
            std::process::id()
        ))
    }

    #[test]
    fn ops_roundtrip_across_reopen() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let store = SessionStore::open(Some(&path), 0xF00D, FsyncPolicy::EachRecord).unwrap();
            let a = store.open_session().unwrap();
            let b = store.open_session().unwrap();
            assert_ne!(a, b);
            store
                .append(
                    a,
                    SessionOp::Ask {
                        example_idx: 4,
                        question: "q".into(),
                    },
                )
                .unwrap();
            store
                .append(
                    a,
                    SessionOp::Feedback {
                        text: "we are in 2024".into(),
                        highlight: None,
                    },
                )
                .unwrap();
            store.append(b, SessionOp::Closed).unwrap();
            store.sync().unwrap();
        }
        let store = SessionStore::open(Some(&path), 0xF00D, FsyncPolicy::Batch).unwrap();
        assert_eq!(store.session_ids(), vec![0, 1]);
        assert_eq!(
            store.session_ops(0),
            vec![
                SessionOp::Opened,
                SessionOp::Ask {
                    example_idx: 4,
                    question: "q".into(),
                },
                SessionOp::Feedback {
                    text: "we are in 2024".into(),
                    highlight: None,
                },
            ]
        );
        assert_eq!(store.unclosed_sessions(), vec![0]);
        // Ids never collide with recovered sessions.
        assert_eq!(store.open_session().unwrap(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_fingerprint_is_refused() {
        let path = tmp("foreign");
        std::fs::remove_file(&path).ok();
        {
            let store = SessionStore::open(Some(&path), 0xAAAA, FsyncPolicy::Never).unwrap();
            store.open_session().unwrap();
            store.sync().unwrap();
        }
        let err = SessionStore::open(Some(&path), 0xBBBB, FsyncPolicy::Never).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_recovers_the_intact_prefix() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let store = SessionStore::open(Some(&path), 0xF00D, FsyncPolicy::Never).unwrap();
            let id = store.open_session().unwrap();
            store
                .append(
                    id,
                    SessionOp::Ask {
                        example_idx: 0,
                        question: "q".into(),
                    },
                )
                .unwrap();
            store.sync().unwrap();
        }
        // A crash mid-append: garbage half-record at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&64u32.to_le_bytes());
        bytes.extend_from_slice(&[0xCD; 9]);
        std::fs::write(&path, &bytes).unwrap();

        let store = SessionStore::open(Some(&path), 0xF00D, FsyncPolicy::Never).unwrap();
        assert_eq!(store.len(), 2, "intact prefix only");
        assert_eq!(store.session_ops(0).len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_only_store_works_without_a_path() {
        let store = SessionStore::open(None, 0, FsyncPolicy::Never).unwrap();
        let id = store.open_session().unwrap();
        store.append(id, SessionOp::Closed).unwrap();
        assert_eq!(store.session_ids(), vec![id]);
        store.sync().unwrap();
    }
}
