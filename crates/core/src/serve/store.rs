//! The session store: the write-ahead run journal reused as a durable,
//! replayable log of session operations.
//!
//! `fisql serve` persists **inputs, not outputs**. Every state-changing
//! client operation is appended as a `(session_id, SessionOp)` record to
//! a [`RunJournal`] *before* it executes (write-ahead), and a session is
//! reconstructed — after a client reconnect or a daemon restart, same
//! code path — by replaying its ops through a fresh [`Session`]
//! (../session.rs). Because the whole pipeline is deterministic (the
//! simulated model, the fault injector, and the resilience middleware
//! are all pure functions of their inputs), replay reproduces the
//! transcript bit-identically; there is no second on-disk format and no
//! snapshot to keep consistent.
//!
//! The journal's existing integrity machinery carries over unchanged:
//! checksummed records mean a torn tail from a crash mid-append costs at
//! most the last operation, and the header fingerprint — here derived
//! from [`ServeConfig::fingerprint`](crate::config::ServeConfig) — makes
//! the daemon refuse a store written under a different corpus, strategy,
//! or chaos configuration rather than replay it into different
//! transcripts. The header's case-count slot is pinned to
//! [`SESSION_STORE_MARKER`], so an evaluation run journal can never be
//! mistaken for a session store (or vice versa).
//!
//! # Compaction
//!
//! A long-lived daemon's journal only ever grows, and restart replay
//! cost grows with it. [`SessionStore::compact`] rewrites the journal
//! keeping only **unclosed** sessions' ops (closed and reaped sessions
//! are fully replayed history nobody can resume into a live slot),
//! prefixed by a [`SessionOp::Checkpoint`] record under the reserved
//! [`META_SESSION`] id that carries the new **generation** number and
//! the next-session-id floor (so ids of dropped sessions are never
//! reissued). The rewrite goes to a `<path>.compact` sibling and is
//! **atomically renamed over** the live journal; a crash mid-compaction
//! leaves the old journal untouched. Compaction triggers automatically
//! every `compact_every` closed sessions, or on demand (the `Compact`
//! admin request). Surviving sessions replay byte-identically before
//! and after — compaction only drops records replay never reads.
//!
//! # Disk faults
//!
//! An optional [`DiskFaultConfig`] lane injects deterministic append and
//! fsync failures plus a disk-full horizon (see [`super::diskfault`]).
//! Failures never kill the daemon: a failed append leaves that session's
//! op in memory only ([`Appended::Degraded`] — the serve layer marks the
//! session degraded and keeps serving it), and a disk-full error flips
//! the whole store unwritable, after which [`SessionStore::open_session`]
//! refuses new sessions with a typed error while existing sessions
//! continue memory-only.

use super::diskfault::DiskFaultConfig;
use super::replicate::ReplLog;
use crate::journal::{FsyncPolicy, RunJournal};
use fisql_sqlkit::Span;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Value pinned into the journal header's case-count slot for session
/// stores. An eval journal records its real (small) case count there, so
/// the two uses of the format can never be confused.
pub const SESSION_STORE_MARKER: u64 = u64::MAX;

/// Reserved session id carrying store metadata records
/// ([`SessionOp::Checkpoint`]); never issued to a real session.
pub const META_SESSION: u64 = u64::MAX;

/// One journaled session operation — the replay unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionOp {
    /// The session was opened.
    Opened,
    /// The client asked a question; the server resolved it to a corpus
    /// example. The resolved index is journaled so replay never depends
    /// on the resolution heuristic staying stable.
    Ask {
        /// Index into the serve corpus's example list.
        example_idx: u64,
        /// The question as the client typed it (diagnostics only).
        question: String,
    },
    /// The client sent feedback.
    Feedback {
        /// The feedback utterance.
        text: String,
        /// Optional highlight over the rendered SQL.
        highlight: Option<Span>,
    },
    /// The client closed the session with `Bye`.
    Closed,
    /// The idle reaper reclaimed the session's slot after the client
    /// went silent past `--idle-timeout`. Ends the session like
    /// [`SessionOp::Closed`] (the transcript stays replayable until the
    /// next compaction); replay skips it.
    Reaped {
        /// How long the connection had been idle, milliseconds.
        idle_ms: u64,
    },
    /// Compaction checkpoint, journaled under [`META_SESSION`] as the
    /// first record of a compacted journal. Never part of a session's
    /// replay stream.
    Checkpoint {
        /// Compaction generation (0 = never compacted; +1 per rewrite).
        generation: u64,
        /// Floor for newly issued session ids, so ids of compacted-away
        /// sessions are never reused.
        next_session_id: u64,
    },
    /// Fencing-epoch record, journaled under [`META_SESSION`] when this
    /// node is promoted to replication primary (see
    /// [`super::replicate`]). Monotonic: the store's epoch is the max of
    /// every `Epoch` record it holds; compaction re-asserts it right
    /// after the checkpoint. Never written while replication is unused
    /// (epoch 0 is implicit), so a replication-free store's bytes are
    /// unchanged. Never part of a session's replay stream.
    Epoch {
        /// The fencing epoch (>= 1; bumped on every promotion).
        epoch: u64,
    },
}

impl SessionOp {
    /// Whether this op ends its session (no further live slot).
    pub fn closes_session(&self) -> bool {
        matches!(self, SessionOp::Closed | SessionOp::Reaped { .. })
    }
}

/// How [`SessionStore::open`] should behave beyond the path: replay
/// fingerprint, durability policy, compaction cadence, and the chaos
/// lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreOptions {
    /// Replay fingerprint the journal header must match.
    pub fingerprint: u64,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
    /// Auto-compact after this many closed/reaped sessions
    /// (0 = only on explicit [`SessionStore::compact`] calls).
    pub compact_every: u64,
    /// Deterministic disk-fault injection lane, if any.
    pub faults: Option<DiskFaultConfig>,
}

impl StoreOptions {
    /// Options with the given fingerprint and everything else default
    /// (batch fsync, no auto-compaction, no fault injection).
    pub fn new(fingerprint: u64) -> StoreOptions {
        StoreOptions {
            fingerprint,
            fsync: FsyncPolicy::default(),
            compact_every: 0,
            faults: None,
        }
    }

    /// Builder: sets the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Builder: sets the auto-compaction cadence.
    pub fn compact_every(mut self, closed_sessions: u64) -> Self {
        self.compact_every = closed_sessions;
        self
    }

    /// Builder: sets the disk-fault lane.
    pub fn faults(mut self, faults: Option<DiskFaultConfig>) -> Self {
        self.faults = faults;
        self
    }
}

/// The durability of one accepted append.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Appended {
    /// Journaled write-ahead (or the store is memory-only by
    /// configuration, where memory *is* the store).
    Durable,
    /// The journal write failed; the op was kept in memory only, so the
    /// live daemon still replays it on reconnect, but a restart loses
    /// it. The serve layer marks the session degraded.
    Degraded {
        /// The rendered disk error.
        error: String,
    },
}

/// What one compaction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// The generation the store is now at.
    pub generation: u64,
    /// Ops in the store before the rewrite.
    pub ops_before: u64,
    /// Ops kept (surviving sessions only).
    pub ops_after: u64,
    /// Sessions whose history was dropped.
    pub sessions_dropped: u64,
}

/// A point-in-time view of the store's health counters
/// (serde-serializable for the `Stats` admin response).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// Ops currently held (after any compaction).
    pub ops: u64,
    /// Distinct sessions currently held.
    pub sessions: u64,
    /// Compaction generation (0 = never compacted).
    pub generation: u64,
    /// Compactions performed by this store instance.
    pub compactions: u64,
    /// Ops dropped across all compactions.
    pub ops_dropped: u64,
    /// Appends that degraded to memory-only (disk fault).
    pub append_faults: u64,
    /// Fsyncs that failed.
    pub sync_faults: u64,
    /// Whether the journal is still accepting writes (`false` after
    /// disk-full: new sessions are refused).
    pub writable: bool,
    /// Whether the store is durable at all (`false` = memory-only by
    /// configuration).
    pub durable: bool,
    /// Fencing epoch (0 = this lineage was never promoted).
    pub epoch: u64,
}

#[derive(Debug)]
struct Inner {
    /// The backing journal, when the store is durable.
    journal: Option<RunJournal>,
    /// The journal's path (for compaction rewrites).
    path: Option<PathBuf>,
    /// Every live op, in append order — the in-memory image replays
    /// read. Checkpoint records live only on disk.
    ops: Vec<(u64, SessionOp)>,
    /// Next session id to hand out.
    next_id: u64,
    /// Compaction generation.
    generation: u64,
    /// Closed/reaped sessions since the last compaction.
    closed_since_compact: u64,
    /// Per-session journaled-op indices (fault-schedule key).
    op_counts: HashMap<u64, u64>,
    /// Total ops ever offered to the journal (disk-full horizon).
    total_ops: u64,
    /// Fsyncs attempted (fault-schedule key).
    sync_count: u64,
    /// False after disk-full: the journal takes no further writes.
    writable: bool,
    /// Fencing epoch (max of every `Epoch` record; 0 = replication never
    /// promoted this lineage).
    epoch: u64,
    /// Replication log every non-meta append is mirrored into, once a
    /// `ReplState` attaches one (absent when replication is unused).
    repl: Option<Arc<ReplLog>>,
    compactions: u64,
    ops_dropped: u64,
    append_faults: u64,
    sync_faults: u64,
}

/// A concurrent, durable session-operation log (see the module docs).
#[derive(Debug)]
pub struct SessionStore {
    options: StoreOptions,
    inner: Mutex<Inner>,
}

impl SessionStore {
    /// Opens a store. With a `path`, an existing journal is resumed
    /// (validating its fingerprint and truncating any torn tail) and a
    /// missing one is created; without, the store is memory-only.
    pub fn open(path: Option<&Path>, options: StoreOptions) -> io::Result<SessionStore> {
        let (journal, raw_ops) = match path {
            None => (None, Vec::new()),
            Some(path) if path.exists() => {
                let (journal, ops) = RunJournal::open_resume::<SessionOp>(
                    path,
                    options.fingerprint,
                    SESSION_STORE_MARKER,
                    options.fsync,
                )?;
                (Some(journal), ops)
            }
            Some(path) => (
                Some(RunJournal::create(
                    path,
                    options.fingerprint,
                    SESSION_STORE_MARKER,
                    options.fsync,
                )?),
                Vec::new(),
            ),
        };
        // Split metadata off the replayable stream: a checkpoint pins
        // the generation and the id floor, an epoch record pins the
        // fencing epoch, and neither reaches replay.
        let mut generation = 0;
        let mut id_floor = 0;
        let mut epoch = 0;
        let mut ops = Vec::with_capacity(raw_ops.len());
        for (id, op) in raw_ops {
            match op {
                SessionOp::Checkpoint {
                    generation: g,
                    next_session_id,
                } if id == META_SESSION => {
                    generation = generation.max(g);
                    id_floor = id_floor.max(next_session_id);
                }
                SessionOp::Epoch { epoch: e } if id == META_SESSION => {
                    epoch = epoch.max(e);
                }
                _ => ops.push((id, op)),
            }
        }
        let next_id = ops
            .iter()
            .map(|(id, _)| id + 1)
            .max()
            .unwrap_or(0)
            .max(id_floor);
        let mut op_counts = HashMap::new();
        for (id, _) in &ops {
            *op_counts.entry(*id).or_insert(0) += 1;
        }
        let total_ops = ops.len() as u64;
        Ok(SessionStore {
            options,
            inner: Mutex::new(Inner {
                journal,
                path: path.map(Path::to_path_buf),
                ops,
                next_id,
                generation,
                closed_since_compact: 0,
                op_counts,
                total_ops,
                sync_count: 0,
                writable: true,
                epoch,
                repl: None,
                compactions: 0,
                ops_dropped: 0,
                append_faults: 0,
                sync_faults: 0,
            }),
        })
    }

    /// Opens a fresh session: assigns the next id and journals its
    /// `Opened` record. Refuses (typed `StorageFull`-kind error) when
    /// the journal has flipped unwritable — existing sessions keep
    /// running memory-only, but new work is shed while durability is
    /// gone.
    pub fn open_session(&self) -> io::Result<(u64, Appended)> {
        let (id, durability, _) = self.open_session_tracked()?;
        Ok((id, durability))
    }

    /// [`SessionStore::open_session`], also reporting the replication
    /// stream position of the `Opened` record (0 when replication is
    /// detached) so the caller can gate on exactly its own append.
    pub fn open_session_tracked(&self) -> io::Result<(u64, Appended, u64)> {
        let mut inner = self.lock();
        if inner.journal.is_some() && !inner.writable {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "session store is unwritable (disk full); not accepting new sessions",
            ));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let (durability, repl_upto) = self.append_locked(&mut inner, id, SessionOp::Opened);
        Ok((id, durability, repl_upto))
    }

    /// Appends one op to an existing session, write-ahead. Never fails
    /// the session: a disk fault degrades the append to memory-only and
    /// reports it.
    pub fn append(&self, session_id: u64, op: SessionOp) -> Appended {
        self.append_locked(&mut self.lock(), session_id, op).0
    }

    /// [`SessionStore::append`], also reporting the replication stream
    /// position this op landed at (0 when nothing was mirrored — meta
    /// ops, or no log attached). The position is what a quorum gate
    /// waits on: a session is gated on its own writes, not on whatever
    /// unrelated sessions appended since.
    pub fn append_tracked(&self, session_id: u64, op: SessionOp) -> (Appended, u64) {
        self.append_locked(&mut self.lock(), session_id, op)
    }

    /// Applies one record shipped from a replication primary: the same
    /// append path (journaled write-ahead, mirrored into the attached
    /// log so the follower's `have` count advances), plus an id-floor
    /// bump so a later promotion never reissues a replicated session's
    /// id.
    pub fn apply_replicated(&self, session_id: u64, op: SessionOp) -> Appended {
        let mut inner = self.lock();
        if session_id != META_SESSION {
            inner.next_id = inner.next_id.max(session_id + 1);
        }
        self.append_locked(&mut inner, session_id, op).0
    }

    /// Attaches the replication log every subsequent non-meta append is
    /// mirrored into (the caller preloads it from
    /// [`SessionStore::replication_image`] first).
    pub fn attach_repl(&self, log: Arc<ReplLog>) {
        self.lock().repl = Some(log);
    }

    /// A copy of the live op stream, for seeding a replication log.
    pub fn replication_image(&self) -> Vec<(u64, SessionOp)> {
        self.lock().ops.clone()
    }

    /// The store's fencing epoch (0 = never promoted).
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Raises the fencing epoch, persisting an [`SessionOp::Epoch`]
    /// record (synced immediately — a promotion that later un-happens
    /// would re-split the brain). The in-memory epoch advances even if
    /// the disk is gone: a promotion must not fail on a degraded store,
    /// it only loses crash-persistence of the fence.
    pub fn set_epoch(&self, epoch: u64) -> io::Result<()> {
        let mut inner = self.lock();
        if epoch <= inner.epoch {
            return Ok(());
        }
        inner.epoch = epoch;
        if inner.writable {
            if let Some(journal) = inner.journal.as_mut() {
                let written = journal
                    .append(META_SESSION, &SessionOp::Epoch { epoch })
                    .and_then(|()| journal.sync());
                if let Err(err) = written {
                    inner.append_faults += 1;
                    if err.kind() == io::ErrorKind::StorageFull {
                        inner.writable = false;
                    }
                }
            }
        }
        Ok(())
    }

    fn append_locked(
        &self,
        inner: &mut Inner,
        session_id: u64,
        op: SessionOp,
    ) -> (Appended, u64) {
        let op_index = {
            let slot = inner.op_counts.entry(session_id).or_insert(0);
            let index = *slot;
            *slot += 1;
            index
        };
        let total = inner.total_ops;
        inner.total_ops += 1;
        let closes = op.closes_session();

        let mut durability = Appended::Durable;
        if let Some(journal) = inner.journal.as_mut() {
            if inner.writable {
                let injected = self
                    .options
                    .faults
                    .and_then(|f| f.append_fault(session_id, op_index, total));
                let result = match injected {
                    Some(err) => Err(err),
                    None => journal.append(session_id, &op),
                };
                if let Err(err) = result {
                    inner.append_faults += 1;
                    if err.kind() == io::ErrorKind::StorageFull {
                        inner.writable = false;
                    }
                    durability = Appended::Degraded {
                        error: err.to_string(),
                    };
                }
            } else {
                durability = Appended::Degraded {
                    error: "session store is unwritable (disk full)".to_string(),
                };
            }
        }
        // The in-memory image always records the op: the live daemon
        // replays reconnects from memory even while the disk is gone.
        // A degraded (memory-only) op still enters the replication log —
        // a follower with a healthy disk is exactly how it survives.
        let mut repl_upto = 0;
        if let Some(repl) = &inner.repl {
            if session_id != META_SESSION {
                repl_upto = repl.append(session_id, op.clone());
            }
        }
        inner.ops.push((session_id, op));

        if closes {
            inner.closed_since_compact += 1;
            if self.options.compact_every > 0
                && inner.closed_since_compact >= self.options.compact_every
            {
                // Auto-compaction is best-effort: a failure leaves the
                // uncompacted journal in place, which is always valid.
                let _ = self.compact_locked(inner);
            }
        }
        (durability, repl_upto)
    }

    /// Rewrites the journal keeping only unclosed sessions' ops, bumps
    /// the generation, and atomically renames the rewrite over the live
    /// file. See the module docs.
    pub fn compact(&self) -> io::Result<CompactionOutcome> {
        self.compact_locked(&mut self.lock())
    }

    fn compact_locked(&self, inner: &mut Inner) -> io::Result<CompactionOutcome> {
        let ops_before = inner.ops.len() as u64;
        let survivors = unclosed_of(&inner.ops);
        let kept: Vec<(u64, SessionOp)> = inner
            .ops
            .iter()
            .filter(|(id, _)| survivors.contains(id))
            .cloned()
            .collect();
        let sessions_dropped = sessions_of(&inner.ops)
            .iter()
            .filter(|id| !survivors.contains(id))
            .count() as u64;
        let generation = inner.generation + 1;

        if let Some(path) = inner.path.clone() {
            if !inner.writable {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "session store is unwritable (disk full); cannot compact",
                ));
            }
            let tmp = PathBuf::from(format!("{}.compact", path.display()));
            let epoch = inner.epoch;
            let rewrite = (|| -> io::Result<RunJournal> {
                let mut journal = RunJournal::create(
                    &tmp,
                    self.options.fingerprint,
                    SESSION_STORE_MARKER,
                    self.options.fsync,
                )?;
                journal.append(
                    META_SESSION,
                    &SessionOp::Checkpoint {
                        generation,
                        next_session_id: inner.next_id,
                    },
                )?;
                // The rewrite drops every old metadata record, so a
                // nonzero fencing epoch must be re-asserted or a restart
                // would forget it was ever promoted.
                if epoch > 0 {
                    journal.append(META_SESSION, &SessionOp::Epoch { epoch })?;
                }
                for (id, op) in &kept {
                    journal.append(*id, op)?;
                }
                journal.sync()?;
                Ok(journal)
            })();
            match rewrite {
                Ok(journal) => {
                    // Rename-over is atomic; the open handle follows the
                    // inode, so the store keeps appending to the file
                    // now living at `path`.
                    std::fs::rename(&tmp, &path)?;
                    inner.journal = Some(journal);
                }
                Err(err) => {
                    std::fs::remove_file(&tmp).ok();
                    if err.kind() == io::ErrorKind::StorageFull {
                        inner.writable = false;
                    }
                    return Err(err);
                }
            }
        }

        inner.ops = kept;
        inner.op_counts.clear();
        for (id, _) in &inner.ops {
            *inner.op_counts.entry(*id).or_insert(0) += 1;
        }
        inner.generation = generation;
        inner.closed_since_compact = 0;
        inner.compactions += 1;
        let ops_after = inner.ops.len() as u64;
        inner.ops_dropped += ops_before - ops_after;
        Ok(CompactionOutcome {
            generation,
            ops_before,
            ops_after,
            sessions_dropped,
        })
    }

    /// Empties the store back to a blank image so a follower can
    /// re-bootstrap from a primary whose stream lineage no longer
    /// matches (see `serve::replicate`). The journal is atomically
    /// rewritten to just the fencing epoch — the one fact that must
    /// survive a resync, or a wiped ex-primary could forget it was
    /// deposed — and the attached replication log is cleared so the
    /// next handshake offers `have = 0`. Fault counters and the
    /// fault-schedule keys (`total_ops`, `sync_count`) stay monotonic.
    pub fn reset_for_resync(&self) -> io::Result<()> {
        let mut inner = self.lock();
        if let Some(path) = inner.path.clone() {
            if !inner.writable {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "session store is unwritable (disk full); cannot resync",
                ));
            }
            let tmp = PathBuf::from(format!("{}.resync", path.display()));
            let epoch = inner.epoch;
            let rewrite = (|| -> io::Result<RunJournal> {
                let mut journal = RunJournal::create(
                    &tmp,
                    self.options.fingerprint,
                    SESSION_STORE_MARKER,
                    self.options.fsync,
                )?;
                if epoch > 0 {
                    journal.append(META_SESSION, &SessionOp::Epoch { epoch })?;
                }
                journal.sync()?;
                Ok(journal)
            })();
            match rewrite {
                Ok(journal) => {
                    std::fs::rename(&tmp, &path)?;
                    inner.journal = Some(journal);
                }
                Err(err) => {
                    std::fs::remove_file(&tmp).ok();
                    if err.kind() == io::ErrorKind::StorageFull {
                        inner.writable = false;
                    }
                    return Err(err);
                }
            }
        }
        inner.ops.clear();
        inner.op_counts.clear();
        inner.next_id = 0;
        inner.generation = 0;
        inner.closed_since_compact = 0;
        if let Some(repl) = &inner.repl {
            repl.reset();
        }
        Ok(())
    }

    /// The ops of one session, in order (empty = unknown session).
    pub fn session_ops(&self, session_id: u64) -> Vec<SessionOp> {
        self.lock()
            .ops
            .iter()
            .filter(|(id, _)| *id == session_id)
            .map(|(_, op)| op.clone())
            .collect()
    }

    /// Every session id the store knows, ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        sessions_of(&self.lock().ops)
    }

    /// Sessions that were never ended — neither closed with `Bye` nor
    /// reaped — i.e. the ones a crash or silent disconnect interrupted.
    pub fn unclosed_sessions(&self) -> Vec<u64> {
        unclosed_of(&self.lock().ops)
    }

    /// Flushes pending appends to stable storage. A failed fsync is
    /// counted and reported but leaves the store serving (durability of
    /// the batch is lost, nothing else).
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.lock();
        let sync_index = inner.sync_count;
        inner.sync_count += 1;
        if inner.journal.is_none() || !inner.writable {
            return Ok(());
        }
        let total = inner.total_ops;
        let injected = self
            .options
            .faults
            .and_then(|f| f.sync_fault(sync_index, total));
        let result = match (injected, inner.journal.as_mut()) {
            (Some(err), _) => Err(err),
            (None, Some(journal)) => journal.sync(),
            // Unreachable (memory-only stores returned above), but a
            // no-op beats a panic on a daemon-lifetime path.
            (None, None) => Ok(()),
        };
        if let Err(err) = result {
            inner.sync_faults += 1;
            if err.kind() == io::ErrorKind::StorageFull {
                inner.writable = false;
            }
            return Err(err);
        }
        Ok(())
    }

    /// Whether the journal still accepts writes (always `true` for a
    /// memory-only store: there is nothing to fill).
    pub fn writable(&self) -> bool {
        let inner = self.lock();
        inner.journal.is_none() || inner.writable
    }

    /// The compaction generation (0 = never compacted).
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Health counters.
    pub fn snapshot(&self) -> StoreSnapshot {
        let inner = self.lock();
        StoreSnapshot {
            ops: inner.ops.len() as u64,
            sessions: sessions_of(&inner.ops).len() as u64,
            generation: inner.generation,
            compactions: inner.compactions,
            ops_dropped: inner.ops_dropped,
            append_faults: inner.append_faults,
            sync_faults: inner.sync_faults,
            writable: inner.journal.is_none() || inner.writable,
            durable: inner.journal.is_some(),
            epoch: inner.epoch,
        }
    }

    /// Total ops recorded (all sessions, after any compaction).
    pub fn len(&self) -> usize {
        self.lock().ops.len()
    }

    /// Whether the store holds no ops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned store lock means a panic escaped the serve layer's
        // isolation while appending; the in-memory image is still
        // well-formed (Vec pushes are atomic at this granularity).
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Distinct session ids in `ops`, ascending.
fn sessions_of(ops: &[(u64, SessionOp)]) -> Vec<u64> {
    let mut ids: Vec<u64> = ops.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Session ids opened but never closed/reaped, in open order.
fn unclosed_of(ops: &[(u64, SessionOp)]) -> Vec<u64> {
    let mut open: Vec<u64> = Vec::new();
    for (id, op) in ops {
        match op {
            SessionOp::Opened => open.push(*id),
            op if op.closes_session() => open.retain(|o| o != id),
            _ => {}
        }
    }
    open
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fisql-session-store-{}-{name}.fjnl",
            std::process::id()
        ))
    }

    fn opts(fingerprint: u64, fsync: FsyncPolicy) -> StoreOptions {
        StoreOptions::new(fingerprint).fsync(fsync)
    }

    fn ask(idx: u64) -> SessionOp {
        SessionOp::Ask {
            example_idx: idx,
            question: format!("q{idx}"),
        }
    }

    #[test]
    fn ops_roundtrip_across_reopen() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let store =
                SessionStore::open(Some(&path), opts(0xF00D, FsyncPolicy::EachRecord)).unwrap();
            let (a, _) = store.open_session().unwrap();
            let (b, _) = store.open_session().unwrap();
            assert_ne!(a, b);
            assert_eq!(store.append(a, ask(4)), Appended::Durable);
            assert_eq!(
                store.append(
                    a,
                    SessionOp::Feedback {
                        text: "we are in 2024".into(),
                        highlight: None,
                    },
                ),
                Appended::Durable
            );
            store.append(b, SessionOp::Closed);
            store.sync().unwrap();
        }
        let store = SessionStore::open(Some(&path), opts(0xF00D, FsyncPolicy::Batch)).unwrap();
        assert_eq!(store.session_ids(), vec![0, 1]);
        assert_eq!(
            store.session_ops(0),
            vec![
                SessionOp::Opened,
                ask(4),
                SessionOp::Feedback {
                    text: "we are in 2024".into(),
                    highlight: None,
                },
            ]
        );
        assert_eq!(store.unclosed_sessions(), vec![0]);
        // Ids never collide with recovered sessions.
        assert_eq!(store.open_session().unwrap().0, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_for_resync_blanks_the_image_but_keeps_the_epoch() {
        let path = tmp("resync");
        std::fs::remove_file(&path).ok();
        {
            let store =
                SessionStore::open(Some(&path), opts(0xF00D, FsyncPolicy::EachRecord)).unwrap();
            let (id, _) = store.open_session().unwrap();
            store.append(id, ask(1));
            store.set_epoch(3).unwrap();
            store.reset_for_resync().unwrap();
            assert_eq!(store.len(), 0, "the image is blank");
            assert!(store.session_ids().is_empty());
            assert_eq!(store.epoch(), 3, "the fence survives the wipe");
            // Ids restart from 0 — the resynced stream renumbers them.
            assert_eq!(store.open_session().unwrap().0, 0);
        }
        // The journal rewrite is what a restart replays: blank ops, the
        // epoch re-asserted.
        let store = SessionStore::open(Some(&path), opts(0xF00D, FsyncPolicy::Never)).unwrap();
        assert_eq!(store.session_ids(), vec![0], "only the post-resync open");
        assert_eq!(store.epoch(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tracked_appends_report_the_replication_position() {
        let store = SessionStore::open(None, opts(0, FsyncPolicy::Never)).unwrap();
        // Replication detached: nothing to gate on.
        let (id, _, upto) = store.open_session_tracked().unwrap();
        assert_eq!(upto, 0);
        let log = std::sync::Arc::new(crate::serve::replicate::ReplLog::new());
        store.attach_repl(std::sync::Arc::clone(&log));
        let (_, upto) = store.append_tracked(id, ask(0));
        assert_eq!(upto, 1, "first mirrored record");
        let (_, upto) = store.append_tracked(id, SessionOp::Closed);
        assert_eq!(upto, 2);
        assert_eq!(log.tail(), 2);
    }

    #[test]
    fn foreign_fingerprint_is_refused() {
        let path = tmp("foreign");
        std::fs::remove_file(&path).ok();
        {
            let store = SessionStore::open(Some(&path), opts(0xAAAA, FsyncPolicy::Never)).unwrap();
            store.open_session().unwrap();
            store.sync().unwrap();
        }
        let err = SessionStore::open(Some(&path), opts(0xBBBB, FsyncPolicy::Never)).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_recovers_the_intact_prefix() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let store = SessionStore::open(Some(&path), opts(0xF00D, FsyncPolicy::Never)).unwrap();
            let (id, _) = store.open_session().unwrap();
            store.append(id, ask(0));
            store.sync().unwrap();
        }
        // A crash mid-append: garbage half-record at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&64u32.to_le_bytes());
        bytes.extend_from_slice(&[0xCD; 9]);
        std::fs::write(&path, &bytes).unwrap();

        let store = SessionStore::open(Some(&path), opts(0xF00D, FsyncPolicy::Never)).unwrap();
        assert_eq!(store.len(), 2, "intact prefix only");
        assert_eq!(store.session_ops(0).len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_only_store_works_without_a_path() {
        let store = SessionStore::open(None, opts(0, FsyncPolicy::Never)).unwrap();
        let (id, durability) = store.open_session().unwrap();
        assert_eq!(durability, Appended::Durable);
        store.append(id, SessionOp::Closed);
        assert_eq!(store.session_ids(), vec![id]);
        assert!(store.writable());
        store.sync().unwrap();
    }

    #[test]
    fn reaped_sessions_count_as_ended() {
        let store = SessionStore::open(None, opts(0, FsyncPolicy::Never)).unwrap();
        let (a, _) = store.open_session().unwrap();
        let (b, _) = store.open_session().unwrap();
        store.append(a, ask(0));
        store.append(a, SessionOp::Reaped { idle_ms: 500 });
        assert_eq!(store.unclosed_sessions(), vec![b]);
        // The reaped transcript is still there to resume until compaction.
        assert_eq!(store.session_ops(a).len(), 3);
    }

    #[test]
    fn compaction_drops_ended_sessions_and_survives_reopen() {
        let path = tmp("compact");
        std::fs::remove_file(&path).ok();
        let survivor_ops;
        {
            let store =
                SessionStore::open(Some(&path), opts(0xF00D, FsyncPolicy::EachRecord)).unwrap();
            let (done, _) = store.open_session().unwrap();
            store.append(done, ask(1));
            store.append(done, SessionOp::Closed);
            let (reaped, _) = store.open_session().unwrap();
            store.append(reaped, ask(2));
            store.append(reaped, SessionOp::Reaped { idle_ms: 9 });
            let (live, _) = store.open_session().unwrap();
            assert_eq!(live, 2);
            store.append(live, ask(3));
            survivor_ops = store.session_ops(live);

            let outcome = store.compact().unwrap();
            assert_eq!(outcome.generation, 1);
            assert_eq!(outcome.ops_before, 8);
            assert_eq!(outcome.ops_after, 2);
            assert_eq!(outcome.sessions_dropped, 2);
            assert_eq!(store.session_ids(), vec![live]);
            assert_eq!(store.session_ops(live), survivor_ops, "survivor intact");

            // The store keeps appending to the renamed-over journal.
            store.append(live, ask(4));
            store.sync().unwrap();
        }
        // Reopen: generation persisted, survivor replay identical, and
        // the id floor prevents reuse of dropped ids.
        let store = SessionStore::open(Some(&path), opts(0xF00D, FsyncPolicy::Never)).unwrap();
        assert_eq!(store.generation(), 1);
        assert_eq!(store.session_ids(), vec![2]);
        let mut expected = survivor_ops.clone();
        expected.push(ask(4));
        assert_eq!(store.session_ops(2), expected);
        assert_eq!(store.open_session().unwrap().0, 3, "id floor respected");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_compaction_triggers_on_closed_session_cadence() {
        let path = tmp("autocompact");
        std::fs::remove_file(&path).ok();
        let store = SessionStore::open(
            Some(&path),
            opts(0xF00D, FsyncPolicy::Never).compact_every(2),
        )
        .unwrap();
        let (keep, _) = store.open_session().unwrap();
        store.append(keep, ask(0));
        for _ in 0..2 {
            let (id, _) = store.open_session().unwrap();
            store.append(id, ask(1));
            store.append(id, SessionOp::Closed);
        }
        // Second close crossed the cadence: generation bumped, only the
        // live session left.
        assert_eq!(store.generation(), 1);
        assert_eq!(store.session_ids(), vec![keep]);
        let snap = store.snapshot();
        assert_eq!(snap.compactions, 1);
        assert!(snap.ops_dropped >= 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_is_atomic_rename_no_tmp_left_behind() {
        let path = tmp("atomic");
        std::fs::remove_file(&path).ok();
        let store = SessionStore::open(Some(&path), opts(0xF00D, FsyncPolicy::Never)).unwrap();
        let (id, _) = store.open_session().unwrap();
        store.append(id, SessionOp::Closed);
        store.compact().unwrap();
        let tmp_path = PathBuf::from(format!("{}.compact", path.display()));
        assert!(!tmp_path.exists(), "rewrite must be renamed over");
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_append_fault_degrades_without_losing_the_memory_image() {
        let store = SessionStore::open(
            None,
            opts(0, FsyncPolicy::Never).faults(Some(DiskFaultConfig::uniform(1.0))),
        )
        .unwrap();
        // Memory-only store: faults never fire (nothing to inject into).
        let (id, d) = store.open_session().unwrap();
        assert_eq!(d, Appended::Durable);

        let path = tmp("faulty");
        std::fs::remove_file(&path).ok();
        let store = SessionStore::open(
            Some(&path),
            opts(0xF00D, FsyncPolicy::Never).faults(Some(DiskFaultConfig::uniform(1.0))),
        )
        .unwrap();
        let (id2, d2) = store.open_session().unwrap();
        assert!(matches!(d2, Appended::Degraded { .. }), "rate 1 must fire");
        // The op is still in the in-memory image for live replay.
        assert_eq!(store.session_ops(id2), vec![SessionOp::Opened]);
        assert_eq!(store.snapshot().append_faults, 1);
        assert!(store.writable(), "transient faults do not flip writable");
        let _ = id;
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_full_flips_unwritable_and_refuses_new_sessions() {
        let path = tmp("full");
        std::fs::remove_file(&path).ok();
        let store = SessionStore::open(
            Some(&path),
            opts(0xF00D, FsyncPolicy::Never).faults(Some(DiskFaultConfig {
                full_after_ops: Some(2),
                ..DiskFaultConfig::uniform(0.0)
            })),
        )
        .unwrap();
        let (id, d) = store.open_session().unwrap();
        assert_eq!(d, Appended::Durable);
        assert_eq!(store.append(id, ask(0)), Appended::Durable);
        // Third op crosses the horizon: degraded, store unwritable.
        assert!(matches!(
            store.append(id, ask(1)),
            Appended::Degraded { .. }
        ));
        assert!(!store.writable());
        let err = store.open_session().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // The existing session continues memory-only.
        assert!(matches!(
            store.append(id, ask(2)),
            Appended::Degraded { .. }
        ));
        assert_eq!(store.session_ops(id).len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_faults_are_counted_and_reported() {
        let path = tmp("syncfault");
        std::fs::remove_file(&path).ok();
        let store = SessionStore::open(
            Some(&path),
            opts(0xF00D, FsyncPolicy::EachRecord).faults(Some(DiskFaultConfig {
                sync_rate: 1.0,
                ..DiskFaultConfig::default()
            })),
        )
        .unwrap();
        store.open_session().unwrap();
        assert!(store.sync().is_err());
        assert_eq!(store.snapshot().sync_faults, 1);
        assert!(store.writable(), "sync faults are not disk-full");
        std::fs::remove_file(&path).ok();
    }
}
