//! A deterministic load generator for the serve daemon.
//!
//! `fisql load` (and `bench_serve`) drive a daemon with seeded session
//! scripts: each scripted session asks corpus questions and sends a few
//! feedback utterances, all drawn from a [`StdRng`] keyed by the script
//! seed and session index — two runs with the same seed replay the same
//! load, byte for byte.
//!
//! The report folds every completed session's transcript into an
//! **order-insensitive digest** (a wrapping sum of per-session FNV-64
//! digests over the serialized event stream). Which worker runs which
//! script varies with scheduling, but each session's transcript is
//! deterministic, so the digest is stable across runs — the load-level
//! determinism check the serve tests and CI assert on.

use super::client::{Connected, ServeClient};
use crate::config::LoadConfig;
use crate::journal::Fnv64;
use fisql_spider::{build_aep, AepConfig, Corpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Feedback utterances the scripts cycle through — plausible follow-ups
/// a user of the tool would type; the pipeline incorporates what it can
/// route and leaves the rest, deterministically either way.
const FEEDBACK_POOL: &[&str] = &[
    "we are in 2024",
    "only the january rows please",
    "count them instead of listing",
    "I meant the created date",
    "sort by the count",
];

/// One scripted session: questions, each followed by feedback rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionScript {
    /// `(question text, feedback utterances)` in play order.
    pub questions: Vec<(String, Vec<String>)>,
}

/// Generates the scripts for a load run — a pure function of the config
/// (seed, session count, round bound) and the corpus.
pub fn build_scripts(config: &LoadConfig, corpus: &Corpus) -> Vec<SessionScript> {
    (0..config.sessions)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37));
            let n_questions = rng.gen_range(1..=2usize);
            let questions = (0..n_questions)
                .map(|_| {
                    let example = rng.gen_range(0..corpus.examples.len());
                    let rounds = rng.gen_range(1..=config.max_rounds);
                    let feedback = (0..rounds)
                        .map(|_| FEEDBACK_POOL[rng.gen_range(0..FEEDBACK_POOL.len())].to_string())
                        .collect();
                    (corpus.examples[example].question.clone(), feedback)
                })
                .collect();
            SessionScript { questions }
        })
        .collect()
}

/// What one load run did.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Sessions that ran their whole script and closed with `Bye`.
    pub sessions_completed: u64,
    /// Connections the daemon rejected (admission backpressure).
    pub sessions_rejected: u64,
    /// Sessions that failed on a transport or protocol error.
    pub sessions_failed: u64,
    /// Questions asked across completed sessions.
    pub questions: u64,
    /// Feedback rounds sent across completed sessions.
    pub rounds: u64,
    /// Per-request latencies, microseconds, ascending.
    pub latencies_us: Vec<u64>,
    /// Wall-clock for the whole run, milliseconds.
    pub wall_ms: u64,
    /// Order-insensitive digest over every completed session's
    /// transcript (see the module docs).
    pub digest: u64,
}

impl LoadReport {
    /// Completed sessions per second of wall clock.
    pub fn sessions_per_sec(&self) -> f64 {
        per_sec(self.sessions_completed, self.wall_ms)
    }

    /// Feedback rounds per second of wall clock.
    pub fn rounds_per_sec(&self) -> f64 {
        per_sec(self.rounds, self.wall_ms)
    }

    /// The `p`-th latency percentile, microseconds (0 when no requests
    /// were timed).
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        percentile(&self.latencies_us, p)
    }
}

fn per_sec(count: u64, wall_ms: u64) -> f64 {
    if wall_ms == 0 {
        return 0.0;
    }
    count as f64 * 1000.0 / wall_ms as f64
}

/// The `p`-th percentile (0..=100) of an ascending sample by
/// nearest-rank; 0 on an empty sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(Default)]
struct Tally {
    completed: u64,
    rejected: u64,
    failed: u64,
    questions: u64,
    rounds: u64,
    latencies_us: Vec<u64>,
    digest: u64,
}

/// Runs the scripted load against a daemon and reports.
pub fn run_load(config: &LoadConfig) -> io::Result<LoadReport> {
    let corpus = build_aep(&AepConfig {
        n_examples: config.n_examples,
        seed: config.corpus_seed,
    });
    let scripts = Arc::new(build_scripts(config, &corpus));
    let next = Arc::new(AtomicUsize::new(0));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let start = Instant::now();

    let workers: Vec<_> = (0..config.concurrency.min(config.sessions))
        .map(|_| {
            let scripts = Arc::clone(&scripts);
            let next = Arc::clone(&next);
            let tally = Arc::clone(&tally);
            let config = config.clone();
            std::thread::spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(script) = scripts.get(idx) else {
                    return;
                };
                let outcome = run_script(&config, script);
                let mut tally = tally
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                match outcome {
                    Ok(Some(done)) => {
                        tally.completed += 1;
                        tally.questions += done.questions;
                        tally.rounds += done.rounds;
                        tally.latencies_us.extend(done.latencies_us);
                        tally.digest = tally.digest.wrapping_add(done.digest);
                    }
                    Ok(None) => tally.rejected += 1,
                    Err(_) => tally.failed += 1,
                }
            })
        })
        .collect();
    for worker in workers {
        let _ = worker.join();
    }

    let wall_ms = start.elapsed().as_millis() as u64;
    let mut tally = Arc::try_unwrap(tally)
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
        .unwrap_or_default();
    tally.latencies_us.sort_unstable();

    if config.shutdown {
        super::client::request_shutdown(&config.addr)?;
    }
    Ok(LoadReport {
        sessions_completed: tally.completed,
        sessions_rejected: tally.rejected,
        sessions_failed: tally.failed,
        questions: tally.questions,
        rounds: tally.rounds,
        latencies_us: tally.latencies_us,
        wall_ms,
        digest: tally.digest,
    })
}

struct SessionDone {
    questions: u64,
    rounds: u64,
    latencies_us: Vec<u64>,
    digest: u64,
}

/// Plays one script end to end. `Ok(None)` means the daemon rejected or
/// drained the connection (backpressure, counted but not an error).
fn run_script(config: &LoadConfig, script: &SessionScript) -> io::Result<Option<SessionDone>> {
    let mut client = match ServeClient::connect_retry(
        config.addr.as_str(),
        None,
        Duration::from_millis(config.connect_retry_ms),
    )? {
        Connected::Admitted(client) => client,
        Connected::Rejected { .. } | Connected::ShuttingDown => return Ok(None),
    };
    let mut done = SessionDone {
        questions: 0,
        rounds: 0,
        latencies_us: Vec::new(),
        digest: 0,
    };
    for (question, feedbacks) in &script.questions {
        let t = Instant::now();
        client.ask(question)?;
        done.latencies_us.push(t.elapsed().as_micros() as u64);
        done.questions += 1;
        for feedback in feedbacks {
            let t = Instant::now();
            client.feedback(feedback, None)?;
            done.latencies_us.push(t.elapsed().as_micros() as u64);
            done.rounds += 1;
        }
    }
    let events = client.transcript()?;
    done.digest = transcript_digest(&events);
    client.bye()?;
    Ok(Some(done))
}

/// FNV-64 over the serialized event stream — one session's contribution
/// to the order-insensitive load digest.
pub fn transcript_digest(events: &[crate::session::SessionEvent]) -> u64 {
    let json = serde_json::to_vec(events).expect("session events serialize");
    let mut fp = Fnv64::new();
    fp.update(&json);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        build_aep(&AepConfig {
            n_examples: 20,
            seed: 0xC11,
        })
    }

    #[test]
    fn scripts_are_deterministic_in_the_seed() {
        let config = LoadConfig {
            sessions: 8,
            ..LoadConfig::default()
        };
        let corpus = corpus();
        let a = build_scripts(&config, &corpus);
        let b = build_scripts(&config, &corpus);
        assert_eq!(a, b);
        let other = build_scripts(
            &LoadConfig {
                seed: config.seed + 1,
                ..config
            },
            &corpus,
        );
        assert_ne!(a, other);
    }

    #[test]
    fn scripts_respect_the_round_bound() {
        let config = LoadConfig {
            sessions: 16,
            max_rounds: 2,
            ..LoadConfig::default()
        };
        for script in build_scripts(&config, &corpus()) {
            assert!(!script.questions.is_empty());
            for (question, feedbacks) in &script.questions {
                assert!(!question.is_empty());
                assert!((1..=2).contains(&feedbacks.len()));
            }
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 50.0), 50);
        assert_eq!(percentile(&sample, 99.0), 99);
        assert_eq!(percentile(&sample, 100.0), 100);
        assert_eq!(percentile(&sample, 0.0), 1);
    }

    #[test]
    fn digest_is_order_insensitive_across_sessions() {
        let a = transcript_digest(&[crate::session::SessionEvent::User("a".into())]);
        let b = transcript_digest(&[crate::session::SessionEvent::User("b".into())]);
        assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        assert_ne!(a, b);
    }
}
