//! A deterministic load generator for the serve daemon.
//!
//! `fisql load` (and `bench_serve`) drive a daemon with seeded session
//! scripts: each scripted session asks corpus questions and sends a few
//! feedback utterances, all drawn from a [`StdRng`] keyed by the script
//! seed and session index — two runs with the same seed replay the same
//! load, byte for byte.
//!
//! The report folds every completed session's transcript into an
//! **order-insensitive digest** (a wrapping sum of per-session FNV-64
//! digests over the serialized event stream). Which worker runs which
//! script varies with scheduling, but each session's transcript is
//! deterministic, so the digest is stable across runs — the load-level
//! determinism check the serve tests and CI assert on.

use super::client::{request_shutdown, request_stats, FailoverClient};
use super::protocol::{
    read_frame_deadline, write_frame, ClientRequest, ServerResponse, ServerStats, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use crate::config::LoadConfig;
use crate::journal::Fnv64;
use fisql_spider::{build_aep, AepConfig, Corpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Feedback utterances the scripts cycle through — plausible follow-ups
/// a user of the tool would type; the pipeline incorporates what it can
/// route and leaves the rest, deterministically either way.
const FEEDBACK_POOL: &[&str] = &[
    "we are in 2024",
    "only the january rows please",
    "count them instead of listing",
    "I meant the created date",
    "sort by the count",
];

/// One scripted session: questions, each followed by feedback rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionScript {
    /// `(question text, feedback utterances)` in play order.
    pub questions: Vec<(String, Vec<String>)>,
}

/// Generates the scripts for a load run — a pure function of the config
/// (seed, session count, round bound) and the corpus.
pub fn build_scripts(config: &LoadConfig, corpus: &Corpus) -> Vec<SessionScript> {
    (0..config.sessions)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37));
            let n_questions = rng.gen_range(1..=2usize);
            let questions = (0..n_questions)
                .map(|_| {
                    let example = rng.gen_range(0..corpus.examples.len());
                    let rounds = rng.gen_range(1..=config.max_rounds);
                    let feedback = (0..rounds)
                        .map(|_| FEEDBACK_POOL[rng.gen_range(0..FEEDBACK_POOL.len())].to_string())
                        .collect();
                    (corpus.examples[example].question.clone(), feedback)
                })
                .collect();
            SessionScript { questions }
        })
        .collect()
}

/// What one load run did.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Sessions that ran their whole script and closed with `Bye`.
    pub sessions_completed: u64,
    /// Connections the daemon rejected (admission backpressure).
    pub sessions_rejected: u64,
    /// Sessions that failed on a transport or protocol error.
    pub sessions_failed: u64,
    /// Questions asked across completed sessions.
    pub questions: u64,
    /// Feedback rounds sent across completed sessions.
    pub rounds: u64,
    /// Per-request latencies, microseconds, ascending.
    pub latencies_us: Vec<u64>,
    /// Endpoint failovers clients performed mid-session (0 unless a
    /// node died under load).
    pub failovers: u64,
    /// Confirmed turns a promoted follower had never seen (possible
    /// only with `--repl-ack none`).
    pub lost_rounds: u64,
    /// Wall-clock of each successful failover, microseconds, ascending.
    pub failover_latencies_us: Vec<u64>,
    /// Wall-clock for the whole run, milliseconds.
    pub wall_ms: u64,
    /// Order-insensitive digest over every completed session's
    /// transcript (see the module docs).
    pub digest: u64,
    /// The daemon's live statistics, fetched at the end of the run
    /// (`None` when the daemon was already gone).
    pub stats: Option<ServerStats>,
}

impl LoadReport {
    /// Completed sessions per second of wall clock.
    pub fn sessions_per_sec(&self) -> f64 {
        per_sec(self.sessions_completed, self.wall_ms)
    }

    /// Feedback rounds per second of wall clock.
    pub fn rounds_per_sec(&self) -> f64 {
        per_sec(self.rounds, self.wall_ms)
    }

    /// The `p`-th latency percentile, microseconds (0 when no requests
    /// were timed).
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        percentile(&self.latencies_us, p)
    }

    /// The `p`-th failover-latency percentile, microseconds (0 when no
    /// failover happened).
    pub fn failover_percentile_us(&self, p: f64) -> u64 {
        percentile(&self.failover_latencies_us, p)
    }
}

fn per_sec(count: u64, wall_ms: u64) -> f64 {
    if wall_ms == 0 {
        return 0.0;
    }
    count as f64 * 1000.0 / wall_ms as f64
}

/// The `p`-th percentile (0..=100) of an ascending sample by
/// nearest-rank; 0 on an empty sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(Default)]
struct Tally {
    completed: u64,
    rejected: u64,
    failed: u64,
    questions: u64,
    rounds: u64,
    latencies_us: Vec<u64>,
    failovers: u64,
    lost_rounds: u64,
    failover_latencies_us: Vec<u64>,
    digest: u64,
}

/// Runs the scripted load against a daemon and reports.
pub fn run_load(config: &LoadConfig) -> io::Result<LoadReport> {
    let corpus = build_aep(&AepConfig {
        n_examples: config.n_examples,
        seed: config.corpus_seed,
    });
    let scripts = Arc::new(build_scripts(config, &corpus));
    let next = Arc::new(AtomicUsize::new(0));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let start = Instant::now();

    let workers: Vec<_> = (0..config.concurrency.min(config.sessions))
        .map(|_| {
            let scripts = Arc::clone(&scripts);
            let next = Arc::clone(&next);
            let tally = Arc::clone(&tally);
            let config = config.clone();
            std::thread::spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(script) = scripts.get(idx) else {
                    return;
                };
                let outcome = run_script(&config, script);
                let mut tally = tally
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                match outcome {
                    Ok(Some(done)) => {
                        tally.completed += 1;
                        tally.questions += done.questions;
                        tally.rounds += done.rounds;
                        tally.latencies_us.extend(done.latencies_us);
                        tally.failovers += done.failovers;
                        tally.lost_rounds += done.lost_rounds;
                        tally
                            .failover_latencies_us
                            .extend(done.failover_latencies_us);
                        tally.digest = tally.digest.wrapping_add(done.digest);
                    }
                    Ok(None) => tally.rejected += 1,
                    Err(_) => tally.failed += 1,
                }
            })
        })
        .collect();
    for worker in workers {
        let _ = worker.join();
    }

    let wall_ms = start.elapsed().as_millis() as u64;
    let mut tally = Arc::try_unwrap(tally)
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
        .unwrap_or_default();
    tally.latencies_us.sort_unstable();
    tally.failover_latencies_us.sort_unstable();

    // Live daemon statistics, fetched before any shutdown so the report
    // reflects the run it drove. The first endpoint still standing
    // answers — after a failover that is the promoted follower
    // (best-effort: a cluster that already drained yields `None`, not a
    // failed load).
    let stats = config
        .endpoints()
        .iter()
        .find_map(|endpoint| request_stats(endpoint).ok());
    if config.shutdown {
        // Shut down every reachable endpoint; an already-gone node is
        // fine, but a node that refused the shutdown surfaces.
        let mut last_err = None;
        for endpoint in config.endpoints() {
            if let Err(e) = request_shutdown(&endpoint) {
                last_err = Some(e);
            }
        }
        if let Some(e) = last_err {
            return Err(e);
        }
    }
    Ok(LoadReport {
        sessions_completed: tally.completed,
        sessions_rejected: tally.rejected,
        sessions_failed: tally.failed,
        questions: tally.questions,
        rounds: tally.rounds,
        latencies_us: tally.latencies_us,
        failovers: tally.failovers,
        lost_rounds: tally.lost_rounds,
        failover_latencies_us: tally.failover_latencies_us,
        wall_ms,
        digest: tally.digest,
        stats,
    })
}

struct SessionDone {
    questions: u64,
    rounds: u64,
    latencies_us: Vec<u64>,
    failovers: u64,
    lost_rounds: u64,
    failover_latencies_us: Vec<u64>,
    digest: u64,
}

/// Plays one script end to end. `Ok(None)` means the daemon rejected or
/// drained the connection (backpressure, counted but not an error).
///
/// The session rides a [`FailoverClient`] over the config's endpoint
/// list: with a single endpoint it behaves exactly like the plain
/// client; with several, a node dying mid-script makes the client
/// re-attach to the promoted follower and resume where it left off.
fn run_script(config: &LoadConfig, script: &SessionScript) -> io::Result<Option<SessionDone>> {
    let budget = Duration::from_millis(config.connect_retry_ms);
    let Some(mut client) = FailoverClient::connect(config.endpoints(), budget)? else {
        return Ok(None);
    };
    let mut done = SessionDone {
        questions: 0,
        rounds: 0,
        latencies_us: Vec::new(),
        failovers: 0,
        lost_rounds: 0,
        failover_latencies_us: Vec::new(),
        digest: 0,
    };
    for (question, feedbacks) in &script.questions {
        let t = Instant::now();
        client.ask(question)?;
        done.latencies_us.push(t.elapsed().as_micros() as u64);
        done.questions += 1;
        for feedback in feedbacks {
            let t = Instant::now();
            client.feedback(feedback, None)?;
            done.latencies_us.push(t.elapsed().as_micros() as u64);
            done.rounds += 1;
        }
    }
    let events = client.transcript()?;
    done.digest = transcript_digest(&events);
    client.bye()?;
    done.failovers = client.failovers;
    done.lost_rounds = client.lost_rounds;
    done.failover_latencies_us = std::mem::take(&mut client.failover_latencies_us);
    Ok(Some(done))
}

// ---------------------------------------------------------------------
// Network chaos harness
// ---------------------------------------------------------------------

/// One adversarial client behavior the chaos harness can play.
///
/// Every behavior completes a *legitimate* `Hello` handshake first (so
/// it holds a real admission slot), then turns hostile — the harness
/// exists to prove that misbehaving peers cost the daemon nothing but
/// the slot they were granted, and that the slot always comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosBehavior {
    /// Writes a valid request one byte at a time with a pause between
    /// bytes — the classic slowloris. The daemon's idle clock only
    /// resets on *completed* frames, so the trickle must still be
    /// reaped.
    Slowloris,
    /// Writes half of a valid frame, then drops the connection.
    MidFrameDisconnect,
    /// Writes a length header claiming a frame larger than
    /// [`MAX_FRAME_LEN`].
    Oversized,
    /// Writes a correctly framed payload of non-UTF-8 garbage.
    Garbage,
    /// Completes the handshake, then never sends another byte.
    SilentStall,
}

/// All behaviors, in the order the seeded picker indexes them.
pub const ALL_CHAOS_BEHAVIORS: &[ChaosBehavior] = &[
    ChaosBehavior::Slowloris,
    ChaosBehavior::MidFrameDisconnect,
    ChaosBehavior::Oversized,
    ChaosBehavior::Garbage,
    ChaosBehavior::SilentStall,
];

/// Configuration for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Daemon address, `host:port`.
    pub addr: String,
    /// How many adversarial clients to run (one thread each).
    pub clients: usize,
    /// Seed for the per-client behavior picker and payload choices.
    pub seed: u64,
    /// Behaviors to draw from; defaults to [`ALL_CHAOS_BEHAVIORS`].
    pub behaviors: Vec<ChaosBehavior>,
    /// Pause between bytes for [`ChaosBehavior::Slowloris`].
    pub byte_pause_ms: u64,
    /// Longest any chaos client waits for one server frame. Bound this
    /// above the daemon's idle timeout so stalls observe their reap.
    pub read_deadline_ms: u64,
    /// Budget for retrying refused TCP connects at startup.
    pub connect_retry_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            addr: String::new(),
            clients: 8,
            seed: 0xC4A0,
            behaviors: ALL_CHAOS_BEHAVIORS.to_vec(),
            byte_pause_ms: 40,
            read_deadline_ms: 10_000,
            connect_retry_ms: 2_000,
        }
    }
}

/// How the chaos clients fared — every client lands in exactly one
/// bucket besides `clients` and `admitted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Clients launched.
    pub clients: u64,
    /// Clients whose handshake was admitted (granted a slot).
    pub admitted: u64,
    /// Clients refused at the handshake (admission backpressure or an
    /// unwritable store).
    pub rejected: u64,
    /// Clients that observed their own reap (a typed `Reaped` frame).
    pub reaped: u64,
    /// Hostile frames answered with a typed `Error` frame.
    pub refused: u64,
    /// Connections that ended with a raw socket drop (ours or the
    /// daemon's) instead of a typed frame.
    pub disconnected: u64,
    /// Hostile clients the daemon nonetheless served a normal turn.
    pub served: u64,
    /// Anything else — handshake transport errors, unexpected frames.
    /// A healthy chaos run keeps this at zero.
    pub failed: u64,
}

/// What one chaos client's hostility resolved to.
enum ChaosOutcome {
    Rejected,
    Reaped,
    Refused,
    Disconnected,
    Served,
    Failed,
}

/// Runs `config.clients` adversarial clients against a daemon and
/// tallies how each one was put down. Deterministic in the seed up to
/// scheduling: the behavior each client plays is a pure function of
/// `(seed, client index)`.
pub fn run_chaos(config: &ChaosConfig) -> io::Result<ChaosReport> {
    if config.behaviors.is_empty() || config.clients == 0 {
        return Ok(ChaosReport::default());
    }
    let report = Arc::new(Mutex::new(ChaosReport::default()));
    let workers: Vec<_> = (0..config.clients)
        .map(|i| {
            let config = config.clone();
            let report = Arc::clone(&report);
            std::thread::spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                let behavior = config.behaviors[rng.gen_range(0..config.behaviors.len())];
                let outcome = run_chaos_client(&config, behavior, &mut rng);
                let mut report = report
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                report.clients += 1;
                match outcome {
                    ChaosOutcome::Rejected => report.rejected += 1,
                    ChaosOutcome::Reaped => {
                        report.admitted += 1;
                        report.reaped += 1;
                    }
                    ChaosOutcome::Refused => {
                        report.admitted += 1;
                        report.refused += 1;
                    }
                    ChaosOutcome::Disconnected => {
                        report.admitted += 1;
                        report.disconnected += 1;
                    }
                    ChaosOutcome::Served => {
                        report.admitted += 1;
                        report.served += 1;
                    }
                    ChaosOutcome::Failed => report.failed += 1,
                }
            })
        })
        .collect();
    for worker in workers {
        let _ = worker.join();
    }
    Ok(Arc::try_unwrap(report)
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
        .unwrap_or_default())
}

/// Serializes one request into its exact wire bytes (header + body).
fn encode_frame(request: &ClientRequest) -> Vec<u8> {
    let mut bytes = Vec::new();
    // Infallible in practice: writing to a Vec cannot fail, and every
    // `ClientRequest` variant is plain-data serde (no maps with
    // non-string keys, no custom Serialize impls that can error).
    write_frame(&mut bytes, request).expect("a request frame serializes");
    bytes
}

fn chaos_deadline(config: &ChaosConfig) -> Instant {
    Instant::now() + Duration::from_millis(config.read_deadline_ms)
}

/// Connects, completes a legitimate handshake, then plays `behavior`.
fn run_chaos_client(
    config: &ChaosConfig,
    behavior: ChaosBehavior,
    rng: &mut StdRng,
) -> ChaosOutcome {
    let connect_deadline = Instant::now() + Duration::from_millis(config.connect_retry_ms);
    let mut stream = loop {
        match TcpStream::connect(config.addr.as_str()) {
            Ok(stream) => break stream,
            Err(_) if Instant::now() < connect_deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => return ChaosOutcome::Failed,
        }
    };
    if stream.set_nodelay(true).is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .is_err()
    {
        return ChaosOutcome::Failed;
    }
    let hello = ClientRequest::Hello {
        version: PROTOCOL_VERSION,
        resume: None,
    };
    if write_frame(&mut stream, &hello).is_err() {
        return ChaosOutcome::Failed;
    }
    match read_frame_deadline::<_, ServerResponse>(&mut stream, chaos_deadline(config), true) {
        Ok(Some(ServerResponse::Welcome { .. })) => {}
        Ok(Some(ServerResponse::Rejected { .. } | ServerResponse::ShuttingDown)) => {
            return ChaosOutcome::Rejected;
        }
        _ => return ChaosOutcome::Failed,
    }

    let ask = ClientRequest::Ask {
        question: format!("chaos question {}", rng.gen_range(0..1000u32)),
    };
    match behavior {
        ChaosBehavior::Slowloris => {
            let frame = encode_frame(&ask);
            for &byte in &frame {
                if stream.write_all(&[byte]).is_err() {
                    // The daemon reaped us mid-trickle and closed the
                    // socket; the write side saw it first.
                    return ChaosOutcome::Disconnected;
                }
                std::thread::sleep(Duration::from_millis(config.byte_pause_ms));
            }
            match read_verdict(&mut stream, config) {
                Verdict::Reaped => ChaosOutcome::Reaped,
                Verdict::Error => ChaosOutcome::Refused,
                Verdict::Turn => {
                    // Outran the idle clock: close politely so the
                    // session does not read as a casualty.
                    let _ = write_frame(&mut stream, &ClientRequest::Bye);
                    let _ = read_frame_deadline::<_, ServerResponse>(
                        &mut stream,
                        chaos_deadline(config),
                        true,
                    );
                    ChaosOutcome::Served
                }
                Verdict::Gone => ChaosOutcome::Disconnected,
            }
        }
        ChaosBehavior::MidFrameDisconnect => {
            let frame = encode_frame(&ask);
            let half = (frame.len() / 2).max(5);
            let _ = stream.write_all(&frame[..half.min(frame.len())]);
            drop(stream);
            ChaosOutcome::Disconnected
        }
        ChaosBehavior::Oversized => {
            let header = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
            if stream.write_all(&header).is_err() {
                return ChaosOutcome::Disconnected;
            }
            match read_verdict(&mut stream, config) {
                Verdict::Error => ChaosOutcome::Refused,
                Verdict::Reaped => ChaosOutcome::Reaped,
                Verdict::Gone => ChaosOutcome::Disconnected,
                Verdict::Turn => ChaosOutcome::Failed,
            }
        }
        ChaosBehavior::Garbage => {
            let body: Vec<u8> = (0..64).map(|_| rng.gen_range(0x80..=0xFFu8)).collect();
            let mut frame = (body.len() as u32).to_le_bytes().to_vec();
            frame.extend_from_slice(&body);
            if stream.write_all(&frame).is_err() {
                return ChaosOutcome::Disconnected;
            }
            match read_verdict(&mut stream, config) {
                Verdict::Error => ChaosOutcome::Refused,
                Verdict::Reaped => ChaosOutcome::Reaped,
                Verdict::Gone => ChaosOutcome::Disconnected,
                Verdict::Turn => ChaosOutcome::Failed,
            }
        }
        ChaosBehavior::SilentStall => match read_verdict(&mut stream, config) {
            Verdict::Reaped => ChaosOutcome::Reaped,
            Verdict::Error => ChaosOutcome::Refused,
            Verdict::Gone => ChaosOutcome::Disconnected,
            Verdict::Turn => ChaosOutcome::Failed,
        },
    }
}

/// What the daemon's next frame (or lack of one) said about us.
enum Verdict {
    Reaped,
    Error,
    Turn,
    Gone,
}

fn read_verdict(stream: &mut TcpStream, config: &ChaosConfig) -> Verdict {
    match read_frame_deadline::<_, ServerResponse>(stream, chaos_deadline(config), true) {
        Ok(Some(ServerResponse::Reaped { .. })) => Verdict::Reaped,
        Ok(Some(ServerResponse::Error { .. })) => Verdict::Error,
        Ok(Some(ServerResponse::Turn { .. })) => Verdict::Turn,
        _ => Verdict::Gone,
    }
}

/// FNV-64 over the serialized event stream — one session's contribution
/// to the order-insensitive load digest.
pub fn transcript_digest(events: &[crate::session::SessionEvent]) -> u64 {
    // Infallible in practice: `SessionEvent` is plain-data serde (the
    // same serialization every wire frame carrying events relies on).
    let json = serde_json::to_vec(events).expect("session events serialize");
    let mut fp = Fnv64::new();
    fp.update(&json);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        build_aep(&AepConfig {
            n_examples: 20,
            seed: 0xC11,
        })
    }

    #[test]
    fn scripts_are_deterministic_in_the_seed() {
        let config = LoadConfig {
            sessions: 8,
            ..LoadConfig::default()
        };
        let corpus = corpus();
        let a = build_scripts(&config, &corpus);
        let b = build_scripts(&config, &corpus);
        assert_eq!(a, b);
        let other = build_scripts(
            &LoadConfig {
                seed: config.seed + 1,
                ..config
            },
            &corpus,
        );
        assert_ne!(a, other);
    }

    #[test]
    fn scripts_respect_the_round_bound() {
        let config = LoadConfig {
            sessions: 16,
            max_rounds: 2,
            ..LoadConfig::default()
        };
        for script in build_scripts(&config, &corpus()) {
            assert!(!script.questions.is_empty());
            for (question, feedbacks) in &script.questions {
                assert!(!question.is_empty());
                assert!((1..=2).contains(&feedbacks.len()));
            }
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 50.0), 50);
        assert_eq!(percentile(&sample, 99.0), 99);
        assert_eq!(percentile(&sample, 100.0), 100);
        assert_eq!(percentile(&sample, 0.0), 1);
    }

    #[test]
    fn chaos_behavior_choice_is_a_pure_function_of_seed_and_index() {
        let pick = |seed: u64, i: u64| {
            let mut rng = StdRng::seed_from_u64(seed ^ i.wrapping_mul(0x9E37_79B9));
            ALL_CHAOS_BEHAVIORS[rng.gen_range(0..ALL_CHAOS_BEHAVIORS.len())]
        };
        for i in 0..32 {
            assert_eq!(pick(0xC4A0, i), pick(0xC4A0, i));
        }
        // The pool actually mixes: some pair of clients differs.
        assert!((1..32).any(|i| pick(0xC4A0, i) != pick(0xC4A0, 0)));
    }

    #[test]
    fn chaos_run_with_no_clients_is_empty() {
        let report = run_chaos(&ChaosConfig {
            clients: 0,
            ..ChaosConfig::default()
        })
        .unwrap();
        assert_eq!(report, ChaosReport::default());
    }

    #[test]
    fn digest_is_order_insensitive_across_sessions() {
        let a = transcript_digest(&[crate::session::SessionEvent::User("a".into())]);
        let b = transcript_digest(&[crate::session::SessionEvent::User("b".into())]);
        assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        assert_ne!(a, b);
    }
}
