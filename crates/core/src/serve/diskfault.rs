//! Deterministic disk-fault injection for the session store.
//!
//! The same philosophy as [`fisql_llm::FaultyBackend`]: chaos must be
//! **replayable**, so a fault decision is a pure hash of per-operation
//! context — `(seed, lane, session id, per-session op index)` — never a
//! shared call counter that would make the schedule depend on thread
//! interleaving. Two runs driving the same sessions see the same disk
//! faults regardless of how connections race.
//!
//! Three lanes:
//!
//! - **append faults** — a journal append fails (short write, I/O
//!   error); the affected *session* degrades to memory-only, the daemon
//!   lives;
//! - **sync faults** — an fsync fails; durability of the batch is lost,
//!   nothing else;
//! - **disk-full** — after a configured number of journaled ops every
//!   write fails with [`io::ErrorKind::StorageFull`]; the store flips
//!   unwritable and the daemon refuses *new* sessions while continuing
//!   to serve existing ones in memory.
//!
//! Injected errors carry an `injected disk fault` prefix so logs can
//! tell chaos from a genuinely failing disk.

use std::io;

/// Environment variable carrying a uniform disk-fault rate
/// (`0.0..=1.0`) for the chaos-serve CI job; see
/// [`DiskFaultConfig::from_env`].
pub const DISK_FAULT_RATE_ENV: &str = "FISQL_DISK_FAULT_RATE";

/// Per-lane injection rates plus the disk-full horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultConfig {
    /// Seed the fault schedule derives from.
    pub seed: u64,
    /// Probability an append's journal write fails, per op.
    pub append_rate: f64,
    /// Probability an fsync fails, per sync.
    pub sync_rate: f64,
    /// Total journaled ops after which the disk is "full": every later
    /// write fails with [`io::ErrorKind::StorageFull`]. `None` = never.
    pub full_after_ops: Option<u64>,
}

impl Default for DiskFaultConfig {
    fn default() -> Self {
        DiskFaultConfig {
            seed: 0xD15C,
            append_rate: 0.0,
            sync_rate: 0.0,
            full_after_ops: None,
        }
    }
}

impl DiskFaultConfig {
    /// A config injecting `rate` on both the append and sync lanes, with
    /// no disk-full horizon.
    pub fn uniform(rate: f64) -> DiskFaultConfig {
        let rate = rate.clamp(0.0, 1.0);
        DiskFaultConfig {
            append_rate: rate,
            sync_rate: rate,
            ..DiskFaultConfig::default()
        }
    }

    /// Reads [`DISK_FAULT_RATE_ENV`] into a uniform config; `None` when
    /// unset, empty, unparsable, or zero.
    pub fn from_env() -> Option<DiskFaultConfig> {
        let rate: f64 = std::env::var(DISK_FAULT_RATE_ENV)
            .ok()?
            .trim()
            .parse()
            .ok()?;
        (rate > 0.0).then(|| DiskFaultConfig::uniform(rate))
    }

    /// Whether any lane can fire.
    pub fn is_active(&self) -> bool {
        self.append_rate > 0.0 || self.sync_rate > 0.0 || self.full_after_ops.is_some()
    }

    /// The fault decision for one journal append: `session_id` and the
    /// 0-based `op_index` *within that session* key the schedule, and
    /// `total_ops` (journaled so far, store-wide) drives the disk-full
    /// horizon.
    pub fn append_fault(
        &self,
        session_id: u64,
        op_index: u64,
        total_ops: u64,
    ) -> Option<io::Error> {
        if let Some(full_after) = self.full_after_ops {
            if total_ops >= full_after {
                return Some(storage_full(total_ops));
            }
        }
        let h = latent(self.seed, Lane::Append, session_id, op_index);
        (unit(h) < self.append_rate).then(|| {
            io::Error::other(format!(
                "injected disk fault: append failed (session {session_id}, op {op_index})"
            ))
        })
    }

    /// The fault decision for one fsync, keyed by the 0-based sync
    /// index.
    pub fn sync_fault(&self, sync_index: u64, total_ops: u64) -> Option<io::Error> {
        if let Some(full_after) = self.full_after_ops {
            if total_ops >= full_after {
                return Some(storage_full(total_ops));
            }
        }
        let h = latent(self.seed, Lane::Sync, sync_index, 0);
        (unit(h) < self.sync_rate)
            .then(|| io::Error::other(format!("injected disk fault: fsync failed (#{sync_index})")))
    }
}

fn storage_full(total_ops: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::StorageFull,
        format!("injected disk fault: no space left on device after {total_ops} op(s)"),
    )
}

/// The two schedulable lanes, as salt.
#[derive(Debug, Clone, Copy)]
enum Lane {
    Append = 1,
    Sync = 2,
}

/// SplitMix-style avalanche over the fault key (the same construction
/// as the backend fault injector).
fn latent(seed: u64, lane: Lane, a: u64, b: u64) -> u64 {
    let mut h: u64 = 0x2545F4914F6CDD1D;
    for v in [seed, lane as u64, a, b] {
        h ^= v.wrapping_add(0x9E3779B97F4A7C15).rotate_left(17);
        h = h.wrapping_mul(0xD6E8FEB86659FD93);
        h ^= h >> 32;
    }
    h
}

/// The latent's top bits as a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_faults() {
        let cfg = DiskFaultConfig::uniform(0.0);
        assert!(!cfg.is_active());
        for session in 0..8u64 {
            for op in 0..64u64 {
                assert!(cfg.append_fault(session, op, op).is_none());
            }
        }
        assert!(cfg.sync_fault(0, 0).is_none());
    }

    #[test]
    fn schedule_is_deterministic_and_roughly_calibrated() {
        let cfg = DiskFaultConfig::uniform(0.25);
        let mut faults = 0;
        let mut calls = 0;
        for session in 0..16u64 {
            for op in 0..64u64 {
                let a = cfg.append_fault(session, op, 0).is_some();
                let b = cfg.append_fault(session, op, 0).is_some();
                assert_eq!(a, b, "schedule must be pure");
                calls += 1;
                if a {
                    faults += 1;
                }
            }
        }
        let rate = f64::from(faults) / f64::from(calls);
        assert!((0.15..0.35).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn schedule_is_interleave_independent() {
        // The decision for (session, op) must not depend on what other
        // sessions did in between — it is a pure function of its key.
        let cfg = DiskFaultConfig::uniform(0.5);
        let direct: Vec<bool> = (0..32u64)
            .map(|op| cfg.append_fault(3, op, 0).is_some())
            .collect();
        // "Interleaved" evaluation order: other sessions' draws between.
        let mut interleaved = Vec::new();
        for op in 0..32u64 {
            let _ = cfg.append_fault(7, op, 0);
            interleaved.push(cfg.append_fault(3, op, 0).is_some());
            let _ = cfg.sync_fault(op, 0);
        }
        assert_eq!(direct, interleaved);
    }

    #[test]
    fn disk_full_fires_past_the_horizon_regardless_of_rate() {
        let cfg = DiskFaultConfig {
            full_after_ops: Some(10),
            ..DiskFaultConfig::uniform(0.0)
        };
        assert!(cfg.append_fault(0, 0, 9).is_none());
        let err = cfg.append_fault(0, 0, 10).expect("full");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(cfg.sync_fault(0, 11).is_some());
    }

    #[test]
    fn env_parsing_matches_the_backend_lane() {
        let cfg = DiskFaultConfig::uniform(0.2);
        assert!((cfg.append_rate - 0.2).abs() < 1e-12);
        assert!((cfg.sync_rate - 0.2).abs() < 1e-12);
        if let Some(env_cfg) = DiskFaultConfig::from_env() {
            assert!(env_cfg.is_active());
        }
    }
}
