//! The serve daemon: listener → admission → session actor → journal.
//!
//! [`Server::bind`] builds the serving world (corpus, simulated model,
//! nearest-question index, session store, admission gate) and
//! [`Server::serve`] runs the accept loop: one OS thread per connection,
//! bounded in practice by the admission gate — a connection either holds
//! one of `max_sessions` slots, waits in the bounded queue, or is
//! rejected with a typed backpressure response within its first
//! round-trip.
//!
//! Per-connection guard rails reuse the machinery previous layers built
//! for the batch runner:
//!
//! - every request is dispatched under the process-wide panic isolation
//!   hook (`core::isolate`), so a poisoned session answers `Error` and
//!   the daemon lives;
//! - every session talks to the model through its own
//!   [`Resilient`](fisql_llm::Resilient) retry/breaker stack (reset at
//!   session open, exactly like the runner's per-case reset), so one
//!   flapping backend conversation cannot starve its neighbours;
//! - every state-changing request is journaled write-ahead to the
//!   [`SessionStore`], so a SIGKILL costs at most the in-flight round
//!   and a restart replays every session bit-identically.
//!
//! Graceful shutdown: a `Shutdown` request (or
//! [`ServerHandle::shutdown`]) closes the admission gate and flips the
//! running flag; the accept loop stops, live connections notice within
//! one socket-poll interval, finish their in-flight request, send
//! `ShuttingDown`, and drain; the store syncs; `serve` returns the final
//! [`ServeSummary`].

use super::admission::{AdmissionConfig, AdmissionGate, AdmissionSnapshot};
use super::diskfault::DiskFaultConfig;
use super::protocol::{
    deadline_expired, read_frame, read_frame_deadline, write_frame, ClientRequest, ServerResponse,
    ServerStats, PROTOCOL_VERSION,
};
use super::replicate::{notify_deposed, run_follower, run_repl_acceptor, ReplState, Role};
use super::store::{Appended, SessionOp, SessionStore, StoreOptions, StoreSnapshot};
use crate::assistant::Assistant;
use crate::config::{chaos_stack, ServeConfig};
use crate::session::{Session, SessionEvent};
use fisql_llm::{Embedding, FallibleLanguageModel, FaultyBackend, LlmConfig, Resilient, SimLlm};
use fisql_spider::{build_aep, AepConfig, Corpus, Example};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Socket poll interval: how quickly idle connections and the accept
/// loop observe shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Final serve-loop report.
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Fresh sessions opened.
    pub sessions_opened: u64,
    /// Sessions resumed from the store.
    pub sessions_resumed: u64,
    /// Feedback rounds served live (replays not counted).
    pub rounds_served: u64,
    /// Questions answered live.
    pub questions_served: u64,
    /// Requests answered with a protocol `Error`.
    pub errors: u64,
    /// Requests whose handler panicked and was contained.
    pub contained_panics: u64,
    /// Sessions degraded to memory-only by a store fault.
    pub sessions_degraded: u64,
    /// Admission-gate counters (including `reaped`).
    pub admission: AdmissionSnapshot,
    /// Session-store health at drain.
    pub store: StoreSnapshot,
    /// Sessions still holding a slot after the drain (0 on a clean
    /// drain — the survivability suites assert on it).
    pub final_active: usize,
    /// Connections still queued after the drain (0 on a clean drain).
    pub final_queued: usize,
}

#[derive(Debug, Default)]
struct ServerCounters {
    sessions_opened: AtomicU64,
    sessions_resumed: AtomicU64,
    rounds_served: AtomicU64,
    questions_served: AtomicU64,
    errors: AtomicU64,
    contained_panics: AtomicU64,
    sessions_degraded: AtomicU64,
}

/// Shared per-connection context.
struct ConnCtx {
    config: ServeConfig,
    corpus: Arc<Corpus>,
    embeddings: Arc<Vec<Embedding>>,
    assistant: Assistant,
    store: Arc<SessionStore>,
    gate: Arc<AdmissionGate>,
    running: Arc<AtomicBool>,
    aborted: Arc<AtomicBool>,
    repl: Arc<ReplState>,
    counters: Arc<ServerCounters>,
    started: Instant,
}

/// A handle for stopping a serving daemon from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    running: Arc<AtomicBool>,
    aborted: Arc<AtomicBool>,
    gate: Arc<AdmissionGate>,
    repl: Arc<ReplState>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Begins a graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.gate.close();
        self.running.store(false, Ordering::Release);
    }

    /// Kills the daemon without farewell: no `ShuttingDown` frames, no
    /// responses for in-flight requests — connections just see their
    /// socket die, exactly as a SIGKILL looks from the outside. The
    /// failover harness uses this as its deterministic in-process
    /// primary kill; the store is NOT synced beyond what write-ahead
    /// appends already flushed.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        self.gate.close();
        self.running.store(false, Ordering::Release);
    }

    /// The daemon's replication state (role, epoch, log) — the failover
    /// harness reads lag and holds shipping through this.
    pub fn repl(&self) -> &ReplState {
        &self.repl
    }

    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// The serve daemon (see the module docs).
pub struct Server {
    config: ServeConfig,
    listener: TcpListener,
    repl_listener: Option<TcpListener>,
    corpus: Arc<Corpus>,
    embeddings: Arc<Vec<Embedding>>,
    assistant: Assistant,
    store: Arc<SessionStore>,
    gate: Arc<AdmissionGate>,
    running: Arc<AtomicBool>,
    aborted: Arc<AtomicBool>,
    repl: Arc<ReplState>,
    counters: Arc<ServerCounters>,
    started: Instant,
}

impl Server {
    /// Binds the listener and builds the serving world. Opening an
    /// existing session store validates its fingerprint against this
    /// configuration and recovers its intact prefix.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr())?;
        listener.set_nonblocking(true)?;
        let corpus = Arc::new(build_aep(&AepConfig {
            n_examples: config.n_examples,
            seed: config.seed,
        }));
        let embeddings = Arc::new(
            corpus
                .examples
                .iter()
                .map(|e| Embedding::embed(&e.question))
                .collect::<Vec<_>>(),
        );
        let assistant = Assistant::for_corpus(&corpus, SimLlm::new(LlmConfig::default()), 3);
        let faults = (config.disk_fault_rate > 0.0)
            .then(|| DiskFaultConfig::uniform(config.disk_fault_rate));
        let store = Arc::new(SessionStore::open(
            config.store.as_deref(),
            StoreOptions::new(config.fingerprint())
                .fsync(config.fsync)
                .compact_every(config.compact_every)
                .faults(faults),
        )?);
        let gate = AdmissionGate::new(AdmissionConfig {
            max_sessions: config.max_sessions,
            queue_depth: config.queue_depth,
            queue_wait_ms: config.queue_wait_ms,
        });
        // Replication state exists (inert) even without replication, so
        // the serving path is identical either way. A `--replica-of`
        // daemon boots as a follower; `--repl-listen` binds the channel
        // followers connect to.
        let repl = ReplState::new(
            Arc::clone(&store),
            config.replica_of.is_some(),
            config.repl_ack,
            config.repl_ack_timeout_ms,
        );
        let repl_listener = match config.repl_listen.as_deref() {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        Ok(Server {
            config,
            listener,
            repl_listener,
            corpus,
            embeddings,
            assistant,
            store,
            gate,
            running: Arc::new(AtomicBool::new(true)),
            aborted: Arc::new(AtomicBool::new(false)),
            repl,
            counters: Arc::new(ServerCounters::default()),
            started: Instant::now(),
        })
    }

    /// The bound address (resolves `--port 0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound replication-channel address, when `--repl-listen` is
    /// set (resolves a `:0` port).
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Sessions recovered from the store at bind time that a previous
    /// daemon never saw closed.
    pub fn recovered_sessions(&self) -> Vec<u64> {
        self.store.unclosed_sessions()
    }

    /// A shutdown handle usable from another thread.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            running: Arc::clone(&self.running),
            aborted: Arc::clone(&self.aborted),
            gate: Arc::clone(&self.gate),
            repl: Arc::clone(&self.repl),
            addr: self.local_addr()?,
        })
    }

    /// Runs the accept loop until a graceful shutdown, then drains live
    /// connections, syncs the store, and reports.
    pub fn serve(mut self) -> io::Result<ServeSummary> {
        // Replication threads: an acceptor + per-follower shippers on
        // the primary side, the receive/apply loop on the follower side.
        let mut repl_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
        if let Some(listener) = self.repl_listener.take() {
            let repl = Arc::clone(&self.repl);
            let running = Arc::clone(&self.running);
            let fingerprint = self.config.fingerprint();
            repl_threads.push(std::thread::spawn(move || {
                run_repl_acceptor(listener, repl, running, fingerprint);
            }));
        }
        if let Some(primary) = self.config.replica_of.clone() {
            let repl = Arc::clone(&self.repl);
            let running = Arc::clone(&self.running);
            let fingerprint = self.config.fingerprint();
            let auto_promote = self.config.auto_promote;
            repl_threads.push(std::thread::spawn(move || {
                run_follower(&primary, &repl, &running, fingerprint, auto_promote);
            }));
        }
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while self.running.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let ctx = ConnCtx {
                        config: self.config.clone(),
                        corpus: Arc::clone(&self.corpus),
                        embeddings: Arc::clone(&self.embeddings),
                        assistant: self.assistant.clone(),
                        store: Arc::clone(&self.store),
                        gate: Arc::clone(&self.gate),
                        running: Arc::clone(&self.running),
                        aborted: Arc::clone(&self.aborted),
                        repl: Arc::clone(&self.repl),
                        counters: Arc::clone(&self.counters),
                        started: self.started,
                    };
                    workers.push(std::thread::spawn(move || {
                        let corpus = Arc::clone(&ctx.corpus);
                        // The connection thread is itself isolated: a bug
                        // in the handler kills one connection, never the
                        // daemon.
                        if crate::isolate::run_isolated(|| handle_conn(&ctx, &corpus, stream))
                            .is_err()
                        {
                            ctx.counters
                                .contained_panics
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
        }
        // Drain: the gate is closed (shutdown already did it, or a
        // handle-driven stop does it here); live handlers notice the
        // flag within one poll interval.
        self.gate.close();
        for worker in workers {
            let _ = worker.join();
        }
        for thread in repl_threads {
            let _ = thread.join();
        }
        // A chaos-degraded store may legitimately fail its final sync
        // (injected fsync fault, disk-full); the drain still reports.
        let _ = self.store.sync();
        Ok(ServeSummary {
            sessions_opened: self.counters.sessions_opened.load(Ordering::Relaxed),
            sessions_resumed: self.counters.sessions_resumed.load(Ordering::Relaxed),
            rounds_served: self.counters.rounds_served.load(Ordering::Relaxed),
            questions_served: self.counters.questions_served.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            contained_panics: self.counters.contained_panics.load(Ordering::Relaxed),
            sessions_degraded: self.counters.sessions_degraded.load(Ordering::Relaxed),
            admission: self.gate.snapshot(),
            store: self.store.snapshot(),
            final_active: self.gate.active(),
            final_queued: self.gate.waiting(),
        })
    }
}

/// The per-connection chaos stack: deterministic fault injection (rate 0
/// passes through) under retry/breaker middleware — the same stack the
/// batch evaluator runs, now scoped to one connection.
type ConnBackend = Resilient<FaultyBackend<SimLlm>>;

/// One live session hosted by a connection.
struct Hosted<'a> {
    id: u64,
    session: Session<'a>,
    backend: ConnBackend,
    example: Option<Example>,
    /// The session has lost its journal lane (disk fault) and now lives
    /// in memory only.
    degraded: bool,
    /// The replication stream position of this session's latest
    /// journaled op (0 = nothing to gate on). A quorum gate waits for
    /// followers to hold *this* position — the session's own writes —
    /// not whatever the global log tail happens to be under load.
    repl_upto: u64,
}

fn handle_conn(ctx: &ConnCtx, corpus: &Corpus, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }

    // Pre-session frames: admin requests (Shutdown/Stats/Compact) need
    // no session slot; everything else must be Hello. The idle clock
    // runs here too — a connection that never says Hello cannot pin its
    // thread forever.
    let resume = loop {
        let first = match next_request(ctx, &mut stream) {
            NextFrame::Request(request) => request,
            NextFrame::Gone => return,
            NextFrame::Idle { idle_ms } => {
                // No slot held yet; close the half-open connection.
                let _ = write_frame(&mut stream, &reaped_frame(ctx, idle_ms));
                return;
            }
        };
        match first {
            ClientRequest::Shutdown => {
                ctx.gate.close();
                ctx.running.store(false, Ordering::Release);
                let _ = write_frame(&mut stream, &ServerResponse::ShuttingDown);
                return;
            }
            ClientRequest::Stats => {
                if write_frame(&mut stream, &ServerResponse::Stats(server_stats(ctx))).is_err() {
                    return;
                }
            }
            ClientRequest::Compact => {
                if write_frame(&mut stream, &compact_response(ctx)).is_err() {
                    return;
                }
            }
            ClientRequest::Promote => {
                if write_frame(&mut stream, &promote_response(ctx)).is_err() {
                    return;
                }
            }
            ClientRequest::Hello { version, resume } => {
                if version != PROTOCOL_VERSION {
                    send_error(
                        ctx,
                        &mut stream,
                        format!(
                            "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                        ),
                    );
                    return;
                }
                // A standby follower or a fenced ex-primary does not
                // open sessions: the typed refusal is the client's
                // signal to try the next endpoint.
                if ctx.repl.refuses_sessions() {
                    let _ = write_frame(&mut stream, &fenced_frame(ctx));
                    return;
                }
                break resume;
            }
            other => {
                send_error(ctx, &mut stream, format!("expected Hello, got {other:?}"));
                return;
            }
        }
    };

    // Admission: slot, bounded queue, or typed rejection.
    let _permit = match ctx.gate.admit() {
        Ok(permit) => permit,
        Err(rejection) => {
            // An aborted (killed) daemon writes nothing — the gate is
            // closed as a side effect of the abort, but answering with
            // a typed rejection would turn "your peer died, fail over"
            // into "backpressure, give up" for the connecting client.
            if ctx.aborted.load(Ordering::Acquire) {
                return;
            }
            let (active, queued) = match &rejection {
                super::admission::Rejection::QueueFull { active, queued } => (*active, *queued),
                super::admission::Rejection::WaitExpired { active } => (*active, 0),
                super::admission::Rejection::Closed => (ctx.gate.active(), 0),
            };
            let _ = write_frame(
                &mut stream,
                &ServerResponse::Rejected {
                    reason: rejection.reason(),
                    active,
                    queued,
                },
            );
            return;
        }
    };

    // Open or replay the session. An unwritable store (disk-full) sheds
    // *new* sessions with a typed rejection — durability is gone and
    // accepting fresh work the restart would lose is worse than
    // backpressure.
    let mut hosted = match resume {
        None => {
            let (id, durability, repl_upto) = match ctx.store.open_session_tracked() {
                Ok(opened) => opened,
                Err(e) => {
                    ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = write_frame(
                        &mut stream,
                        &ServerResponse::Rejected {
                            reason: format!("session store: {e}"),
                            active: ctx.gate.active(),
                            queued: ctx.gate.waiting(),
                        },
                    );
                    return;
                }
            };
            ctx.counters.sessions_opened.fetch_add(1, Ordering::Relaxed);
            let backend = conn_backend(ctx);
            backend.begin_session();
            let mut hosted = Hosted {
                id,
                session: Session::new(
                    &corpus.databases[0],
                    ctx.assistant.clone(),
                    ctx.config.strategy,
                )
                .semantic_cache(ctx.config.semantic_cache),
                backend,
                example: None,
                degraded: false,
                repl_upto,
            };
            note_append(ctx, &mut hosted, durability);
            hosted
        }
        Some(id) => {
            let ops = ctx.store.session_ops(id);
            if ops.is_empty() {
                send_error(ctx, &mut stream, format!("unknown session {id}"));
                return;
            }
            ctx.counters
                .sessions_resumed
                .fetch_add(1, Ordering::Relaxed);
            replay_session(ctx, corpus, id, &ops)
        }
    };
    // Under quorum acks, even the Welcome (whose open was journaled)
    // waits for follower durability before the client may believe in
    // the session — gated on the open's own stream position, so a
    // resume (no new append, `repl_upto` 0) passes straight through.
    // An aborted (killed) daemon writes nothing more.
    ctx.repl.quorum_gate(hosted.repl_upto, &ctx.running);
    if ctx.aborted.load(Ordering::Acquire) {
        return;
    }
    let replayed_rounds = hosted.session.round();
    if write_frame(
        &mut stream,
        &ServerResponse::Welcome {
            session_id: hosted.id,
            replayed_rounds,
        },
    )
    .is_err()
    {
        return;
    }

    // The request loop. Idle expiry here is a reap proper: the session
    // holds a slot, so the reaper journals `Reaped`, counts it, answers
    // with a typed close frame, and lets the RAII permit return the
    // slot.
    loop {
        let request = match next_request(ctx, &mut stream) {
            NextFrame::Request(request) => request,
            NextFrame::Gone => return,
            NextFrame::Idle { idle_ms } => {
                let (durability, upto) = ctx
                    .store
                    .append_tracked(hosted.id, SessionOp::Reaped { idle_ms });
                hosted.repl_upto = hosted.repl_upto.max(upto);
                note_append(ctx, &mut hosted, durability);
                ctx.gate.note_reaped();
                let _ = write_frame(&mut stream, &reaped_frame(ctx, idle_ms));
                return;
            }
        };
        // State-changing requests journal write-ahead inside dispatch;
        // under quorum acks their responses are release-gated on
        // follower durability. The gate sits between execution and the
        // response write: the op is already durable locally AND shipped,
        // so a primary killed inside the gate loses only un-acked
        // responses — never acknowledged ones.
        let gated = matches!(
            request,
            ClientRequest::Ask { .. } | ClientRequest::Feedback { .. } | ClientRequest::Bye
        );
        let response = dispatch(ctx, corpus, &mut hosted, request);
        if gated {
            ctx.repl.quorum_gate(hosted.repl_upto, &ctx.running);
        }
        if ctx.aborted.load(Ordering::Acquire) {
            // Killed mid-request: drop the response on the floor — the
            // client must see a dead socket, not a farewell.
            return;
        }
        let last = matches!(
            response,
            ServerResponse::Goodbye { .. } | ServerResponse::ShuttingDown
        );
        if write_frame(&mut stream, &response).is_err() || last {
            return;
        }
    }
}

/// The typed close frame for an idle-reaped connection.
fn reaped_frame(ctx: &ConnCtx, idle_ms: u64) -> ServerResponse {
    ServerResponse::Reaped {
        reason: format!(
            "connection idle for {idle_ms} ms (limit {} ms); slot reclaimed",
            ctx.config.idle_timeout_ms
        ),
        idle_ms,
    }
}

/// Live daemon statistics for the `Stats` admin request.
fn server_stats(ctx: &ConnCtx) -> ServerStats {
    ServerStats {
        admission: ctx.gate.snapshot(),
        store: ctx.store.snapshot(),
        sessions_opened: ctx.counters.sessions_opened.load(Ordering::Relaxed),
        sessions_resumed: ctx.counters.sessions_resumed.load(Ordering::Relaxed),
        questions_served: ctx.counters.questions_served.load(Ordering::Relaxed),
        rounds_served: ctx.counters.rounds_served.load(Ordering::Relaxed),
        sessions_degraded: ctx.counters.sessions_degraded.load(Ordering::Relaxed),
        errors: ctx.counters.errors.load(Ordering::Relaxed),
        contained_panics: ctx.counters.contained_panics.load(Ordering::Relaxed),
        uptime_ms: ctx.started.elapsed().as_millis() as u64,
        role: ctx.repl.role(),
        epoch: ctx.repl.epoch(),
        replication_lag_records: ctx.repl.log.lag(),
        repl_followers: ctx.repl.log.followers() as u64,
        repl_records_shipped: ctx.repl.log.shipped(),
        repl_ack_timeouts: ctx.repl.ack_timeouts(),
        repl_ack_degraded: ctx.repl.ack_degraded(),
        repl_ack_degraded_entries: ctx.repl.ack_degraded_entries(),
    }
}

/// The typed write refusal a follower or fenced ex-primary answers
/// session traffic with — sent *before* any store append, so a deposed
/// node's store never diverges from the promoted one's.
fn fenced_frame(ctx: &ConnCtx) -> ServerResponse {
    let role = ctx.repl.role();
    let epoch = ctx.repl.epoch();
    let message = match role {
        Role::Follower => format!(
            "standing by as a follower (epoch {epoch}); not accepting session writes — \
             retry against the primary"
        ),
        Role::Fenced => format!(
            "write fenced: this node (epoch {epoch}) was deposed by epoch {}; \
             restart it as a follower of the new primary",
            ctx.repl.fenced_by()
        ),
        Role::Primary => format!("not accepting session writes (epoch {epoch})"),
    };
    ServerResponse::Fenced {
        role,
        epoch,
        message,
    }
}

/// Serves the `Promote` admin request: a follower (or an idle primary,
/// idempotently) bumps its epoch and starts accepting sessions; the old
/// primary is fenced best-effort. A fenced node refuses — promoting it
/// would fork history.
fn promote_response(ctx: &ConnCtx) -> ServerResponse {
    if ctx.repl.role() == Role::Primary {
        return ServerResponse::Promoted {
            epoch: ctx.repl.epoch(),
        };
    }
    match ctx.repl.promote() {
        Ok(epoch) => {
            if let Some(primary) = ctx.config.replica_of.clone() {
                let fingerprint = ctx.config.fingerprint();
                // Off-thread: the old primary may be dead, and a client
                // asking us to promote must not wait on its timeout.
                std::thread::spawn(move || notify_deposed(&primary, epoch, fingerprint));
            }
            ServerResponse::Promoted { epoch }
        }
        Err(e) => {
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            ServerResponse::Error {
                message: format!("promotion refused: {e}"),
            }
        }
    }
}

/// Runs an on-demand store compaction for the `Compact` admin request.
fn compact_response(ctx: &ConnCtx) -> ServerResponse {
    match ctx.store.compact() {
        Ok(outcome) => ServerResponse::Compacted {
            generation: outcome.generation,
            ops_before: outcome.ops_before,
            ops_after: outcome.ops_after,
            sessions_dropped: outcome.sessions_dropped,
        },
        Err(e) => {
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            ServerResponse::Error {
                message: format!("compaction failed: {e}"),
            }
        }
    }
}

/// Folds one append's durability into the session: the first degraded
/// append flips the session to memory-only, records a transcript
/// `Degraded` event, and counts it — the daemon serves on.
fn note_append(ctx: &ConnCtx, hosted: &mut Hosted<'_>, durability: Appended) {
    if let Appended::Degraded { error } = durability {
        if !hosted.degraded {
            hosted.degraded = true;
            ctx.counters
                .sessions_degraded
                .fetch_add(1, Ordering::Relaxed);
            hosted.session.transcript.push(SessionEvent::Degraded {
                round: hosted.session.round(),
                error: format!("session store degraded to memory-only: {error}"),
            });
        }
    }
}

/// Builds one connection's resilient chaos backend.
fn conn_backend(ctx: &ConnCtx) -> ConnBackend {
    chaos_stack(
        &ctx.assistant.llm,
        ctx.config.fault_rate,
        ctx.config.retry_budget,
    )
}

/// What waiting for the next frame resolved to.
enum NextFrame {
    /// A complete request arrived.
    Request(ClientRequest),
    /// The connection is over (EOF, transport/protocol error, drain).
    Gone,
    /// The idle clock expired — no complete frame within
    /// `--idle-timeout` (counting mid-frame stalls: a slowloris peer
    /// trickling bytes never completes a frame and still expires).
    Idle {
        /// Milliseconds since the last completed frame.
        idle_ms: u64,
    },
}

/// Reads the next request, polling so shutdown is observed between
/// frames. The idle clock arms per wait: it resets on every completed
/// frame and is checked both between reads (silent peer) and inside a
/// frame (trickling peer), virtual-clock style — the deadline is
/// computed once and compared, never slept against.
fn next_request(ctx: &ConnCtx, stream: &mut TcpStream) -> NextFrame {
    let armed = Instant::now();
    let deadline = (ctx.config.idle_timeout_ms > 0)
        .then(|| armed + Duration::from_millis(ctx.config.idle_timeout_ms));
    loop {
        if !ctx.running.load(Ordering::Acquire) {
            // A graceful drain says goodbye; an abort (in-process kill)
            // just drops the connection mid-conversation.
            if !ctx.aborted.load(Ordering::Acquire) {
                let _ = write_frame(stream, &ServerResponse::ShuttingDown);
            }
            return NextFrame::Gone;
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return NextFrame::Idle {
                    idle_ms: armed.elapsed().as_millis() as u64,
                };
            }
        }
        let read = match deadline {
            Some(deadline) => read_frame_deadline::<_, ClientRequest>(stream, deadline, false),
            None => read_frame::<_, ClientRequest>(stream),
        };
        match read {
            Ok(Some(request)) => return NextFrame::Request(request),
            Ok(None) => return NextFrame::Gone,
            Err(e) if deadline_expired(&e) => {
                return NextFrame::Idle {
                    idle_ms: armed.elapsed().as_millis() as u64,
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => {
                ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    stream,
                    &ServerResponse::Error {
                        message: format!("bad frame: {e}"),
                    },
                );
                return NextFrame::Gone;
            }
        }
    }
}

fn send_error(ctx: &ConnCtx, stream: &mut TcpStream, message: String) {
    ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
    let _ = write_frame(stream, &ServerResponse::Error { message });
}

/// Serves one in-session request.
fn dispatch<'a>(
    ctx: &ConnCtx,
    corpus: &'a Corpus,
    hosted: &mut Hosted<'a>,
    request: ClientRequest,
) -> ServerResponse {
    // A node fenced mid-session refuses every further write on the
    // session — the append must never happen, or the deposed store
    // diverges from the promoted follower's. Reads (Transcript, Stats)
    // still serve: they help the client re-attach elsewhere.
    if ctx.repl.fenced()
        && matches!(
            request,
            ClientRequest::Ask { .. } | ClientRequest::Feedback { .. } | ClientRequest::Bye
        )
    {
        return fenced_frame(ctx);
    }
    match request {
        ClientRequest::Ask { question } => {
            let example_idx = resolve_example(ctx, &question);
            let (durability, upto) = ctx.store.append_tracked(
                hosted.id,
                SessionOp::Ask {
                    example_idx: example_idx as u64,
                    question,
                },
            );
            hosted.repl_upto = hosted.repl_upto.max(upto);
            note_append(ctx, hosted, durability);
            let response = serve_ask(ctx, corpus, hosted, example_idx);
            if matches!(response, ServerResponse::Turn { .. }) {
                ctx.counters
                    .questions_served
                    .fetch_add(1, Ordering::Relaxed);
            }
            response
        }
        ClientRequest::Feedback { text, highlight } => {
            if !hosted.session.has_question() {
                ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
                return ServerResponse::Error {
                    message: "feedback before any question".to_string(),
                };
            }
            let (durability, upto) = ctx.store.append_tracked(
                hosted.id,
                SessionOp::Feedback {
                    text: text.clone(),
                    highlight,
                },
            );
            hosted.repl_upto = hosted.repl_upto.max(upto);
            note_append(ctx, hosted, durability);
            let response = serve_feedback(ctx, hosted, &text, highlight);
            if matches!(response, ServerResponse::Turn { .. }) {
                ctx.counters.rounds_served.fetch_add(1, Ordering::Relaxed);
            }
            response
        }
        ClientRequest::Transcript => ServerResponse::TranscriptDump {
            events: hosted.session.transcript.clone(),
        },
        ClientRequest::Bye => {
            let (durability, upto) = ctx.store.append_tracked(hosted.id, SessionOp::Closed);
            hosted.repl_upto = hosted.repl_upto.max(upto);
            note_append(ctx, hosted, durability);
            ServerResponse::Goodbye {
                rounds: feedback_turns(&hosted.session),
            }
        }
        ClientRequest::Hello { .. } => {
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            ServerResponse::Error {
                message: "session already open".to_string(),
            }
        }
        ClientRequest::Shutdown => {
            ctx.gate.close();
            ctx.running.store(false, Ordering::Release);
            ServerResponse::ShuttingDown
        }
        ClientRequest::Stats => ServerResponse::Stats(server_stats(ctx)),
        ClientRequest::Compact => compact_response(ctx),
        ClientRequest::Promote => promote_response(ctx),
    }
}

/// Runs `ask` under panic isolation and packages the turn.
fn serve_ask<'a>(
    ctx: &ConnCtx,
    corpus: &'a Corpus,
    hosted: &mut Hosted<'a>,
    example_idx: usize,
) -> ServerResponse {
    let example = corpus.examples[example_idx].clone();
    let cursor = hosted.session.events().len();
    hosted.session.db = corpus.database(&example);
    let outcome = {
        let session = &mut hosted.session;
        let example = &example;
        crate::isolate::run_isolated(|| session.ask(example))
    };
    hosted.example = Some(example);
    turn_response(ctx, hosted, cursor, outcome)
}

/// Runs one feedback round under panic isolation and packages the turn.
fn serve_feedback(
    ctx: &ConnCtx,
    hosted: &mut Hosted<'_>,
    text: &str,
    highlight: Option<fisql_sqlkit::Span>,
) -> ServerResponse {
    // The caller checked has_question(), so the example is present in
    // practice — but a typed error beats panicking a daemon thread on a
    // future call-site slip.
    let Some(example) = hosted.example.clone() else {
        ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
        return ServerResponse::Error {
            message: "feedback before any question".to_string(),
        };
    };
    let cursor = hosted.session.events().len();
    // give_feedback contains backend errors and panics internally
    // (Degraded/Crashed events), so it always returns a turn.
    let Hosted {
        session, backend, ..
    } = hosted;
    let turn = session.give_feedback(backend, &example, text, highlight);
    turn_response(ctx, hosted, cursor, Ok(turn))
}

/// Folds an isolated turn outcome into the wire response.
fn turn_response(
    ctx: &ConnCtx,
    hosted: &mut Hosted<'_>,
    cursor: usize,
    outcome: Result<crate::assistant::AssistantTurn, String>,
) -> ServerResponse {
    match outcome {
        Ok(turn) => ServerResponse::Turn {
            round: hosted.session.round(),
            sql: turn.sql_text.clone(),
            rendered: Assistant::render_turn(&turn),
            events: hosted.session.events_since(cursor).to_vec(),
        },
        Err(message) => {
            ctx.counters
                .contained_panics
                .fetch_add(1, Ordering::Relaxed);
            ServerResponse::Error {
                message: format!("request panicked (contained): {message}"),
            }
        }
    }
}

/// Reconstructs a session by replaying its journaled ops — the one code
/// path behind both client reconnects and daemon restarts. Determinism
/// of the whole pipeline makes the replayed transcript bit-identical to
/// the original; a replayed op that panics is contained and skipped,
/// exactly as the live round answered `Error` without mutating state.
fn replay_session<'a>(ctx: &ConnCtx, corpus: &'a Corpus, id: u64, ops: &[SessionOp]) -> Hosted<'a> {
    let backend = conn_backend(ctx);
    backend.begin_session();
    let mut hosted = Hosted {
        id,
        session: Session::new(
            &corpus.databases[0],
            ctx.assistant.clone(),
            ctx.config.strategy,
        )
        .semantic_cache(ctx.config.semantic_cache),
        backend,
        example: None,
        degraded: false,
        repl_upto: 0,
    };
    for op in ops {
        match op {
            SessionOp::Opened
            | SessionOp::Closed
            | SessionOp::Reaped { .. }
            | SessionOp::Checkpoint { .. }
            | SessionOp::Epoch { .. } => {}
            SessionOp::Ask { example_idx, .. } => {
                let idx = (*example_idx as usize).min(corpus.examples.len() - 1);
                let example = corpus.examples[idx].clone();
                hosted.session.db = corpus.database(&example);
                let _ = crate::isolate::run_isolated(|| hosted.session.ask(&example));
                hosted.example = Some(example);
            }
            SessionOp::Feedback { text, highlight } => {
                let Some(example) = hosted.example.clone() else {
                    continue;
                };
                let Hosted {
                    session, backend, ..
                } = &mut hosted;
                session.give_feedback(&*backend, &example, text, *highlight);
            }
        }
    }
    hosted
}

/// Resolves a question onto the corpus: exact text match first, nearest
/// embedding otherwise (both deterministic; the resolved index is
/// journaled, so replay never re-runs this).
fn resolve_example(ctx: &ConnCtx, question: &str) -> usize {
    if let Some(idx) = ctx
        .corpus
        .examples
        .iter()
        .position(|e| e.question.eq_ignore_ascii_case(question))
    {
        return idx;
    }
    let q = Embedding::embed(question);
    ctx.embeddings
        .iter()
        .enumerate()
        .max_by(|a, b| {
            q.cosine(a.1)
                .partial_cmp(&q.cosine(b.1))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map_or(0, |(i, _)| i)
}

/// Feedback turns recorded in the transcript (replayed + live).
fn feedback_turns(session: &Session<'_>) -> u64 {
    session
        .events()
        .iter()
        .filter(|e| matches!(e, SessionEvent::Feedback { .. }))
        .count() as u64
}
