//! Admission control for the serve daemon.
//!
//! The [`AdmissionGate`] bounds how much concurrent session work the
//! daemon accepts: up to `max_sessions` connections hold a session slot
//! at once, up to `queue_depth` more wait (bounded, with a wait budget)
//! for a slot to free, and everything beyond that is **rejected
//! immediately** with a typed backpressure response — the daemon sheds
//! load instead of crashing or hanging under it.
//!
//! Queueing is **FIFO by ticket**: each waiter takes a monotonically
//! increasing ticket and slots are granted strictly in ticket order. A
//! fresh arrival never barges past a queued waiter — while anyone is
//! queued, newcomers queue behind them (or are rejected when the queue
//! is full), so a slot freed under contention always goes to the
//! longest-waiting connection.
//!
//! A granted [`Permit`] is RAII: dropping it (on any path out of the
//! connection handler, including a contained panic) frees the slot and
//! wakes the queue.
//!
//! Panic posture: the production paths in this module never `unwrap()`
//! — lock poisoning is absorbed with `PoisonError::into_inner` (the
//! gate's counters stay consistent because every mutation happens
//! under the lock before any panic-prone code runs). Every `unwrap()`
//! in this file lives in `#[cfg(test)] mod tests`, where a panic *is*
//! the failure report.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sizing knobs for the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Concurrent session slots.
    pub max_sessions: usize,
    /// Connections allowed to wait for a slot.
    pub queue_depth: usize,
    /// Longest a queued connection waits before rejection, milliseconds.
    pub queue_wait_ms: u64,
}

/// Cumulative gate telemetry (atomic, monotone).
#[derive(Debug, Default)]
pub struct AdmissionStats {
    /// Admissions granted without queueing.
    pub admitted_direct: AtomicU64,
    /// Admissions granted after a queue wait.
    pub admitted_queued: AtomicU64,
    /// Rejections because the queue was full.
    pub rejected_full: AtomicU64,
    /// Rejections because the queue wait budget expired.
    pub rejected_timeout: AtomicU64,
    /// Rejections because the gate was closed (shutdown).
    pub rejected_closed: AtomicU64,
    /// Sessions whose slot was reclaimed by the idle reaper.
    pub reaped: AtomicU64,
    /// Highest concurrent-session count observed.
    pub peak_active: AtomicU64,
}

/// A snapshot of [`AdmissionStats`] counter values (serde-serializable,
/// so the `Stats` admin request can carry it over the wire).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionSnapshot {
    /// Admissions granted without queueing.
    pub admitted_direct: u64,
    /// Admissions granted after a queue wait.
    pub admitted_queued: u64,
    /// Rejections because the queue was full.
    pub rejected_full: u64,
    /// Rejections because the queue wait budget expired.
    pub rejected_timeout: u64,
    /// Rejections because the gate was closed (shutdown).
    pub rejected_closed: u64,
    /// Sessions whose slot was reclaimed by the idle reaper.
    pub reaped: u64,
    /// Highest concurrent-session count observed.
    pub peak_active: u64,
}

impl AdmissionSnapshot {
    /// All rejections, any reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_full + self.rejected_timeout + self.rejected_closed
    }

    /// All admissions, direct or queued.
    pub fn admitted(&self) -> u64 {
        self.admitted_direct + self.admitted_queued
    }
}

#[derive(Debug)]
struct GateState {
    active: usize,
    /// Waiting tickets, front = next to be served.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// The admission gate (see the module docs).
#[derive(Debug)]
pub struct AdmissionGate {
    config: AdmissionConfig,
    state: Mutex<GateState>,
    freed: Condvar,
    closed: AtomicBool,
    stats: AdmissionStats,
}

/// Why a connection was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// Cap and queue both full at arrival.
    QueueFull {
        /// Active sessions at the decision.
        active: usize,
        /// Queued connections at the decision.
        queued: usize,
    },
    /// Queued, but no slot freed within the wait budget.
    WaitExpired {
        /// Active sessions at the decision.
        active: usize,
    },
    /// The daemon is shutting down.
    Closed,
}

impl Rejection {
    /// Renders the refusal for the wire protocol.
    pub fn reason(&self) -> String {
        match self {
            Rejection::QueueFull { active, queued } => {
                format!("at capacity: {active} active session(s), {queued} queued connection(s)")
            }
            Rejection::WaitExpired { active } => {
                format!("queue wait expired with {active} active session(s)")
            }
            Rejection::Closed => "daemon is shutting down".to_string(),
        }
    }
}

impl AdmissionGate {
    /// Builds a gate.
    pub fn new(config: AdmissionConfig) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate {
            config,
            state: Mutex::new(GateState {
                active: 0,
                queue: VecDeque::new(),
                next_ticket: 0,
            }),
            freed: Condvar::new(),
            closed: AtomicBool::new(false),
            stats: AdmissionStats::default(),
        })
    }

    /// Requests a session slot: granted immediately, granted after a
    /// bounded FIFO queue wait, or rejected.
    pub fn admit(self: &Arc<Self>) -> Result<Permit, Rejection> {
        if self.closed.load(Ordering::Acquire) {
            self.stats.rejected_closed.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection::Closed);
        }
        let mut state = self.lock_state();
        // Direct admission only when nobody is queued ahead — a slot
        // freed under contention always goes to the oldest waiter.
        if state.active < self.config.max_sessions && state.queue.is_empty() {
            state.active += 1;
            self.note_active(state.active);
            self.stats.admitted_direct.fetch_add(1, Ordering::Relaxed);
            return Ok(Permit {
                gate: Arc::clone(self),
            });
        }
        if state.queue.len() >= self.config.queue_depth {
            let rejection = Rejection::QueueFull {
                active: state.active,
                queued: state.queue.len(),
            };
            drop(state);
            self.stats.rejected_full.fetch_add(1, Ordering::Relaxed);
            return Err(rejection);
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back(ticket);
        let deadline = Instant::now() + Duration::from_millis(self.config.queue_wait_ms);
        loop {
            if self.closed.load(Ordering::Acquire) {
                state.queue.retain(|t| *t != ticket);
                drop(state);
                self.stats.rejected_closed.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::Closed);
            }
            if state.queue.front() == Some(&ticket) && state.active < self.config.max_sessions {
                state.queue.pop_front();
                state.active += 1;
                self.note_active(state.active);
                self.stats.admitted_queued.fetch_add(1, Ordering::Relaxed);
                // The next ticket may also be admissible (several slots
                // freed at once): pass the wakeup along.
                self.freed.notify_all();
                return Ok(Permit {
                    gate: Arc::clone(self),
                });
            }
            let now = Instant::now();
            if now >= deadline {
                let active = state.active;
                state.queue.retain(|t| *t != ticket);
                drop(state);
                self.stats.rejected_timeout.fetch_add(1, Ordering::Relaxed);
                // A timed-out head of queue may have been blocking a
                // later admissible ticket.
                self.freed.notify_all();
                return Err(Rejection::WaitExpired { active });
            }
            let (next, _timeout) = self
                .freed
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
        }
    }

    /// Closes the gate: every current and future admission request is
    /// rejected with [`Rejection::Closed`]. Active permits drain
    /// normally.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.freed.notify_all();
    }

    /// Sessions currently holding a permit.
    pub fn active(&self) -> usize {
        self.lock_state().active
    }

    /// Connections currently queued for a slot.
    pub fn waiting(&self) -> usize {
        self.lock_state().queue.len()
    }

    /// Records one idle-reaped session (the permit itself returns via
    /// its normal RAII drop; this only counts the event).
    pub fn note_reaped(&self) {
        self.stats.reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the cumulative counters.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        AdmissionSnapshot {
            admitted_direct: self.stats.admitted_direct.load(Ordering::Relaxed),
            admitted_queued: self.stats.admitted_queued.load(Ordering::Relaxed),
            rejected_full: self.stats.rejected_full.load(Ordering::Relaxed),
            rejected_timeout: self.stats.rejected_timeout.load(Ordering::Relaxed),
            rejected_closed: self.stats.rejected_closed.load(Ordering::Relaxed),
            reaped: self.stats.reaped.load(Ordering::Relaxed),
            peak_active: self.stats.peak_active.load(Ordering::Relaxed),
        }
    }

    fn note_active(&self, active: usize) {
        self.stats
            .peak_active
            .fetch_max(active as u64, Ordering::Relaxed);
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A held session slot; dropping it frees the slot and wakes the queue.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<AdmissionGate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut state = self.gate.lock_state();
        state.active = state.active.saturating_sub(1);
        drop(state);
        // notify_all, not notify_one: only the head ticket may take the
        // slot, and the head is whichever waiter holds it — everyone
        // re-checks, exactly one admits.
        self.gate.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn gate(max: usize, queue: usize, wait_ms: u64) -> Arc<AdmissionGate> {
        AdmissionGate::new(AdmissionConfig {
            max_sessions: max,
            queue_depth: queue,
            queue_wait_ms: wait_ms,
        })
    }

    /// Spawns a waiter and blocks until it is actually queued.
    fn spawn_queued(
        gate: &Arc<AdmissionGate>,
        expect_queued: usize,
    ) -> thread::JoinHandle<Result<Permit, Rejection>> {
        let g = Arc::clone(gate);
        let handle = thread::spawn(move || g.admit());
        let deadline = Instant::now() + Duration::from_secs(10);
        while gate.waiting() < expect_queued {
            assert!(Instant::now() < deadline, "waiter never queued");
            thread::sleep(Duration::from_millis(2));
        }
        handle
    }

    #[test]
    fn admits_up_to_cap_then_rejects_past_queue() {
        let gate = gate(2, 1, 50);
        let p1 = gate.admit().unwrap();
        let p2 = gate.admit().unwrap();
        assert_eq!(gate.active(), 2);
        // Queue slot: a waiter that times out.
        let waiter = spawn_queued(&gate, 1);
        match gate.admit() {
            Err(Rejection::QueueFull { active, queued }) => {
                assert_eq!(active, 2);
                assert_eq!(queued, 1);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert!(matches!(
            waiter.join().unwrap(),
            Err(Rejection::WaitExpired { .. })
        ));
        drop(p1);
        drop(p2);
        let snap = gate.snapshot();
        assert_eq!(snap.admitted(), 2);
        assert_eq!(snap.rejected(), 2);
        assert_eq!(snap.peak_active, 2);
    }

    #[test]
    fn queued_waiter_gets_the_freed_slot() {
        let gate = gate(1, 4, 5_000);
        let permit = gate.admit().unwrap();
        let waiter = spawn_queued(&gate, 1);
        drop(permit);
        drop(waiter.join().unwrap().unwrap());
        let snap = gate.snapshot();
        assert_eq!(snap.admitted_queued, 1);
        assert_eq!(snap.rejected(), 0);
    }

    #[test]
    fn queued_waiters_are_served_in_fifo_order() {
        // One slot, four waiters enqueued in a known order (each is
        // observed in the queue before the next spawns). Slots must be
        // granted in exactly that order — ticket FIFO, no barging.
        let gate = gate(1, 8, 30_000);
        let first = gate.admit().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let waiters: Vec<_> = (0..4usize)
            .map(|i| {
                let g = Arc::clone(&gate);
                let order = Arc::clone(&order);
                let handle = thread::spawn(move || {
                    let permit = g.admit().expect("queued waiter admitted");
                    order.lock().unwrap().push(i);
                    // Hold briefly so the next grant is observably later.
                    thread::sleep(Duration::from_millis(5));
                    drop(permit);
                });
                let deadline = Instant::now() + Duration::from_secs(10);
                while gate.waiting() < i + 1 {
                    assert!(Instant::now() < deadline, "waiter {i} never queued");
                    thread::sleep(Duration::from_millis(2));
                }
                handle
            })
            .collect();
        // A newcomer while the queue is non-empty must not barge even
        // though... the cap is full anyway; it joins the back.
        drop(first);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3], "not FIFO");
        assert_eq!(gate.snapshot().admitted_queued, 4);
    }

    #[test]
    fn no_barging_while_the_queue_is_occupied() {
        // Slot free-able, one queued waiter: a newcomer must queue
        // behind it, not snatch the freed slot.
        let gate = gate(1, 8, 30_000);
        let holder = gate.admit().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let spawn_recorder = |tag: u32, expect_queued: usize| {
            let g = Arc::clone(&gate);
            let order = Arc::clone(&order);
            let handle = thread::spawn(move || {
                let permit = g.admit().expect("admitted");
                order.lock().unwrap().push(tag);
                thread::sleep(Duration::from_millis(5));
                drop(permit);
            });
            let deadline = Instant::now() + Duration::from_secs(10);
            while gate.waiting() < expect_queued {
                assert!(Instant::now() < deadline, "waiter {tag} never queued");
                thread::sleep(Duration::from_millis(2));
            }
            handle
        };
        let early = spawn_recorder(1, 1);
        let late = spawn_recorder(2, 2);
        drop(holder);
        early.join().unwrap();
        late.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec![1, 2], "newcomer barged");
    }

    #[test]
    fn rejected_timeout_accounting_is_exact_under_contention() {
        // One slot held for the whole test; K waiters queue and ALL must
        // time out — rejected_timeout == K exactly, no double counts,
        // and the queue is empty afterwards.
        const K: usize = 6;
        let gate = gate(1, K, 120);
        let _holder = gate.admit().unwrap();
        let waiters: Vec<_> = (0..K)
            .map(|i| {
                let handle = {
                    let g = Arc::clone(&gate);
                    thread::spawn(move || g.admit())
                };
                let deadline = Instant::now() + Duration::from_secs(10);
                while gate.waiting() < i + 1 {
                    assert!(Instant::now() < deadline, "waiter never queued");
                    thread::sleep(Duration::from_millis(2));
                }
                handle
            })
            .collect();
        // Queue is at depth: one more arrival is a full rejection.
        assert!(matches!(gate.admit(), Err(Rejection::QueueFull { .. })));
        for w in waiters {
            assert!(matches!(
                w.join().unwrap(),
                Err(Rejection::WaitExpired { active: 1 })
            ));
        }
        let snap = gate.snapshot();
        assert_eq!(snap.rejected_timeout, K as u64, "exact timeout count");
        assert_eq!(snap.rejected_full, 1);
        assert_eq!(snap.admitted_queued, 0);
        assert_eq!(gate.waiting(), 0, "timed-out tickets must leave the queue");
    }

    #[test]
    fn close_rejects_waiters_and_newcomers() {
        let gate = gate(1, 4, 5_000);
        let _permit = gate.admit().unwrap();
        let waiter = spawn_queued(&gate, 1);
        gate.close();
        assert!(matches!(waiter.join().unwrap(), Err(Rejection::Closed)));
        assert!(matches!(gate.admit(), Err(Rejection::Closed)));
        assert_eq!(gate.waiting(), 0);
    }

    #[test]
    fn permits_release_under_panic_via_drop() {
        let gate = gate(1, 0, 10);
        let g = Arc::clone(&gate);
        let _ = thread::spawn(move || {
            let _permit = g.admit().unwrap();
            panic!("handler bug");
        })
        .join();
        assert_eq!(gate.active(), 0, "panicked holder must free its slot");
        gate.admit().unwrap();
    }

    #[test]
    fn reap_counter_is_independent_of_the_permit_lifecycle() {
        let gate = gate(2, 0, 10);
        let p = gate.admit().unwrap();
        gate.note_reaped();
        drop(p);
        let snap = gate.snapshot();
        assert_eq!(snap.reaped, 1);
        assert_eq!(snap.admitted(), 1);
        assert_eq!(gate.active(), 0);
    }
}
