//! Admission control for the serve daemon.
//!
//! The [`AdmissionGate`] bounds how much concurrent session work the
//! daemon accepts: up to `max_sessions` connections hold a session slot
//! at once, up to `queue_depth` more wait (bounded, with a wait budget)
//! for a slot to free, and everything beyond that is **rejected
//! immediately** with a typed backpressure response — the daemon sheds
//! load instead of crashing or hanging under it.
//!
//! A granted [`Permit`] is RAII: dropping it (on any path out of the
//! connection handler, including a contained panic) frees the slot and
//! wakes one queued waiter.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sizing knobs for the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Concurrent session slots.
    pub max_sessions: usize,
    /// Connections allowed to wait for a slot.
    pub queue_depth: usize,
    /// Longest a queued connection waits before rejection, milliseconds.
    pub queue_wait_ms: u64,
}

/// Cumulative gate telemetry (atomic, monotone).
#[derive(Debug, Default)]
pub struct AdmissionStats {
    /// Admissions granted without queueing.
    pub admitted_direct: AtomicU64,
    /// Admissions granted after a queue wait.
    pub admitted_queued: AtomicU64,
    /// Rejections because the queue was full.
    pub rejected_full: AtomicU64,
    /// Rejections because the queue wait budget expired.
    pub rejected_timeout: AtomicU64,
    /// Rejections because the gate was closed (shutdown).
    pub rejected_closed: AtomicU64,
    /// Highest concurrent-session count observed.
    pub peak_active: AtomicU64,
}

/// A snapshot of [`AdmissionStats`] counter values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Admissions granted without queueing.
    pub admitted_direct: u64,
    /// Admissions granted after a queue wait.
    pub admitted_queued: u64,
    /// Rejections because the queue was full.
    pub rejected_full: u64,
    /// Rejections because the queue wait budget expired.
    pub rejected_timeout: u64,
    /// Rejections because the gate was closed (shutdown).
    pub rejected_closed: u64,
    /// Highest concurrent-session count observed.
    pub peak_active: u64,
}

impl AdmissionSnapshot {
    /// All rejections, any reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_full + self.rejected_timeout + self.rejected_closed
    }

    /// All admissions, direct or queued.
    pub fn admitted(&self) -> u64 {
        self.admitted_direct + self.admitted_queued
    }
}

#[derive(Debug)]
struct GateState {
    active: usize,
    waiting: usize,
}

/// The admission gate (see the module docs).
#[derive(Debug)]
pub struct AdmissionGate {
    config: AdmissionConfig,
    state: Mutex<GateState>,
    freed: Condvar,
    closed: AtomicBool,
    stats: AdmissionStats,
}

/// Why a connection was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// Cap and queue both full at arrival.
    QueueFull {
        /// Active sessions at the decision.
        active: usize,
        /// Queued connections at the decision.
        queued: usize,
    },
    /// Queued, but no slot freed within the wait budget.
    WaitExpired {
        /// Active sessions at the decision.
        active: usize,
    },
    /// The daemon is shutting down.
    Closed,
}

impl Rejection {
    /// Renders the refusal for the wire protocol.
    pub fn reason(&self) -> String {
        match self {
            Rejection::QueueFull { active, queued } => {
                format!("at capacity: {active} active session(s), {queued} queued connection(s)")
            }
            Rejection::WaitExpired { active } => {
                format!("queue wait expired with {active} active session(s)")
            }
            Rejection::Closed => "daemon is shutting down".to_string(),
        }
    }
}

impl AdmissionGate {
    /// Builds a gate.
    pub fn new(config: AdmissionConfig) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate {
            config,
            state: Mutex::new(GateState {
                active: 0,
                waiting: 0,
            }),
            freed: Condvar::new(),
            closed: AtomicBool::new(false),
            stats: AdmissionStats::default(),
        })
    }

    /// Requests a session slot: granted immediately, granted after a
    /// bounded queue wait, or rejected.
    pub fn admit(self: &Arc<Self>) -> Result<Permit, Rejection> {
        if self.closed.load(Ordering::Acquire) {
            self.stats.rejected_closed.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection::Closed);
        }
        let mut state = self.lock_state();
        if state.active < self.config.max_sessions {
            state.active += 1;
            self.note_active(state.active);
            self.stats.admitted_direct.fetch_add(1, Ordering::Relaxed);
            return Ok(Permit {
                gate: Arc::clone(self),
            });
        }
        if state.waiting >= self.config.queue_depth {
            let rejection = Rejection::QueueFull {
                active: state.active,
                queued: state.waiting,
            };
            drop(state);
            self.stats.rejected_full.fetch_add(1, Ordering::Relaxed);
            return Err(rejection);
        }
        state.waiting += 1;
        let deadline = Instant::now() + Duration::from_millis(self.config.queue_wait_ms);
        loop {
            if self.closed.load(Ordering::Acquire) {
                state.waiting -= 1;
                drop(state);
                self.stats.rejected_closed.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::Closed);
            }
            if state.active < self.config.max_sessions {
                state.active += 1;
                state.waiting -= 1;
                self.note_active(state.active);
                self.stats.admitted_queued.fetch_add(1, Ordering::Relaxed);
                return Ok(Permit {
                    gate: Arc::clone(self),
                });
            }
            let now = Instant::now();
            if now >= deadline {
                let active = state.active;
                state.waiting -= 1;
                drop(state);
                self.stats.rejected_timeout.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::WaitExpired { active });
            }
            let (next, _timeout) = self
                .freed
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
        }
    }

    /// Closes the gate: every current and future admission request is
    /// rejected with [`Rejection::Closed`]. Active permits drain
    /// normally.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.freed.notify_all();
    }

    /// Sessions currently holding a permit.
    pub fn active(&self) -> usize {
        self.lock_state().active
    }

    /// Snapshot of the cumulative counters.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        AdmissionSnapshot {
            admitted_direct: self.stats.admitted_direct.load(Ordering::Relaxed),
            admitted_queued: self.stats.admitted_queued.load(Ordering::Relaxed),
            rejected_full: self.stats.rejected_full.load(Ordering::Relaxed),
            rejected_timeout: self.stats.rejected_timeout.load(Ordering::Relaxed),
            rejected_closed: self.stats.rejected_closed.load(Ordering::Relaxed),
            peak_active: self.stats.peak_active.load(Ordering::Relaxed),
        }
    }

    fn note_active(&self, active: usize) {
        self.stats
            .peak_active
            .fetch_max(active as u64, Ordering::Relaxed);
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A held session slot; dropping it frees the slot and wakes a waiter.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<AdmissionGate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut state = self.gate.lock_state();
        state.active = state.active.saturating_sub(1);
        drop(state);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn gate(max: usize, queue: usize, wait_ms: u64) -> Arc<AdmissionGate> {
        AdmissionGate::new(AdmissionConfig {
            max_sessions: max,
            queue_depth: queue,
            queue_wait_ms: wait_ms,
        })
    }

    #[test]
    fn admits_up_to_cap_then_rejects_past_queue() {
        let gate = gate(2, 1, 50);
        let p1 = gate.admit().unwrap();
        let p2 = gate.admit().unwrap();
        assert_eq!(gate.active(), 2);
        // Queue slot: a waiter that times out.
        let g = Arc::clone(&gate);
        let waiter = thread::spawn(move || g.admit());
        // Let the waiter enqueue, then overflow the queue.
        thread::sleep(Duration::from_millis(10));
        match gate.admit() {
            Err(Rejection::QueueFull { active, queued }) => {
                assert_eq!(active, 2);
                assert_eq!(queued, 1);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert!(matches!(
            waiter.join().unwrap(),
            Err(Rejection::WaitExpired { .. })
        ));
        drop(p1);
        drop(p2);
        let snap = gate.snapshot();
        assert_eq!(snap.admitted(), 2);
        assert_eq!(snap.rejected(), 2);
        assert_eq!(snap.peak_active, 2);
    }

    #[test]
    fn queued_waiter_gets_the_freed_slot() {
        let gate = gate(1, 4, 5_000);
        let permit = gate.admit().unwrap();
        let g = Arc::clone(&gate);
        let waiter = thread::spawn(move || g.admit().map(drop));
        thread::sleep(Duration::from_millis(20));
        drop(permit);
        waiter.join().unwrap().unwrap();
        let snap = gate.snapshot();
        assert_eq!(snap.admitted_queued, 1);
        assert_eq!(snap.rejected(), 0);
    }

    #[test]
    fn close_rejects_waiters_and_newcomers() {
        let gate = gate(1, 4, 5_000);
        let _permit = gate.admit().unwrap();
        let g = Arc::clone(&gate);
        let waiter = thread::spawn(move || g.admit().map(|_| ()));
        thread::sleep(Duration::from_millis(20));
        gate.close();
        assert!(matches!(waiter.join().unwrap(), Err(Rejection::Closed)));
        assert!(matches!(gate.admit(), Err(Rejection::Closed)));
    }

    #[test]
    fn permits_release_under_panic_via_drop() {
        let gate = gate(1, 0, 10);
        let g = Arc::clone(&gate);
        let _ = thread::spawn(move || {
            let _permit = g.admit().unwrap();
            panic!("handler bug");
        })
        .join();
        assert_eq!(gate.active(), 0, "panicked holder must free its slot");
        gate.admit().unwrap();
    }
}
