//! The serve wire protocol: length-prefixed JSON frames.
//!
//! Every message is one frame — `len u32 LE | json` — carrying a
//! [`ClientRequest`] or [`ServerResponse`]. JSON keeps the protocol
//! debuggable (`nc` + a hand-built frame works) and reuses the exact
//! [`SessionEvent`] serialization the session store journals, so what a
//! client receives over the wire is bit-identical to what a restart
//! replay reconstructs.
//!
//! A conversation:
//!
//! ```text
//! C: Hello { version: 1, resume: None }
//! S: Welcome { session_id: 7, replayed_rounds: 0 }
//! C: Ask { question: "how many audiences were created in January?" }
//! S: Turn { round: 0, sql: "SELECT ...", rendered: "...", events: [...] }
//! C: Feedback { text: "we are in 2024", highlight: None }
//! S: Turn { round: 1, sql: "SELECT ...", rendered: "...", events: [...] }
//! C: Bye
//! S: Goodbye { rounds: 1 }
//! ```

use super::admission::AdmissionSnapshot;
use super::store::StoreSnapshot;
use crate::session::SessionEvent;
use fisql_sqlkit::Span;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::time::Instant;

/// Protocol version; a mismatched client is refused at `Hello`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Frames larger than this are refused — no legitimate message
/// approaches it, and it bounds what a bad client can make the server
/// buffer.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// One client → server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientRequest {
    /// Opens (or, with `resume`, replays) a session. Must be the first
    /// request on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
        /// A previously issued session id to resume from the session
        /// store, or `None` for a fresh session.
        resume: Option<u64>,
    },
    /// Asks a natural-language question. The server resolves it onto the
    /// bundled corpus (exact match first, nearest-embedding otherwise).
    Ask {
        /// The question text.
        question: String,
    },
    /// Sends feedback on the previously shown SQL.
    Feedback {
        /// The feedback utterance.
        text: String,
        /// Optional highlight over the rendered SQL.
        highlight: Option<Span>,
    },
    /// Requests the full typed transcript of this session.
    Transcript,
    /// Closes the session (the connection follows).
    Bye,
    /// Asks the daemon to shut down gracefully: stop accepting, drain
    /// live sessions, sync the store, exit. Does not require a session.
    Shutdown,
    /// Asks for live daemon statistics (admission counters, store
    /// health, served-work totals, uptime). Does not require a session.
    Stats,
    /// Asks the daemon to compact its session store now (drop closed and
    /// reaped sessions' history, bump the generation). Does not require
    /// a session.
    Compact,
    /// Asks a standby follower to promote itself to primary: bump and
    /// persist the fencing epoch, start accepting sessions, and fence
    /// the old primary (see `serve::replicate`). Does not require a
    /// session. A node that is already primary answers with its current
    /// epoch; a fenced node refuses.
    Promote,
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerResponse {
    /// The session is open.
    Welcome {
        /// Id under which the session is journaled (quote it in a later
        /// `Hello { resume }` to pick the conversation back up).
        session_id: u64,
        /// Feedback rounds replayed from the store (0 for a fresh
        /// session).
        replayed_rounds: u64,
    },
    /// Admission control refused the connection (cap + queue exhausted,
    /// queue wait expired, or the daemon is shutting down).
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
        /// Sessions active when the decision was made.
        active: usize,
        /// Connections queued when the decision was made.
        queued: usize,
    },
    /// One Assistant turn (answer to `Ask` or `Feedback`).
    Turn {
        /// Feedback rounds completed so far on this question.
        round: u64,
        /// The SQL now on the table.
        sql: String,
        /// The rendered chat bubble.
        rendered: String,
        /// The typed events this turn appended to the transcript.
        events: Vec<SessionEvent>,
    },
    /// The full typed transcript (answer to `Transcript`).
    TranscriptDump {
        /// Every event so far, in order.
        events: Vec<SessionEvent>,
    },
    /// The session is closed (answer to `Bye`).
    Goodbye {
        /// Feedback rounds taken over the whole connection.
        rounds: u64,
    },
    /// The daemon acknowledged `Shutdown` and is draining.
    ShuttingDown,
    /// The idle reaper reclaimed this session's slot: the connection was
    /// silent past the daemon's `--idle-timeout`. The session stays
    /// resumable (`Hello { resume }`) until the next compaction; the
    /// connection closes after this frame.
    Reaped {
        /// Human-readable reason (mirrors `Rejected`).
        reason: String,
        /// How long the connection had been idle, milliseconds.
        idle_ms: u64,
    },
    /// Live daemon statistics (answer to `Stats`).
    Stats(ServerStats),
    /// The store was compacted (answer to `Compact`).
    Compacted {
        /// The store's new compaction generation.
        generation: u64,
        /// Ops held before the rewrite.
        ops_before: u64,
        /// Ops kept (surviving sessions only).
        ops_after: u64,
        /// Sessions whose history was dropped.
        sessions_dropped: u64,
    },
    /// This node is not accepting session writes: it is a standby
    /// follower, or an ex-primary fenced by a higher epoch. The typed
    /// refusal is what keeps a deposed primary from silently diverging
    /// its store — clients take it as the signal to fail over.
    Fenced {
        /// The node's current role.
        role: super::replicate::Role,
        /// The node's fencing epoch.
        epoch: u64,
        /// Human-readable explanation.
        message: String,
    },
    /// The node promoted itself to primary (answer to `Promote`).
    Promoted {
        /// The fencing epoch the node now serves at.
        epoch: u64,
    },
    /// The request could not be served; the session (when one exists)
    /// is still alive.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// A live view of the daemon, carried by [`ServerResponse::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Admission-gate counters (slots, queue, rejections, reaps).
    pub admission: AdmissionSnapshot,
    /// Session-store health (ops held, generation, fault counters,
    /// writability).
    pub store: StoreSnapshot,
    /// Fresh sessions opened since the daemon started.
    pub sessions_opened: u64,
    /// Sessions resumed from the store.
    pub sessions_resumed: u64,
    /// Questions answered live.
    pub questions_served: u64,
    /// Feedback rounds served live — the daemon's "uptime rounds".
    pub rounds_served: u64,
    /// Sessions degraded to memory-only by a store fault.
    pub sessions_degraded: u64,
    /// Requests answered with a protocol `Error`.
    pub errors: u64,
    /// Requests whose handler panicked and was contained.
    pub contained_panics: u64,
    /// Wall-clock since the daemon bound its listener, milliseconds.
    pub uptime_ms: u64,
    /// Replication role (primary even when replication is unused).
    pub role: super::replicate::Role,
    /// Fencing epoch (0 = this lineage was never promoted).
    pub epoch: u64,
    /// Records the slowest connected follower has not yet acknowledged
    /// (0 with no followers).
    pub replication_lag_records: u64,
    /// Followers currently attached to the replication channel.
    pub repl_followers: u64,
    /// Records shipped to followers since the daemon started.
    pub repl_records_shipped: u64,
    /// Responses released because the follower-ack wait timed out
    /// (quorum mode only; each one is durability the client believed in
    /// but a follower never confirmed).
    pub repl_ack_timeouts: u64,
    /// Quorum acking is currently degraded to counted-async: zero
    /// followers are connected and a full ack wait already expired, so
    /// responses release immediately (each still counted in
    /// `repl_ack_timeouts`) until a follower reconnects.
    #[serde(default)]
    pub repl_ack_degraded: bool,
    /// Times the quorum gate entered degraded-async (follower-less)
    /// operation since the daemon started.
    #[serde(default)]
    pub repl_ack_degraded_entries: u64,
}

/// Writes one frame.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, message: &T) -> io::Result<()> {
    let json = serde_json::to_vec(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if json.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", json.len()),
        ));
    }
    // Infallible: json.len() <= MAX_FRAME_LEN (4 MiB) was checked above,
    // far inside u32 range.
    let len = u32::try_from(json.len()).expect("frame fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&json)?;
    w.flush()
}

/// Reads one frame (blocking until a full frame arrives or the peer
/// closes). Returns `Ok(None)` on a clean EOF *before* any frame byte.
pub fn read_frame<R: Read, T: serde::de::DeserializeOwned>(r: &mut R) -> io::Result<Option<T>> {
    read_frame_inner(r, None, false)
}

/// Like [`read_frame`], but bounded by a wall-clock deadline: once it
/// passes, the read fails with a [`deadline_expired`] error instead of
/// retrying forever. This is what defeats slowloris clients — a peer
/// trickling one byte per poll interval keeps the plain mid-frame retry
/// loop alive indefinitely, but cannot outlast a deadline.
///
/// The socket must have a read timeout set (the poll tick); the deadline
/// is only checked when a read comes back empty-handed. With
/// `wait_for_first` the reader also waits for the *first* byte until the
/// deadline (client style: one bounded call per expected response);
/// without it, an empty-handed poll before any frame byte surfaces as
/// `WouldBlock`/`TimedOut` so the caller can interleave its own checks
/// (server style: shutdown flag, idle clock).
pub fn read_frame_deadline<R: Read, T: serde::de::DeserializeOwned>(
    r: &mut R,
    deadline: Instant,
    wait_for_first: bool,
) -> io::Result<Option<T>> {
    read_frame_inner(r, Some(deadline), wait_for_first)
}

/// Marker message for deadline expiry (see [`deadline_expired`]).
const DEADLINE_MARKER: &str = "read deadline elapsed";

/// Whether an error from [`read_frame_deadline`] means the deadline
/// passed (as opposed to a poll-tick timeout or a real transport error).
pub fn deadline_expired(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::TimedOut && e.to_string().contains(DEADLINE_MARKER)
}

fn read_frame_inner<R: Read, T: serde::de::DeserializeOwned>(
    r: &mut R,
    deadline: Option<Instant>,
    wait_for_first: bool,
) -> io::Result<Option<T>> {
    let mut header = [0u8; 4];
    match read_full(r, &mut header, false, deadline, wait_for_first)? {
        0 => return Ok(None),
        4 => {}
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame-header",
            ))
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (max {MAX_FRAME_LEN})"),
        ));
    }
    let mut body = vec![0u8; len];
    if read_full(r, &mut body, true, deadline, wait_for_first)? != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame-body",
        ));
    }
    serde_json::from_slice(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Reads until `buf` is full or EOF; retries through timeout-style
/// errors once a frame has started (the server polls its sockets with a
/// read timeout so it can observe shutdown, and a frame must never be
/// torn by that poll). `frame_started` marks reads that are always
/// mid-frame (the body follows its header); an empty-handed header read
/// instead surfaces its timeout to the caller — unless `wait_for_first`
/// asks to keep waiting — which is how the server regains control
/// between requests. With a `deadline`, every retry first checks the
/// clock and fails with [`DEADLINE_MARKER`] once it has passed, so a
/// trickling or stalled peer cannot pin the reader.
fn read_full<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    frame_started: bool,
    deadline: Option<Instant>,
    wait_for_first: bool,
) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if (filled > 0 || frame_started || wait_for_first)
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                // Empty-handed or mid-frame poll timeout: fall through
                // to the deadline check, then keep reading.
            }
            Err(e) => return Err(e),
        }
        // The clock is checked after EVERY incomplete read attempt, not
        // only empty-handed ones — a slowloris peer that lands one byte
        // per poll tick never goes empty-handed and must still expire.
        if filled < buf.len() {
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, DEADLINE_MARKER));
                }
            }
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let requests = vec![
            ClientRequest::Hello {
                version: PROTOCOL_VERSION,
                resume: Some(9),
            },
            ClientRequest::Ask {
                question: "how many?".into(),
            },
            ClientRequest::Feedback {
                text: "we are in 2024".into(),
                highlight: None,
            },
            ClientRequest::Transcript,
            ClientRequest::Bye,
            ClientRequest::Shutdown,
        ];
        let mut wire = Vec::new();
        for r in &requests {
            write_frame(&mut wire, r).unwrap();
        }
        let mut cursor = &wire[..];
        let mut back = Vec::new();
        while let Some(r) = read_frame::<_, ClientRequest>(&mut cursor).unwrap() {
            back.push(r);
        }
        assert_eq!(back, requests);
    }

    #[test]
    fn responses_roundtrip() {
        let responses = vec![
            ServerResponse::Welcome {
                session_id: 3,
                replayed_rounds: 2,
            },
            ServerResponse::Rejected {
                reason: "at capacity".into(),
                active: 32,
                queued: 16,
            },
            ServerResponse::Turn {
                round: 1,
                sql: "SELECT 1".into(),
                rendered: "Assistant>".into(),
                events: vec![crate::session::SessionEvent::User("hi".into())],
            },
            ServerResponse::ShuttingDown,
            ServerResponse::Goodbye { rounds: 4 },
        ];
        let mut wire = Vec::new();
        for r in &responses {
            write_frame(&mut wire, r).unwrap();
        }
        let mut cursor = &wire[..];
        for want in &responses {
            let got: ServerResponse = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn oversized_and_torn_frames_are_errors() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::try_from(MAX_FRAME_LEN + 1).unwrap().to_le_bytes());
        let mut cursor = &wire[..];
        assert!(read_frame::<_, ClientRequest>(&mut cursor).is_err());

        let mut torn = Vec::new();
        write_frame(&mut torn, &ClientRequest::Bye).unwrap();
        torn.truncate(torn.len() - 1);
        let mut cursor = &torn[..];
        assert!(read_frame::<_, ClientRequest>(&mut cursor).is_err());
    }

    #[test]
    fn clean_eof_before_a_frame_is_none() {
        let wire: Vec<u8> = Vec::new();
        let mut cursor = &wire[..];
        assert_eq!(read_frame::<_, ClientRequest>(&mut cursor).unwrap(), None);
    }

    #[test]
    fn admin_frames_roundtrip() {
        let requests = vec![ClientRequest::Stats, ClientRequest::Compact];
        let mut wire = Vec::new();
        for r in &requests {
            write_frame(&mut wire, r).unwrap();
        }
        let mut cursor = &wire[..];
        let mut back = Vec::new();
        while let Some(r) = read_frame::<_, ClientRequest>(&mut cursor).unwrap() {
            back.push(r);
        }
        assert_eq!(back, requests);

        let responses = vec![
            ServerResponse::Reaped {
                reason: "idle past 500 ms".into(),
                idle_ms: 512,
            },
            ServerResponse::Stats(ServerStats {
                rounds_served: 9,
                uptime_ms: 1234,
                ..ServerStats::default()
            }),
            ServerResponse::Compacted {
                generation: 2,
                ops_before: 40,
                ops_after: 6,
                sessions_dropped: 7,
            },
        ];
        let mut wire = Vec::new();
        for r in &responses {
            write_frame(&mut wire, r).unwrap();
        }
        let mut cursor = &wire[..];
        for want in &responses {
            let got: ServerResponse = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, want);
        }
    }

    /// A reader that trickles one byte per call, answering `WouldBlock`
    /// in between — a slowloris peer as the frame reader sees it.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        starved: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.starved = !self.starved;
            if self.starved {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "poll tick"));
            }
            if self.pos >= self.data.len() || buf.is_empty() {
                // Out of scripted bytes: stall forever.
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stall"));
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn deadline_bounds_a_mid_frame_stall() {
        // A frame header arrives, then the peer stalls: the deadline
        // read must fail with the marker instead of spinning forever.
        let mut wire = Vec::new();
        write_frame(&mut wire, &ClientRequest::Bye).unwrap();
        wire.truncate(6); // header + 2 body bytes, then silence
        let mut peer = Trickle {
            data: wire,
            pos: 0,
            starved: false,
        };
        let deadline = Instant::now() + std::time::Duration::from_millis(30);
        let err = read_frame_deadline::<_, ClientRequest>(&mut peer, deadline, true)
            .expect_err("stalled mid-frame read must expire");
        assert!(deadline_expired(&err), "{err}");
    }

    #[test]
    fn deadline_read_still_completes_a_slow_but_live_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &ClientRequest::Bye).unwrap();
        let mut peer = Trickle {
            data: wire,
            pos: 0,
            starved: false,
        };
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        let got: Option<ClientRequest> =
            read_frame_deadline(&mut peer, deadline, true).expect("live trickle completes");
        assert_eq!(got, Some(ClientRequest::Bye));
    }

    #[test]
    fn without_wait_for_first_an_empty_poll_surfaces() {
        // Server style: an empty-handed poll tick before any frame byte
        // must surface (the caller checks its shutdown flag and idle
        // clock), not be swallowed by the deadline loop.
        struct AlwaysBlock;
        impl Read for AlwaysBlock {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "poll tick"))
            }
        }
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        let err = read_frame_deadline::<_, ClientRequest>(&mut AlwaysBlock, deadline, false)
            .expect_err("must surface the poll tick");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(!deadline_expired(&err));
    }
}
