//! The serve wire protocol: length-prefixed JSON frames.
//!
//! Every message is one frame — `len u32 LE | json` — carrying a
//! [`ClientRequest`] or [`ServerResponse`]. JSON keeps the protocol
//! debuggable (`nc` + a hand-built frame works) and reuses the exact
//! [`SessionEvent`] serialization the session store journals, so what a
//! client receives over the wire is bit-identical to what a restart
//! replay reconstructs.
//!
//! A conversation:
//!
//! ```text
//! C: Hello { version: 1, resume: None }
//! S: Welcome { session_id: 7, replayed_rounds: 0 }
//! C: Ask { question: "how many audiences were created in January?" }
//! S: Turn { round: 0, sql: "SELECT ...", rendered: "...", events: [...] }
//! C: Feedback { text: "we are in 2024", highlight: None }
//! S: Turn { round: 1, sql: "SELECT ...", rendered: "...", events: [...] }
//! C: Bye
//! S: Goodbye { rounds: 1 }
//! ```

use crate::session::SessionEvent;
use fisql_sqlkit::Span;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Protocol version; a mismatched client is refused at `Hello`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Frames larger than this are refused — no legitimate message
/// approaches it, and it bounds what a bad client can make the server
/// buffer.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// One client → server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientRequest {
    /// Opens (or, with `resume`, replays) a session. Must be the first
    /// request on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
        /// A previously issued session id to resume from the session
        /// store, or `None` for a fresh session.
        resume: Option<u64>,
    },
    /// Asks a natural-language question. The server resolves it onto the
    /// bundled corpus (exact match first, nearest-embedding otherwise).
    Ask {
        /// The question text.
        question: String,
    },
    /// Sends feedback on the previously shown SQL.
    Feedback {
        /// The feedback utterance.
        text: String,
        /// Optional highlight over the rendered SQL.
        highlight: Option<Span>,
    },
    /// Requests the full typed transcript of this session.
    Transcript,
    /// Closes the session (the connection follows).
    Bye,
    /// Asks the daemon to shut down gracefully: stop accepting, drain
    /// live sessions, sync the store, exit. Does not require a session.
    Shutdown,
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerResponse {
    /// The session is open.
    Welcome {
        /// Id under which the session is journaled (quote it in a later
        /// `Hello { resume }` to pick the conversation back up).
        session_id: u64,
        /// Feedback rounds replayed from the store (0 for a fresh
        /// session).
        replayed_rounds: u64,
    },
    /// Admission control refused the connection (cap + queue exhausted,
    /// queue wait expired, or the daemon is shutting down).
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
        /// Sessions active when the decision was made.
        active: usize,
        /// Connections queued when the decision was made.
        queued: usize,
    },
    /// One Assistant turn (answer to `Ask` or `Feedback`).
    Turn {
        /// Feedback rounds completed so far on this question.
        round: u64,
        /// The SQL now on the table.
        sql: String,
        /// The rendered chat bubble.
        rendered: String,
        /// The typed events this turn appended to the transcript.
        events: Vec<SessionEvent>,
    },
    /// The full typed transcript (answer to `Transcript`).
    TranscriptDump {
        /// Every event so far, in order.
        events: Vec<SessionEvent>,
    },
    /// The session is closed (answer to `Bye`).
    Goodbye {
        /// Feedback rounds taken over the whole connection.
        rounds: u64,
    },
    /// The daemon acknowledged `Shutdown` and is draining.
    ShuttingDown,
    /// The request could not be served; the session (when one exists)
    /// is still alive.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// Writes one frame.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, message: &T) -> io::Result<()> {
    let json = serde_json::to_vec(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if json.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", json.len()),
        ));
    }
    let len = u32::try_from(json.len()).expect("frame fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&json)?;
    w.flush()
}

/// Reads one frame (blocking until a full frame arrives or the peer
/// closes). Returns `Ok(None)` on a clean EOF *before* any frame byte.
pub fn read_frame<R: Read, T: serde::de::DeserializeOwned>(r: &mut R) -> io::Result<Option<T>> {
    let mut header = [0u8; 4];
    match read_full(r, &mut header, false)? {
        0 => return Ok(None),
        4 => {}
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame-header",
            ))
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (max {MAX_FRAME_LEN})"),
        ));
    }
    let mut body = vec![0u8; len];
    if read_full(r, &mut body, true)? != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame-body",
        ));
    }
    serde_json::from_slice(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Reads until `buf` is full or EOF; retries through timeout-style
/// errors once a frame has started (the server polls its sockets with a
/// read timeout so it can observe shutdown, and a frame must never be
/// torn by that poll). `frame_started` marks reads that are always
/// mid-frame (the body follows its header); the header read instead
/// surfaces an empty-handed timeout to the caller, which is how the
/// server regains control between requests.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], frame_started: bool) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if (filled > 0 || frame_started)
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                // Mid-frame poll timeout: the rest of the frame is in
                // flight; keep reading.
            }
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let requests = vec![
            ClientRequest::Hello {
                version: PROTOCOL_VERSION,
                resume: Some(9),
            },
            ClientRequest::Ask {
                question: "how many?".into(),
            },
            ClientRequest::Feedback {
                text: "we are in 2024".into(),
                highlight: None,
            },
            ClientRequest::Transcript,
            ClientRequest::Bye,
            ClientRequest::Shutdown,
        ];
        let mut wire = Vec::new();
        for r in &requests {
            write_frame(&mut wire, r).unwrap();
        }
        let mut cursor = &wire[..];
        let mut back = Vec::new();
        while let Some(r) = read_frame::<_, ClientRequest>(&mut cursor).unwrap() {
            back.push(r);
        }
        assert_eq!(back, requests);
    }

    #[test]
    fn responses_roundtrip() {
        let responses = vec![
            ServerResponse::Welcome {
                session_id: 3,
                replayed_rounds: 2,
            },
            ServerResponse::Rejected {
                reason: "at capacity".into(),
                active: 32,
                queued: 16,
            },
            ServerResponse::Turn {
                round: 1,
                sql: "SELECT 1".into(),
                rendered: "Assistant>".into(),
                events: vec![crate::session::SessionEvent::User("hi".into())],
            },
            ServerResponse::ShuttingDown,
            ServerResponse::Goodbye { rounds: 4 },
        ];
        let mut wire = Vec::new();
        for r in &responses {
            write_frame(&mut wire, r).unwrap();
        }
        let mut cursor = &wire[..];
        for want in &responses {
            let got: ServerResponse = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn oversized_and_torn_frames_are_errors() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::try_from(MAX_FRAME_LEN + 1).unwrap().to_le_bytes());
        let mut cursor = &wire[..];
        assert!(read_frame::<_, ClientRequest>(&mut cursor).is_err());

        let mut torn = Vec::new();
        write_frame(&mut torn, &ClientRequest::Bye).unwrap();
        torn.truncate(torn.len() - 1);
        let mut cursor = &torn[..];
        assert!(read_frame::<_, ClientRequest>(&mut cursor).is_err());
    }

    #[test]
    fn clean_eof_before_a_frame_is_none() {
        let wire: Vec<u8> = Vec::new();
        let mut cursor = &wire[..];
        assert_eq!(read_frame::<_, ClientRequest>(&mut cursor).unwrap(), None);
    }
}
