//! `fisql serve`: a long-lived, multi-session daemon over the
//! transport-agnostic [`Session`](crate::session::Session) API.
//!
//! The module tree mirrors the request path:
//!
//! - [`protocol`] — length-prefixed JSON frames; [`ClientRequest`] in,
//!   [`ServerResponse`] out, carrying the session's typed
//!   [`SessionEvent`](crate::session::SessionEvent) stream verbatim.
//! - [`admission`] — the concurrency gate: `max_sessions` slots, a
//!   bounded wait queue, typed rejection beyond that (backpressure, not
//!   collapse).
//! - [`store`] — the session store: the write-ahead
//!   [`RunJournal`](crate::journal::RunJournal) reused as a durable log
//!   of session *inputs*; restart replays them through the deterministic
//!   pipeline and reconstructs every transcript bit-identically.
//! - [`diskfault`] — deterministic disk-fault injection for the store
//!   (append/fsync failures, disk-full), pure-hash scheduled like the
//!   backend fault injector.
//! - [`replicate`] — hot-standby replication: the primary ships its
//!   store's op stream to followers over a second length-prefixed
//!   channel; fencing epochs keep a deposed primary from diverging the
//!   store after failover.
//! - [`server`] — the daemon: listener, per-connection threads, the
//!   idle-session reaper, graceful shutdown.
//! - [`client`] — the typed client the CLI, tests, and load generator
//!   drive the daemon with; [`FailoverClient`] adds the multi-endpoint
//!   re-attach loop that survives a dying primary.
//! - [`loadgen`] — seeded, deterministic load scripts and the load
//!   report (`fisql load`, `bench_serve`).
//! - [`failover`] — the deterministic kill-the-primary harness
//!   (`run_failover`): seeded load against a primary/follower pair, an
//!   in-process kill at a scripted point, digest comparison against an
//!   unfailed baseline.

pub mod admission;
pub mod client;
pub mod diskfault;
pub mod failover;
pub mod loadgen;
pub mod protocol;
pub mod replicate;
pub mod server;
pub mod store;

pub use admission::{AdmissionConfig, AdmissionGate, AdmissionSnapshot, Rejection};
pub use client::{
    request_compact, request_promote, request_shutdown, request_stats, ClientTurn, Connected,
    FailoverClient, ServeClient,
};
pub use diskfault::{DiskFaultConfig, DISK_FAULT_RATE_ENV};
pub use failover::{run_failover, FailoverConfig, FailoverReport, KillPoint};
pub use loadgen::{
    build_scripts, percentile, run_chaos, run_load, transcript_digest, ChaosBehavior, ChaosConfig,
    ChaosReport, LoadReport, SessionScript, ALL_CHAOS_BEHAVIORS,
};
pub use protocol::{ClientRequest, ServerResponse, ServerStats, PROTOCOL_VERSION};
pub use replicate::{AckMode, ReplFrame, ReplLog, ReplState, Role, REPL_PROTOCOL_VERSION};
pub use server::{ServeSummary, Server, ServerHandle};
pub use store::{
    Appended, CompactionOutcome, SessionOp, SessionStore, StoreOptions, StoreSnapshot,
    SESSION_STORE_MARKER,
};
