//! A typed client for the serve wire protocol.
//!
//! [`ServeClient`] wraps one TCP connection: `connect` performs the
//! `Hello`/`Welcome` handshake (surfacing admission rejection as a typed
//! outcome, not an error), and the per-request helpers send one frame
//! and decode the matching response. The load generator, the serve
//! tests, and the `fisql load` CLI all drive the daemon through this
//! one client.

use super::protocol::{
    read_frame_deadline, write_frame, ClientRequest, ServerResponse, ServerStats, PROTOCOL_VERSION,
};
use super::replicate::Role;
use super::store::CompactionOutcome;
use crate::session::SessionEvent;
use fisql_sqlkit::Span;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Socket poll tick under the client's read deadline: reads wake this
/// often to check the deadline clock.
const CLIENT_POLL: Duration = Duration::from_millis(100);

/// Default bound on waiting for one server response. A dead or wedged
/// daemon surfaces as a timeout error instead of hanging `fisql load`
/// (or a test) forever.
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(30);

/// How a connection attempt resolved at the protocol level.
pub enum Connected {
    /// The session is open.
    Admitted(ServeClient),
    /// Admission control refused the connection.
    Rejected {
        /// The server's refusal reason.
        reason: String,
        /// Active sessions at the decision.
        active: usize,
        /// Queued connections at the decision.
        queued: usize,
    },
    /// The daemon is shutting down.
    ShuttingDown,
    /// The node refuses sessions because it is not the primary — an
    /// unpromoted follower or a fenced ex-primary. Try another
    /// endpoint.
    Fenced {
        /// The refusing node's replication role.
        role: Role,
        /// The refusing node's fencing epoch.
        epoch: u64,
        /// The server's explanation.
        message: String,
    },
}

/// One open client session (see the module docs).
pub struct ServeClient {
    stream: TcpStream,
    /// Longest this client waits for one server response.
    read_deadline: Duration,
    /// The id the server journals this session under.
    pub session_id: u64,
    /// Feedback rounds replayed from the store at handshake (0 for a
    /// fresh session).
    pub replayed_rounds: u64,
}

/// One Assistant turn as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientTurn {
    /// Feedback rounds completed so far on the current question.
    pub round: u64,
    /// The SQL now on the table.
    pub sql: String,
    /// The rendered chat bubble.
    pub rendered: String,
    /// The typed events this turn appended to the transcript.
    pub events: Vec<SessionEvent>,
}

fn proto_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

impl ServeClient {
    /// Connects and performs the handshake. `resume` replays a stored
    /// session.
    pub fn connect<A: ToSocketAddrs>(addr: A, resume: Option<u64>) -> io::Result<Connected> {
        Self::handshake(TcpStream::connect(addr)?, resume)
    }

    /// Connects, retrying refused connections until `budget` elapses —
    /// for drivers started concurrently with the daemon.
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        resume: Option<u64>,
        budget: Duration,
    ) -> io::Result<Connected> {
        let deadline = Instant::now() + budget;
        loop {
            match TcpStream::connect(addr.clone()) {
                Ok(stream) => return Self::handshake(stream, resume),
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn handshake(mut stream: TcpStream, resume: Option<u64>) -> io::Result<Connected> {
        // Socket setup errors are propagated, not swallowed: a client
        // whose poll timeout could not be armed would hang forever on a
        // dead daemon, which is exactly what the read deadline exists to
        // prevent.
        prepare_stream(&mut stream)?;
        write_frame(
            &mut stream,
            &ClientRequest::Hello {
                version: PROTOCOL_VERSION,
                resume,
            },
        )?;
        match read_response(&mut stream, DEFAULT_READ_DEADLINE)? {
            ServerResponse::Welcome {
                session_id,
                replayed_rounds,
            } => Ok(Connected::Admitted(ServeClient {
                stream,
                read_deadline: DEFAULT_READ_DEADLINE,
                session_id,
                replayed_rounds,
            })),
            ServerResponse::Rejected {
                reason,
                active,
                queued,
            } => Ok(Connected::Rejected {
                reason,
                active,
                queued,
            }),
            ServerResponse::ShuttingDown => Ok(Connected::ShuttingDown),
            ServerResponse::Fenced {
                role,
                epoch,
                message,
            } => Ok(Connected::Fenced {
                role,
                epoch,
                message,
            }),
            // "unknown session" gets its own kind: a failing-over
            // client distinguishes "this session does not exist here"
            // (fall back to a fresh session) from a malformed exchange.
            ServerResponse::Error { message } if message.starts_with("unknown session") => {
                Err(io::Error::new(io::ErrorKind::NotFound, message))
            }
            ServerResponse::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected handshake reply {other:?}"))),
        }
    }

    /// Bounds how long this client waits for one server response
    /// (default [`DEFAULT_READ_DEADLINE`]).
    pub fn set_read_deadline(&mut self, deadline: Duration) {
        self.read_deadline = deadline;
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, request: &ClientRequest) -> io::Result<ServerResponse> {
        write_frame(&mut self.stream, request)?;
        read_response(&mut self.stream, self.read_deadline)
    }

    /// Fetches the daemon's live statistics.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        match self.request(&ClientRequest::Stats)? {
            ServerResponse::Stats(stats) => Ok(stats),
            ServerResponse::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected stats reply {other:?}"))),
        }
    }

    /// Asks a question; returns the Assistant's turn.
    pub fn ask(&mut self, question: &str) -> io::Result<ClientTurn> {
        let response = self.request(&ClientRequest::Ask {
            question: question.to_string(),
        })?;
        expect_turn(response)
    }

    /// Sends feedback on the previously shown SQL.
    pub fn feedback(&mut self, text: &str, highlight: Option<Span>) -> io::Result<ClientTurn> {
        let response = self.request(&ClientRequest::Feedback {
            text: text.to_string(),
            highlight,
        })?;
        expect_turn(response)
    }

    /// Fetches the session's full typed transcript.
    pub fn transcript(&mut self) -> io::Result<Vec<SessionEvent>> {
        match self.request(&ClientRequest::Transcript)? {
            ServerResponse::TranscriptDump { events } => Ok(events),
            ServerResponse::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected transcript reply {other:?}"))),
        }
    }

    /// Closes the session; returns the feedback rounds taken.
    pub fn bye(mut self) -> io::Result<u64> {
        match self.request(&ClientRequest::Bye)? {
            ServerResponse::Goodbye { rounds } => Ok(rounds),
            ServerResponse::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected bye reply {other:?}"))),
        }
    }
}

/// Arms a freshly connected socket: no Nagle delay, and the poll tick
/// the read deadline is checked against.
fn prepare_stream(stream: &mut TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(CLIENT_POLL))
}

/// Asks a daemon to shut down gracefully (no session needed). `Ok(true)`
/// means the daemon acknowledged; `Ok(false)` means it had already
/// stopped listening.
pub fn request_shutdown<A: ToSocketAddrs>(addr: A) -> io::Result<bool> {
    let mut stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => return Ok(false),
        Err(e) => return Err(e),
    };
    prepare_stream(&mut stream)?;
    write_frame(&mut stream, &ClientRequest::Shutdown)?;
    let deadline = Instant::now() + DEFAULT_READ_DEADLINE;
    match read_frame_deadline::<_, ServerResponse>(&mut stream, deadline, true)? {
        Some(ServerResponse::ShuttingDown) | None => Ok(true),
        Some(other) => Err(proto_err(format!("unexpected shutdown reply {other:?}"))),
    }
}

/// Fetches a daemon's live statistics without opening a session.
pub fn request_stats<A: ToSocketAddrs>(addr: A) -> io::Result<ServerStats> {
    let mut stream = TcpStream::connect(addr)?;
    prepare_stream(&mut stream)?;
    write_frame(&mut stream, &ClientRequest::Stats)?;
    match read_response(&mut stream, DEFAULT_READ_DEADLINE)? {
        ServerResponse::Stats(stats) => Ok(stats),
        ServerResponse::Error { message } => Err(proto_err(message)),
        other => Err(proto_err(format!("unexpected stats reply {other:?}"))),
    }
}

/// Asks a daemon to compact its session store now (no session needed).
pub fn request_compact<A: ToSocketAddrs>(addr: A) -> io::Result<CompactionOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    prepare_stream(&mut stream)?;
    write_frame(&mut stream, &ClientRequest::Compact)?;
    match read_response(&mut stream, DEFAULT_READ_DEADLINE)? {
        ServerResponse::Compacted {
            generation,
            ops_before,
            ops_after,
            sessions_dropped,
        } => Ok(CompactionOutcome {
            generation,
            ops_before,
            ops_after,
            sessions_dropped,
        }),
        ServerResponse::Error { message } => Err(proto_err(message)),
        other => Err(proto_err(format!("unexpected compact reply {other:?}"))),
    }
}

/// Asks a node to promote itself to primary (no session needed).
/// Returns the node's epoch after the promotion; idempotent on a node
/// that is already primary. A *fenced* node refuses — promoting it
/// would fork history.
pub fn request_promote<A: ToSocketAddrs>(addr: A) -> io::Result<u64> {
    let mut stream = TcpStream::connect(addr)?;
    prepare_stream(&mut stream)?;
    write_frame(&mut stream, &ClientRequest::Promote)?;
    match read_response(&mut stream, DEFAULT_READ_DEADLINE)? {
        ServerResponse::Promoted { epoch } => Ok(epoch),
        ServerResponse::Error { message } => Err(proto_err(message)),
        other => Err(proto_err(format!("unexpected promote reply {other:?}"))),
    }
}

fn read_response(stream: &mut TcpStream, read_deadline: Duration) -> io::Result<ServerResponse> {
    let deadline = Instant::now() + read_deadline;
    match read_frame_deadline::<_, ServerResponse>(stream, deadline, true)? {
        Some(ServerResponse::Reaped { reason, .. }) => Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("session reaped by the daemon: {reason}"),
        )),
        Some(response) => Ok(response),
        // A socket that died before a frame arrived is a *transport*
        // failure, not a protocol one — [`FailoverClient`] keys its
        // re-attach sweep on exactly this kind.
        None => Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "server closed the connection mid-conversation",
        )),
    }
}

fn expect_turn(response: ServerResponse) -> io::Result<ClientTurn> {
    match response {
        ServerResponse::Turn {
            round,
            sql,
            rendered,
            events,
        } => Ok(ClientTurn {
            round,
            sql,
            rendered,
            events,
        }),
        ServerResponse::Error { message } => Err(proto_err(message)),
        other => Err(proto_err(format!("unexpected turn reply {other:?}"))),
    }
}

// ---------------------------------------------------------------------
// Failover client
// ---------------------------------------------------------------------

/// Most endpoint switches one conversation tolerates before the client
/// concludes the cluster is flapping and gives up.
const MAX_FAILOVERS: usize = 16;

/// Pause between endpoint sweeps while waiting for a node to come up or
/// promote itself.
const SWEEP_PAUSE: Duration = Duration::from_millis(25);

/// One in-flight conversation turn, borrowed from the caller.
enum PlayOp<'a> {
    Ask(&'a str),
    Feedback(&'a str, Option<Span>),
}

/// A serve client that survives a dying primary.
///
/// The client holds an ordered endpoint list (primary first). On a
/// transport failure — or a typed [`ServerResponse::Fenced`] refusal —
/// it sweeps the other endpoints, re-attaches by session id (`resume`),
/// and *deduplicates* the in-flight turn against the resumed
/// transcript: the store journals exactly one `User` event per `Ask`
/// and one `Feedback` event per feedback round, so comparing event
/// counts against the client's own done-counters decides whether the
/// turn the crash interrupted was applied (synthesize its reply from
/// the replayed transcript) or lost (resend it verbatim).
///
/// Under `--repl-ack quorum` an acknowledged turn is durable on a
/// majority before the client ever sees its reply, so [`lost_rounds`]
/// stays zero across a failover; under `--repl-ack none` the counter
/// reports exactly how many acknowledged turns the promoted follower
/// had never seen.
///
/// [`lost_rounds`]: FailoverClient::lost_rounds
pub struct FailoverClient {
    endpoints: Vec<String>,
    /// Index of the endpoint currently serving us.
    current: usize,
    client: Option<ServeClient>,
    session_id: Option<u64>,
    /// Questions this client has confirmed applied.
    questions_done: u64,
    /// Feedback rounds this client has confirmed applied.
    feedback_done: u64,
    /// Budget for one full re-attach (covers follower promotion).
    reattach_budget: Duration,
    /// The next re-attach sweep should probe the *current* endpoint
    /// first: the disconnect was a read-deadline expiry, which a
    /// slow-but-alive node (e.g. stalled in a quorum-ack wait) also
    /// produces — sweeping away from it immediately would turn one slow
    /// turn into a full failover against a node that never died.
    prefer_current_on_reattach: bool,
    /// Successful re-attachments to another endpoint.
    pub failovers: u64,
    /// Confirmed turns the promoted node had never seen (possible only
    /// with `--repl-ack none`).
    pub lost_rounds: u64,
    /// Wall-clock of each successful failover, microseconds.
    pub failover_latencies_us: Vec<u64>,
}

impl FailoverClient {
    /// Connects to the first endpoint that admits a session, retrying
    /// sweeps until `budget` elapses. `Ok(None)` preserves the
    /// single-endpoint client's backpressure contract: a live node
    /// answered `Rejected` or `ShuttingDown`.
    pub fn connect(endpoints: Vec<String>, budget: Duration) -> io::Result<Option<FailoverClient>> {
        if endpoints.is_empty() {
            return Err(proto_err("no endpoints to connect to"));
        }
        let deadline = Instant::now() + budget;
        let (current, client) = 'sweep: loop {
            for (idx, endpoint) in endpoints.iter().enumerate() {
                match ServeClient::connect(endpoint.as_str(), None) {
                    Ok(Connected::Admitted(client)) => break 'sweep (idx, client),
                    Ok(Connected::Rejected { .. } | Connected::ShuttingDown) => return Ok(None),
                    // A fenced node or a dead endpoint: try the next.
                    Ok(Connected::Fenced { .. }) | Err(_) => {}
                }
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no endpoint admitted a session within the connect budget",
                ));
            }
            std::thread::sleep(SWEEP_PAUSE);
        };
        let session_id = client.session_id;
        Ok(Some(FailoverClient {
            endpoints,
            current,
            client: Some(client),
            session_id: Some(session_id),
            questions_done: 0,
            feedback_done: 0,
            reattach_budget: budget,
            prefer_current_on_reattach: false,
            failovers: 0,
            lost_rounds: 0,
            failover_latencies_us: Vec::new(),
        }))
    }

    /// The session id the store journals this conversation under.
    pub fn session_id(&self) -> Option<u64> {
        self.session_id
    }

    /// Asks a question; survives the primary dying mid-turn.
    pub fn ask(&mut self, question: &str) -> io::Result<ClientTurn> {
        self.drive(&PlayOp::Ask(question))
    }

    /// Sends feedback on the previously shown SQL; survives the primary
    /// dying mid-turn.
    pub fn feedback(&mut self, text: &str, highlight: Option<Span>) -> io::Result<ClientTurn> {
        self.drive(&PlayOp::Feedback(text, highlight))
    }

    /// Fetches the session's full typed transcript, failing over if the
    /// serving node dies first.
    pub fn transcript(&mut self) -> io::Result<Vec<SessionEvent>> {
        let mut attempts = 0;
        loop {
            if self.client.is_none() {
                self.fail_over()?;
            }
            let client = self.client.as_mut().expect("connected after fail_over");
            match client.transcript() {
                Ok(events) => {
                    // The transcript is the store's truth. If a
                    // failover landed between the last confirmed turn
                    // and this fetch, turns the promoted node never saw
                    // would otherwise escape the accounting — reconcile
                    // the counters against what actually survived.
                    let (applied_q, applied_f) = count_turn_events(&events);
                    self.lost_rounds += self.questions_done.saturating_sub(applied_q)
                        + self.feedback_done.saturating_sub(applied_f);
                    self.questions_done = self.questions_done.min(applied_q);
                    self.feedback_done = self.feedback_done.min(applied_f);
                    return Ok(events);
                }
                Err(e) if is_failover_error(&e) && attempts < MAX_FAILOVERS => {
                    attempts += 1;
                    self.mark_disconnected(&e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Closes the session. The close itself is not replayed on
    /// failover: if the node died around the `Bye`, either the `Closed`
    /// record made it (the session is over) or the reaper will collect
    /// the orphaned slot — both leave the conversation's transcript
    /// intact, which is the part the digest checks.
    pub fn bye(&mut self) -> io::Result<u64> {
        let Some(client) = self.client.take() else {
            return Ok(self.feedback_done);
        };
        match client.bye() {
            Ok(rounds) => Ok(rounds),
            Err(e) if is_failover_error(&e) => Ok(self.feedback_done),
            Err(e) => Err(e),
        }
    }

    /// Plays one turn to completion across failovers.
    fn drive(&mut self, op: &PlayOp<'_>) -> io::Result<ClientTurn> {
        let mut attempts = 0;
        loop {
            if self.client.is_none() {
                self.fail_over()?;
                match self.skip_if_applied(op) {
                    Ok(Some(turn)) => return Ok(turn),
                    Ok(None) => {}
                    Err(e) if is_failover_error(&e) && attempts < MAX_FAILOVERS => {
                        attempts += 1;
                        self.mark_disconnected(&e);
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            // A feedback whose *question* went down with the dead
            // primary (possible only under `--repl-ack none`) has
            // nothing to apply to — sending it would draw a typed
            // error. It is lost with its question; skip and account.
            // Checked *after* any re-attach: the question can also be
            // lost mid-drive, when resuming finds the whole session gone
            // and falls back to a fresh one.
            if matches!(op, PlayOp::Feedback(..)) && self.questions_done == 0 {
                self.lost_rounds += 1;
                return Ok(ClientTurn {
                    round: 0,
                    sql: String::new(),
                    rendered: String::new(),
                    events: Vec::new(),
                });
            }
            let request = match op {
                PlayOp::Ask(question) => ClientRequest::Ask {
                    question: (*question).to_string(),
                },
                PlayOp::Feedback(text, highlight) => ClientRequest::Feedback {
                    text: (*text).to_string(),
                    highlight: *highlight,
                },
            };
            let client = self.client.as_mut().expect("connected after fail_over");
            match client.request(&request) {
                Ok(ServerResponse::Turn {
                    round,
                    sql,
                    rendered,
                    events,
                }) => {
                    self.note_done(op);
                    return Ok(ClientTurn {
                        round,
                        sql,
                        rendered,
                        events,
                    });
                }
                // The node stopped being primary under us (fenced
                // mid-conversation). The turn was refused *before* any
                // store append, so resending after the sweep is safe.
                Ok(ServerResponse::Fenced { .. }) => self.client = None,
                Ok(ServerResponse::Error { message }) => return Err(proto_err(message)),
                Ok(other) => return Err(proto_err(format!("unexpected turn reply {other:?}"))),
                Err(e) if is_failover_error(&e) => self.mark_disconnected(&e),
                Err(e) => return Err(e),
            }
            attempts += 1;
            if attempts > MAX_FAILOVERS {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "gave up on the turn after repeated failovers",
                ));
            }
        }
    }

    /// Drops the connection ahead of a re-attach sweep, remembering
    /// whether the error was a read-deadline expiry — the one failure a
    /// slow-but-alive node also produces, so the sweep re-probes the
    /// same endpoint before deserting it.
    fn mark_disconnected(&mut self, e: &io::Error) {
        self.client = None;
        self.prefer_current_on_reattach = is_deadline_expiry(e);
    }

    /// Sweeps the endpoints until one admits the resumed session,
    /// waiting out follower promotion within the budget. Normally the
    /// *other* endpoints come first (the current one is presumed dead
    /// and tried last); after a read-deadline expiry the current
    /// endpoint is retried first — see [`FailoverClient::mark_disconnected`].
    fn fail_over(&mut self) -> io::Result<()> {
        let started = Instant::now();
        let deadline = started + self.reattach_budget;
        self.client = None;
        let start = usize::from(!std::mem::take(&mut self.prefer_current_on_reattach));
        loop {
            for offset in start..start + self.endpoints.len() {
                let idx = (self.current + offset) % self.endpoints.len();
                match ServeClient::connect(self.endpoints[idx].as_str(), self.session_id) {
                    Ok(Connected::Admitted(client)) => {
                        self.current = idx;
                        self.session_id = Some(client.session_id);
                        self.client = Some(client);
                        self.failovers += 1;
                        self.failover_latencies_us
                            .push(started.elapsed().as_micros() as u64);
                        return Ok(());
                    }
                    // The whole session went down with the primary —
                    // its `Opened` record never reached this node
                    // (possible only with `--repl-ack none`). Nothing
                    // to resume: open a fresh session here and count
                    // everything confirmed so far as lost.
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {
                        if let Ok(Connected::Admitted(client)) =
                            ServeClient::connect(self.endpoints[idx].as_str(), None)
                        {
                            self.lost_rounds += self.questions_done + self.feedback_done;
                            self.questions_done = 0;
                            self.feedback_done = 0;
                            self.current = idx;
                            self.session_id = Some(client.session_id);
                            self.client = Some(client);
                            self.failovers += 1;
                            self.failover_latencies_us
                                .push(started.elapsed().as_micros() as u64);
                            return Ok(());
                        }
                    }
                    // Everything else is retryable within the budget: a
                    // fenced ex-primary, a follower that has not
                    // promoted itself yet, a refused connect while the
                    // promoted node takes over, admission backpressure.
                    Ok(_) | Err(_) => {}
                }
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no endpoint accepted the re-attach within the failover budget",
                ));
            }
            std::thread::sleep(SWEEP_PAUSE);
        }
    }

    /// Decides what happened to the turn the crash interrupted by
    /// counting `User`/`Feedback` events in the resumed transcript
    /// against this client's done-counters. `Some(turn)` means the
    /// store already holds the turn — its reply is synthesized from the
    /// replayed transcript (with an empty `events` delta, since the
    /// events landed before the failover). `None` means resend.
    fn skip_if_applied(&mut self, op: &PlayOp<'_>) -> io::Result<Option<ClientTurn>> {
        let client = self.client.as_mut().expect("connected after fail_over");
        let events = client.transcript()?;
        let (applied_q, applied_f) = count_turn_events(&events);
        let (done, applied, rest_matches) = match op {
            PlayOp::Ask(_) => (
                self.questions_done,
                applied_q,
                applied_f == self.feedback_done,
            ),
            PlayOp::Feedback(..) => (
                self.feedback_done,
                applied_f,
                applied_q == self.questions_done,
            ),
        };
        if rest_matches && applied == done + 1 {
            self.note_done(op);
            let (rendered, sql) = last_assistant(&events);
            let round = events
                .iter()
                .rev()
                .take_while(|e| !matches!(e, SessionEvent::User(_)))
                .filter(|e| matches!(e, SessionEvent::Feedback { .. }))
                .count() as u64;
            return Ok(Some(ClientTurn {
                round,
                sql,
                rendered,
                events: Vec::new(),
            }));
        }
        // Anything the promoted node never saw is lost — possible only
        // with `--repl-ack none`, where acks outrun replication. Resync
        // the counters to the store's truth and resend from there.
        self.lost_rounds += self.questions_done.saturating_sub(applied_q)
            + self.feedback_done.saturating_sub(applied_f);
        self.questions_done = self.questions_done.min(applied_q);
        self.feedback_done = self.feedback_done.min(applied_f);
        Ok(None)
    }

    fn note_done(&mut self, op: &PlayOp<'_>) {
        match op {
            PlayOp::Ask(_) => self.questions_done += 1,
            PlayOp::Feedback(..) => self.feedback_done += 1,
        }
    }
}

/// Counts the `(User, Feedback)` events in a transcript — the store
/// journals exactly one per applied ask/feedback turn, which is what
/// makes the failover dedup sound.
fn count_turn_events(events: &[SessionEvent]) -> (u64, u64) {
    let users = events
        .iter()
        .filter(|e| matches!(e, SessionEvent::User(_)))
        .count() as u64;
    let feedbacks = events
        .iter()
        .filter(|e| matches!(e, SessionEvent::Feedback { .. }))
        .count() as u64;
    (users, feedbacks)
}

/// The last Assistant bubble in a transcript — the reply a synthesized
/// turn re-presents after failover.
fn last_assistant(events: &[SessionEvent]) -> (String, String) {
    events
        .iter()
        .rev()
        .find_map(|e| match e {
            SessionEvent::Assistant { rendered, sql } => Some((rendered.clone(), sql.clone())),
            _ => None,
        })
        .unwrap_or_default()
}

/// Errors that mean "the node is gone or unusable", as opposed to a
/// typed protocol error the conversation should surface. Deadline
/// expiries ([`is_deadline_expiry`]) are included — a silent crash also
/// looks like one — but they get gentler treatment: the re-attach sweep
/// retries the same endpoint first, so a slow-but-alive node (stalled
/// in a quorum-ack wait, say) is not abandoned over one slow turn.
fn is_failover_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
    ) || is_deadline_expiry(e)
}

/// Errors a read deadline produces on a node that may be slow, not
/// dead.
fn is_deadline_expiry(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}
