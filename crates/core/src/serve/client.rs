//! A typed client for the serve wire protocol.
//!
//! [`ServeClient`] wraps one TCP connection: `connect` performs the
//! `Hello`/`Welcome` handshake (surfacing admission rejection as a typed
//! outcome, not an error), and the per-request helpers send one frame
//! and decode the matching response. The load generator, the serve
//! tests, and the `fisql load` CLI all drive the daemon through this
//! one client.

use super::protocol::{
    read_frame_deadline, write_frame, ClientRequest, ServerResponse, ServerStats, PROTOCOL_VERSION,
};
use super::store::CompactionOutcome;
use crate::session::SessionEvent;
use fisql_sqlkit::Span;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Socket poll tick under the client's read deadline: reads wake this
/// often to check the deadline clock.
const CLIENT_POLL: Duration = Duration::from_millis(100);

/// Default bound on waiting for one server response. A dead or wedged
/// daemon surfaces as a timeout error instead of hanging `fisql load`
/// (or a test) forever.
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(30);

/// How a connection attempt resolved at the protocol level.
pub enum Connected {
    /// The session is open.
    Admitted(ServeClient),
    /// Admission control refused the connection.
    Rejected {
        /// The server's refusal reason.
        reason: String,
        /// Active sessions at the decision.
        active: usize,
        /// Queued connections at the decision.
        queued: usize,
    },
    /// The daemon is shutting down.
    ShuttingDown,
}

/// One open client session (see the module docs).
pub struct ServeClient {
    stream: TcpStream,
    /// Longest this client waits for one server response.
    read_deadline: Duration,
    /// The id the server journals this session under.
    pub session_id: u64,
    /// Feedback rounds replayed from the store at handshake (0 for a
    /// fresh session).
    pub replayed_rounds: u64,
}

/// One Assistant turn as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientTurn {
    /// Feedback rounds completed so far on the current question.
    pub round: u64,
    /// The SQL now on the table.
    pub sql: String,
    /// The rendered chat bubble.
    pub rendered: String,
    /// The typed events this turn appended to the transcript.
    pub events: Vec<SessionEvent>,
}

fn proto_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

impl ServeClient {
    /// Connects and performs the handshake. `resume` replays a stored
    /// session.
    pub fn connect<A: ToSocketAddrs>(addr: A, resume: Option<u64>) -> io::Result<Connected> {
        Self::handshake(TcpStream::connect(addr)?, resume)
    }

    /// Connects, retrying refused connections until `budget` elapses —
    /// for drivers started concurrently with the daemon.
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        resume: Option<u64>,
        budget: Duration,
    ) -> io::Result<Connected> {
        let deadline = Instant::now() + budget;
        loop {
            match TcpStream::connect(addr.clone()) {
                Ok(stream) => return Self::handshake(stream, resume),
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn handshake(mut stream: TcpStream, resume: Option<u64>) -> io::Result<Connected> {
        // Socket setup errors are propagated, not swallowed: a client
        // whose poll timeout could not be armed would hang forever on a
        // dead daemon, which is exactly what the read deadline exists to
        // prevent.
        prepare_stream(&mut stream)?;
        write_frame(
            &mut stream,
            &ClientRequest::Hello {
                version: PROTOCOL_VERSION,
                resume,
            },
        )?;
        match read_response(&mut stream, DEFAULT_READ_DEADLINE)? {
            ServerResponse::Welcome {
                session_id,
                replayed_rounds,
            } => Ok(Connected::Admitted(ServeClient {
                stream,
                read_deadline: DEFAULT_READ_DEADLINE,
                session_id,
                replayed_rounds,
            })),
            ServerResponse::Rejected {
                reason,
                active,
                queued,
            } => Ok(Connected::Rejected {
                reason,
                active,
                queued,
            }),
            ServerResponse::ShuttingDown => Ok(Connected::ShuttingDown),
            ServerResponse::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected handshake reply {other:?}"))),
        }
    }

    /// Bounds how long this client waits for one server response
    /// (default [`DEFAULT_READ_DEADLINE`]).
    pub fn set_read_deadline(&mut self, deadline: Duration) {
        self.read_deadline = deadline;
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, request: &ClientRequest) -> io::Result<ServerResponse> {
        write_frame(&mut self.stream, request)?;
        read_response(&mut self.stream, self.read_deadline)
    }

    /// Fetches the daemon's live statistics.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        match self.request(&ClientRequest::Stats)? {
            ServerResponse::Stats(stats) => Ok(stats),
            ServerResponse::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected stats reply {other:?}"))),
        }
    }

    /// Asks a question; returns the Assistant's turn.
    pub fn ask(&mut self, question: &str) -> io::Result<ClientTurn> {
        let response = self.request(&ClientRequest::Ask {
            question: question.to_string(),
        })?;
        expect_turn(response)
    }

    /// Sends feedback on the previously shown SQL.
    pub fn feedback(&mut self, text: &str, highlight: Option<Span>) -> io::Result<ClientTurn> {
        let response = self.request(&ClientRequest::Feedback {
            text: text.to_string(),
            highlight,
        })?;
        expect_turn(response)
    }

    /// Fetches the session's full typed transcript.
    pub fn transcript(&mut self) -> io::Result<Vec<SessionEvent>> {
        match self.request(&ClientRequest::Transcript)? {
            ServerResponse::TranscriptDump { events } => Ok(events),
            ServerResponse::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected transcript reply {other:?}"))),
        }
    }

    /// Closes the session; returns the feedback rounds taken.
    pub fn bye(mut self) -> io::Result<u64> {
        match self.request(&ClientRequest::Bye)? {
            ServerResponse::Goodbye { rounds } => Ok(rounds),
            ServerResponse::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected bye reply {other:?}"))),
        }
    }
}

/// Arms a freshly connected socket: no Nagle delay, and the poll tick
/// the read deadline is checked against.
fn prepare_stream(stream: &mut TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(CLIENT_POLL))
}

/// Asks a daemon to shut down gracefully (no session needed). `Ok(true)`
/// means the daemon acknowledged; `Ok(false)` means it had already
/// stopped listening.
pub fn request_shutdown<A: ToSocketAddrs>(addr: A) -> io::Result<bool> {
    let mut stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => return Ok(false),
        Err(e) => return Err(e),
    };
    prepare_stream(&mut stream)?;
    write_frame(&mut stream, &ClientRequest::Shutdown)?;
    let deadline = Instant::now() + DEFAULT_READ_DEADLINE;
    match read_frame_deadline::<_, ServerResponse>(&mut stream, deadline, true)? {
        Some(ServerResponse::ShuttingDown) | None => Ok(true),
        Some(other) => Err(proto_err(format!("unexpected shutdown reply {other:?}"))),
    }
}

/// Fetches a daemon's live statistics without opening a session.
pub fn request_stats<A: ToSocketAddrs>(addr: A) -> io::Result<ServerStats> {
    let mut stream = TcpStream::connect(addr)?;
    prepare_stream(&mut stream)?;
    write_frame(&mut stream, &ClientRequest::Stats)?;
    match read_response(&mut stream, DEFAULT_READ_DEADLINE)? {
        ServerResponse::Stats(stats) => Ok(stats),
        ServerResponse::Error { message } => Err(proto_err(message)),
        other => Err(proto_err(format!("unexpected stats reply {other:?}"))),
    }
}

/// Asks a daemon to compact its session store now (no session needed).
pub fn request_compact<A: ToSocketAddrs>(addr: A) -> io::Result<CompactionOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    prepare_stream(&mut stream)?;
    write_frame(&mut stream, &ClientRequest::Compact)?;
    match read_response(&mut stream, DEFAULT_READ_DEADLINE)? {
        ServerResponse::Compacted {
            generation,
            ops_before,
            ops_after,
            sessions_dropped,
        } => Ok(CompactionOutcome {
            generation,
            ops_before,
            ops_after,
            sessions_dropped,
        }),
        ServerResponse::Error { message } => Err(proto_err(message)),
        other => Err(proto_err(format!("unexpected compact reply {other:?}"))),
    }
}

fn read_response(stream: &mut TcpStream, read_deadline: Duration) -> io::Result<ServerResponse> {
    let deadline = Instant::now() + read_deadline;
    match read_frame_deadline::<_, ServerResponse>(stream, deadline, true)? {
        Some(ServerResponse::Reaped { reason, .. }) => Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("session reaped by the daemon: {reason}"),
        )),
        Some(response) => Ok(response),
        None => Err(proto_err("server closed the connection mid-conversation")),
    }
}

fn expect_turn(response: ServerResponse) -> io::Result<ClientTurn> {
    match response {
        ServerResponse::Turn {
            round,
            sql,
            rendered,
            events,
        } => Ok(ClientTurn {
            round,
            sql,
            rendered,
            events,
        }),
        ServerResponse::Error { message } => Err(proto_err(message)),
        other => Err(proto_err(format!("unexpected turn reply {other:?}"))),
    }
}
