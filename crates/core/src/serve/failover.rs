//! The deterministic kill-the-primary harness.
//!
//! [`run_failover`] stages the whole failover story in one process:
//!
//! 1. **Baseline** — a single fresh daemon serves the seeded load
//!    scripts to completion; its order-insensitive transcript digest is
//!    the ground truth an unfailed run produces.
//! 2. **HA pair** — a primary (`--repl-listen`) and a follower
//!    (`--replica-of`) boot on ephemeral ports with separate stores;
//!    the same scripts run through [`FailoverClient`]s holding the
//!    `[primary, follower]` endpoint list.
//! 3. **Kill** — once the scripted [`KillPoint`] is reached, the
//!    primary is [`abort`]ed: no farewells, no in-flight responses,
//!    connections just see their peer vanish — the in-process
//!    equivalent of `kill -9`.
//! 4. **Verdict** — clients fail over to the follower (which
//!    self-promotes on link loss), finish their scripts, and the
//!    harness compares the HA digest against the baseline. Under
//!    `--repl-ack quorum` they must be identical and no acknowledged
//!    round may be lost.
//!
//! Everything is seeded: the scripts, the corpus, and the pipeline are
//! pure functions of the configuration, so the only nondeterminism is
//! scheduling — which the order-insensitive digest absorbs.
//!
//! [`abort`]: super::server::ServerHandle::abort

use super::client::request_stats;
use super::loadgen::{run_load, LoadReport};
use super::protocol::ServerStats;
use super::server::{ServeSummary, Server, ServerHandle};
use crate::config::{LoadConfig, ServeConfig};
use std::io;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When the harness kills the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// After the primary has served this many feedback rounds — a kill
    /// in the thick of normal traffic.
    AfterRounds(u64),
    /// At a replication-lag boundary: shipping is paused until at least
    /// one appended record is pending, then the primary dies with the
    /// follower provably behind. With `--repl-ack none` this is the
    /// scenario that loses acknowledged rounds.
    LagBoundary,
    /// After the primary's store has compacted at least once — the kill
    /// lands on a store whose journal was rewritten mid-stream.
    DuringCompaction,
}

/// Configuration for one failover run.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Base daemon configuration. The harness overrides the port (to
    /// ephemeral), the store path (one per node), and the replication
    /// wiring; everything else — seed, strategy, ack mode, compaction
    /// cadence — is taken as given.
    pub serve: ServeConfig,
    /// Store paths for the three daemons the harness boots.
    pub baseline_store: PathBuf,
    /// Primary's store path.
    pub primary_store: PathBuf,
    /// Follower's store path.
    pub follower_store: PathBuf,
    /// Scripted sessions per run.
    pub sessions: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Feedback rounds per session (upper bound).
    pub max_rounds: usize,
    /// Script seed.
    pub load_seed: u64,
    /// When to kill the primary.
    pub kill: KillPoint,
    /// Per-client budget for one re-attach (covers promotion).
    pub reattach_budget_ms: u64,
}

/// What one failover run proved.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// The unfailed single-daemon run.
    pub baseline: LoadReport,
    /// The run that survived the kill.
    pub ha: LoadReport,
    /// Whether the two transcript digests are byte-identical.
    pub digests_match: bool,
    /// Endpoint failovers performed (≥ 1 when the kill landed under
    /// active sessions).
    pub failovers: u64,
    /// Acknowledged rounds the promoted follower had never seen.
    pub lost_rounds: u64,
    /// The survivor's statistics after the load drained.
    pub survivor: Option<ServerStats>,
    /// The killed primary's exit summary.
    pub primary_summary: ServeSummary,
    /// The survivor's exit summary.
    pub survivor_summary: ServeSummary,
}

/// One booted daemon and the thread that will yield its exit summary.
struct Node {
    addr: String,
    handle: ServerHandle,
    thread: JoinHandle<io::Result<ServeSummary>>,
}

fn boot(config: ServeConfig) -> io::Result<(Node, Option<std::net::SocketAddr>)> {
    let server = Server::bind(config)?;
    let handle = server.handle()?;
    let repl_addr = server.repl_addr();
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || server.serve());
    Ok((
        Node {
            addr,
            handle,
            thread,
        },
        repl_addr,
    ))
}

fn join_node(node: Node) -> io::Result<ServeSummary> {
    node.handle.shutdown();
    node.thread
        .join()
        .map_err(|_| io::Error::other("server thread panicked"))?
}

fn load_config(config: &FailoverConfig, addr: String) -> LoadConfig {
    LoadConfig {
        addr,
        sessions: config.sessions,
        concurrency: config.concurrency,
        max_rounds: config.max_rounds,
        seed: config.load_seed,
        corpus_seed: config.serve.seed,
        n_examples: config.serve.n_examples,
        shutdown: false,
        connect_retry_ms: config.reattach_budget_ms,
    }
}

/// Stages baseline + HA pair + kill and reports (see the module docs).
pub fn run_failover(config: &FailoverConfig) -> io::Result<FailoverReport> {
    // ---- Baseline: one fresh daemon, no replication, same scripts.
    let base_serve = config
        .serve
        .clone()
        .port(0)
        .store(&config.baseline_store)
        .replication_off();
    let (baseline_node, _) = boot(base_serve)?;
    let baseline = run_load(&load_config(config, baseline_node.addr.clone()))?;
    join_node(baseline_node)?;

    // ---- HA pair: primary ships to one follower.
    let primary_serve = config
        .serve
        .clone()
        .port(0)
        .store(&config.primary_store)
        .replication_off()
        .repl_listen("127.0.0.1:0")
        .repl_ack(config.serve.repl_ack)
        .repl_ack_timeout_ms(config.serve.repl_ack_timeout_ms);
    let (primary, repl_addr) = boot(primary_serve)?;
    let repl_addr = repl_addr.ok_or_else(|| io::Error::other("primary bound no repl listener"))?;
    let follower_serve = config
        .serve
        .clone()
        .port(0)
        .store(&config.follower_store)
        .replication_off()
        .replica_of(repl_addr.to_string());
    let (follower, _) = boot(follower_serve)?;

    // The kill is only meaningful once the follower is attached and
    // caught up enough to matter; wait for the link.
    wait_until(Duration::from_secs(10), || {
        primary.handle.repl().log.followers() > 0
    })
    .map_err(|()| io::Error::other("follower never attached to the primary"))?;

    // ---- Load against [primary, follower], kill mid-flight.
    let endpoints = format!("{},{}", primary.addr, follower.addr);
    let ha_load = load_config(config, endpoints);
    let loader = std::thread::spawn(move || run_load(&ha_load));

    trigger_kill(config, &primary);

    let ha = loader
        .join()
        .map_err(|_| io::Error::other("load thread panicked"))??;

    // ---- Verdict.
    let survivor = request_stats(&follower.addr).ok();
    let primary_summary = primary
        .thread
        .join()
        .map_err(|_| io::Error::other("primary thread panicked"))??;
    let survivor_summary = join_node(follower)?;
    Ok(FailoverReport {
        digests_match: ha.digest == baseline.digest,
        failovers: ha.failovers,
        lost_rounds: ha.lost_rounds,
        baseline,
        ha,
        survivor,
        primary_summary,
        survivor_summary,
    })
}

/// Waits for the scripted kill point, then aborts the primary — no
/// farewells, connections just see their peer die.
fn trigger_kill(config: &FailoverConfig, primary: &Node) {
    match config.kill {
        KillPoint::AfterRounds(rounds) => {
            let addr = primary.addr.clone();
            let _ = wait_until(Duration::from_secs(30), || {
                request_stats(&addr).is_ok_and(|s| s.rounds_served >= rounds)
            });
        }
        KillPoint::LagBoundary => {
            // Let some traffic ship first, then pause shipping and wait
            // for at least one appended record the follower provably
            // has not seen.
            let addr = primary.addr.clone();
            let _ = wait_until(Duration::from_secs(30), || {
                request_stats(&addr).is_ok_and(|s| s.rounds_served >= 1)
            });
            primary.handle.repl().log.hold(true);
            let _ = wait_until(Duration::from_secs(10), || {
                primary.handle.repl().log.lag() > 0
            });
        }
        KillPoint::DuringCompaction => {
            let addr = primary.addr.clone();
            let _ = wait_until(Duration::from_secs(30), || {
                request_stats(&addr).is_ok_and(|s| s.store.compactions >= 1)
            });
        }
    }
    primary.handle.abort();
}

/// Polls `done` every 10 ms until it returns true or `budget` elapses.
fn wait_until(budget: Duration, mut done: impl FnMut() -> bool) -> Result<(), ()> {
    let deadline = Instant::now() + budget;
    loop {
        if done() {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(());
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
