//! Feedback-incorporation strategies: FISQL (with and without routing and
//! highlighting) and the Query Rewrite baseline.
//!
//! All strategies share one signature — previous query + feedback in,
//! revised query out — so the experiment driver and benches swap them
//! freely.

use crate::interpret::{interpret, Interpretation};
use fisql_engine::Database;
use fisql_feedback::Feedback;
use fisql_llm::{prompt, BackendResult, FallibleLanguageModel, GenMode, GenRequest, LanguageModel};
use fisql_spider::Example;
use fisql_sqlkit::check::{check_query, render_report, repair_query, Diagnostic};
use fisql_sqlkit::{
    diff_queries, normalize_query, print_query, print_query_spanned, realized_classes,
    same_clause_family, OpClass, Query,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which feedback-incorporation strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// FISQL's two-step prompting (§3.3). `routing` enables feedback-type
    /// identification; `highlighting` uses the user's highlight span for
    /// grounding (Table 3).
    Fisql {
        /// Feedback-type identification on/off (Table 2's ablation).
        routing: bool,
        /// Highlight grounding on/off (Table 3).
        highlighting: bool,
    },
    /// FISQL with *dynamically selected* routing demonstrations (the
    /// paper's §5 future-work extension): instead of the fixed per-type
    /// demonstration set, the most feedback-relevant demonstrations are
    /// retrieved from a tagged pool ([`fisql_llm::RoutingPool`]).
    FisqlDynamic,
    /// The Query Rewrite baseline (§4.1): paraphrase the question to fold
    /// in the feedback, then regenerate from scratch.
    QueryRewrite,
}

impl Strategy {
    /// Canonical display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            } => "FISQL",
            Strategy::Fisql {
                routing: false,
                highlighting: false,
            } => "FISQL (- Routing)",
            Strategy::Fisql {
                routing: true,
                highlighting: true,
            } => "FISQL (+ Highlighting)",
            Strategy::Fisql {
                routing: false,
                highlighting: true,
            } => "FISQL (- Routing, + Highlighting)",
            Strategy::FisqlDynamic => "FISQL (dynamic routing)",
            Strategy::QueryRewrite => "Query Rewrite",
        }
    }
}

/// Everything a strategy needs for one incorporation step.
pub struct IncorporateContext<'a> {
    /// Database under query.
    pub db: &'a Database,
    /// The benchmark example (question + gold + channels).
    pub example: &'a Example,
    /// The question as currently phrased (Query Rewrite mutates this
    /// across rounds).
    pub question: &'a str,
    /// The previous (normalized) prediction.
    pub previous: &'a Query,
    /// The user's feedback this round.
    pub feedback: &'a Feedback,
    /// Round number (0-based).
    pub round: u64,
    /// Run the feedback-conformance gate: diff the candidate against the
    /// previous query and verify the realized edit class (and, with
    /// highlighting, the touched clause) agrees with the routed feedback
    /// type; a non-conformant candidate gets one re-prompt with the
    /// conformance diagnostic folded in.
    pub conformance_gate: bool,
}

/// The result of one incorporation step.
#[derive(Debug, Clone)]
pub struct IncorporateOutcome {
    /// The revised query (normalized).
    pub query: Query,
    /// The question text after this round (changes only for Query
    /// Rewrite).
    pub question: String,
    /// The routed feedback class, when routing ran.
    pub routed: Option<OpClass>,
    /// Interpretation diagnostics (FISQL paths only).
    pub interpretation: Option<Interpretation>,
    /// The full prompt sent to the model (fidelity).
    pub prompt: String,
    /// What the static-analysis gate found (and possibly fixed) in the
    /// candidate before it could reach the engine.
    pub gate: GateOutcome,
    /// What the feedback-conformance gate observed, when it ran (FISQL
    /// paths with routing, `conformance_gate` on).
    pub conformance: Option<ConformanceReport>,
}

/// What the feedback-conformance gate observed for one candidate: whether
/// the edit class realized by the regeneration (per [`diff_queries`])
/// agrees with the class the router predicted from the feedback text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConformanceReport {
    /// The routed feedback class the candidate was checked against.
    pub routed: OpClass,
    /// Whether the first candidate already conformed.
    pub agreed: bool,
    /// Whether a conformance re-prompt was issued.
    pub retried: bool,
    /// Whether the final candidate (after any retry) conformed.
    pub agreed_after_retry: bool,
}

/// What the static-analysis gate ([`gate_candidate`]) did to one
/// candidate query.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Diagnostics the analyzer reported for the candidate (pre-repair).
    pub diagnostics: Vec<Diagnostic>,
    /// Whether a typo-level repair made the candidate analyzer-clean.
    pub repaired: bool,
    /// Engine executions avoided: a repaired candidate skips the failing
    /// run it would otherwise have burned.
    pub executions_saved: u64,
}

impl GateOutcome {
    /// Whether the candidate had error-severity findings (before repair).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }
}

/// Gates a candidate query through the static analyzer before it can
/// reach the engine. Error findings are rendered and folded into the
/// regeneration prompt (so the next round's model sees exactly which
/// names were invalid), and a unique typo-level repair (edit distance
/// ≤ 2 against the schema, names that exist nowhere in it) is applied
/// when it makes the candidate analyzer-clean.
pub fn gate_candidate(
    db: &Database,
    candidate: Query,
    prompt: &mut String,
) -> (Query, GateOutcome) {
    let schema = db.schema_info();
    let diagnostics = check_query(&candidate, &schema);
    if !diagnostics.iter().any(Diagnostic::is_error) {
        return (
            candidate,
            GateOutcome {
                diagnostics,
                ..GateOutcome::default()
            },
        );
    }
    let sql = print_query(&candidate);
    prompt.push_str(&prompt::diagnostics_addendum(&render_report(
        &sql,
        &diagnostics,
    )));
    match repair_query(&candidate, &schema) {
        Some(fixed) => (
            normalize_query(&fixed),
            GateOutcome {
                diagnostics,
                repaired: true,
                executions_saved: 1,
            },
        ),
        None => (
            candidate,
            GateOutcome {
                diagnostics,
                repaired: false,
                executions_saved: 0,
            },
        ),
    }
}

/// Runs one feedback-incorporation step with `strategy` on an
/// *infallible* backend.
///
/// Thin wrapper over [`try_incorporate`]: for a plain [`LanguageModel`]
/// every backend call returns `Ok` through the blanket lift, so the
/// result is unwrapped here once, keeping existing call sites untouched.
pub fn incorporate<L: LanguageModel + ?Sized>(
    strategy: Strategy,
    llm: &L,
    ctx: &IncorporateContext<'_>,
) -> IncorporateOutcome {
    try_incorporate(strategy, llm, ctx).expect("infallible backends cannot return backend errors")
}

/// Runs one feedback-incorporation step with `strategy`, fallibly.
///
/// Generic over the fallible backend surface: the simulated model (via
/// the blanket lift), a faulty/resilient wrapper stack, or a future
/// real-LLM client all drive the same pipeline. A returned error means a
/// backend role failed past any middleware's patience — callers decide
/// whether to degrade (keep the previous round's SQL) or surface it.
pub fn try_incorporate<L: FallibleLanguageModel + ?Sized>(
    strategy: Strategy,
    llm: &L,
    ctx: &IncorporateContext<'_>,
) -> BackendResult<IncorporateOutcome> {
    match strategy {
        Strategy::Fisql {
            routing,
            highlighting,
        } => fisql_step(llm, ctx, routing, highlighting, false),
        Strategy::FisqlDynamic => fisql_step(llm, ctx, true, false, true),
        Strategy::QueryRewrite => rewrite_step(llm, ctx),
    }
}

fn fisql_step<L: FallibleLanguageModel + ?Sized>(
    llm: &L,
    ctx: &IncorporateContext<'_>,
    routing: bool,
    highlighting: bool,
    dynamic: bool,
) -> BackendResult<IncorporateOutcome> {
    // Step 1 (§3.3): feedback-type identification + routed demonstrations
    // (fixed set, or dynamically selected — the §5 extension).
    let routed = match routing {
        true => Some(llm.try_classify_feedback(&ctx.feedback.text, ctx.round)?),
        false => None,
    };
    let type_demos: Vec<String> = match routed {
        Some(class) if dynamic => builtin_pool().select(class, &ctx.feedback.text, ctx.previous, 2),
        Some(class) => prompt::type_demonstrations(class),
        None => Vec::new(),
    };

    // Step 2: the regeneration prompt (Figure 6), built for fidelity.
    let prompt_text = prompt::feedback_prompt(
        ctx.db,
        &[],
        &type_demos,
        ctx.question,
        &print_query(ctx.previous),
        &ctx.feedback.text,
    );

    // Interpret the feedback against the previous query.
    let mut rng = StdRng::seed_from_u64(
        0x1E27 ^ (ctx.example.id as u64).rotate_left(13) ^ ctx.round.rotate_left(29),
    );
    let highlight = if highlighting {
        ctx.feedback.highlight
    } else {
        None
    };
    let interp = interpret(
        &ctx.feedback.text,
        ctx.previous,
        ctx.db,
        routed,
        highlight,
        &mut rng,
    );

    let candidate = || -> BackendResult<Query> {
        if interp.edits.is_empty() {
            // Interpretation failure: the model regenerates essentially
            // the same query (paper error cause (b)).
            return Ok(ctx.previous.clone());
        }
        let p = llm.try_edit_success_prob(routing, dynamic)?
            * llm.try_edit_complexity_factor(&interp.edits)?;
        let applied = llm.try_apply_feedback_edit_with_prob(
            ctx.previous,
            &interp.edits,
            p,
            ctx.example.id,
            ctx.round,
        )?;
        Ok(normalize_query(&applied))
    };
    let mut query = candidate()?;
    let mut prompt_text = prompt_text;

    // Feedback-conformance gate: the realized edit class (diff of previous
    // vs candidate) must agree with the routed class, and — under
    // highlighting — the realized edits must touch the clause the user
    // highlighted. A no-op candidate (empty diff) is cause-(b)
    // non-conformance whenever the router predicted any change.
    let conformance = match (ctx.conformance_gate, routed) {
        (true, Some(routed_class)) => {
            let conforms = |q: &Query| {
                let realized = diff_queries(ctx.previous, q);
                let classes = realized_classes(&realized);
                if !classes.contains(&routed_class) {
                    return false;
                }
                let span_ok = match highlight {
                    Some(h) => {
                        let spanned = print_query_spanned(ctx.previous);
                        match spanned.clause_at(h) {
                            Some(path) => realized
                                .iter()
                                .any(|e| same_clause_family(&e.clause(), path)),
                            None => true,
                        }
                    }
                    None => true,
                };
                span_ok
            };
            let agreed = conforms(&query);
            let mut report = ConformanceReport {
                routed: routed_class,
                agreed,
                retried: false,
                agreed_after_retry: agreed,
            };
            if !agreed {
                report.retried = true;
                let realized = realized_classes(&diff_queries(ctx.previous, &query));
                prompt_text.push_str(&prompt::conformance_addendum(
                    &routed_class.to_string(),
                    &realized.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
                ));
                // One re-prompt. Deterministic backends reproduce the same
                // candidate (the report still records the retry); if the
                // retry dies in a faulty backend, keep the first candidate
                // rather than fail the whole round.
                if let Ok(second) = candidate() {
                    query = second;
                }
                report.agreed_after_retry = conforms(&query);
            }
            Some(report)
        }
        _ => None,
    };

    let (query, gate) = gate_candidate(ctx.db, query, &mut prompt_text);

    Ok(IncorporateOutcome {
        query,
        question: ctx.question.to_string(),
        routed,
        interpretation: Some(interp),
        prompt: prompt_text,
        gate,
        conformance,
    })
}

/// The built-in routing pool, embedded once per process (building it per
/// incorporation step would re-embed every demonstration each round).
fn builtin_pool() -> &'static fisql_llm::RoutingPool {
    use std::sync::OnceLock;
    static POOL: OnceLock<fisql_llm::RoutingPool> = OnceLock::new();
    POOL.get_or_init(fisql_llm::RoutingPool::builtin)
}

fn rewrite_step<L: FallibleLanguageModel + ?Sized>(
    llm: &L,
    ctx: &IncorporateContext<'_>,
) -> BackendResult<IncorporateOutcome> {
    // Paraphrase the question to absorb the feedback …
    let new_question = llm.try_rewrite_question(ctx.question, &ctx.feedback.text)?;
    let prompt_text = prompt::rewrite_prompt(ctx.question, &ctx.feedback.text);
    // … then regenerate from scratch. The regeneration resamples the
    // comprehension model: hints now present in the question resolve their
    // channels, but every *other* channel refires independently — the
    // mechanism behind the baseline's weakness.
    let generation = llm.try_generate_sql(&GenRequest {
        example: ctx.example,
        demos: 3,
        hint_text: &new_question,
        salt: 1000 + ctx.round,
        mode: GenMode::Rewrite,
    })?;
    let mut prompt_text = prompt_text;
    let (query, gate) =
        gate_candidate(ctx.db, normalize_query(&generation.query), &mut prompt_text);
    Ok(IncorporateOutcome {
        query,
        question: new_question,
        routed: None,
        interpretation: None,
        prompt: prompt_text,
        gate,
        conformance: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_feedback::Feedback;
    use fisql_llm::{Calibration, LlmConfig, SimLlm};
    use fisql_spider::{build_aep, AepConfig};
    use fisql_sqlkit::{parse_query, structurally_equal};

    fn flawless_llm() -> SimLlm {
        SimLlm::new(LlmConfig {
            seed: 1,
            calibration: Calibration {
                router_noise: 0.0,
                edit_apply_with_routing: 1.0,
                edit_apply_without_routing: 1.0,
                ..Default::default()
            },
        })
    }

    #[test]
    fn fisql_fixes_the_figure4_flagship() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(
            &parse_query(
                "SELECT COUNT(*) FROM hkg_dim_segment \
                 WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
            )
            .unwrap(),
        );
        let fb = Feedback {
            text: "we are in 2024".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: false,
            },
        );
        assert!(
            structurally_equal(&out.query, &e.gold),
            "got {}",
            print_query(&out.query)
        );
        assert_eq!(out.routed, Some(OpClass::Edit));
        assert!(out.prompt.contains("we are in 2024"));
    }

    #[test]
    fn conformance_gate_reports_agreement_on_good_edit() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(
            &parse_query(
                "SELECT COUNT(*) FROM hkg_dim_segment \
                 WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
            )
            .unwrap(),
        );
        let fb = Feedback {
            text: "we are in 2024".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: true,
            },
        );
        let report = out.conformance.expect("gate should have run");
        assert_eq!(report.routed, OpClass::Edit);
        assert!(report.agreed);
        assert!(!report.retried);
        assert!(report.agreed_after_retry);
        // The agreeing path must not pollute the prompt.
        assert!(!out.prompt.contains("conformance"), "{}", out.prompt);
    }

    #[test]
    fn conformance_gate_retries_on_noop_candidate() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(&e.gold);
        // Routable but ungroundable: the router sees an Edit-type
        // feedback, the interpreter finds nothing to change, so the
        // candidate is a no-op — cause-(b) non-conformance.
        let fb = Feedback {
            text: "change the frobnication coefficient".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: true,
            },
        );
        let report = out.conformance.expect("gate should have run");
        assert!(!report.agreed);
        assert!(report.retried);
        // Deterministic backend: the retry reproduces the no-op.
        assert!(!report.agreed_after_retry);
        assert!(structurally_equal(&out.query, &previous));
        assert!(
            out.prompt.contains("revision"),
            "conformance addendum missing from prompt: {}",
            out.prompt
        );
    }

    #[test]
    fn conformance_gate_off_reports_nothing() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(&e.gold);
        let fb = Feedback {
            text: "we are in 2024".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: false,
            },
        );
        assert!(out.conformance.is_none());
    }

    #[test]
    fn rewrite_step_changes_question() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(&e.gold);
        let fb = Feedback {
            text: "we are in 2024".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::QueryRewrite,
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: false,
            },
        );
        assert!(out.question.contains("2024"));
        assert!(out.question.contains("January"));
        assert!(out.interpretation.is_none());
    }

    #[test]
    fn gate_repairs_typo_and_annotates_prompt() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let db = corpus.database(e);
        // `createdTme` exists nowhere in the schema; its unique nearest
        // schema name within distance 2 is `createdTime`.
        let candidate =
            parse_query("SELECT COUNT(*) FROM hkg_dim_segment WHERE createdTme >= '2024-01-01'")
                .unwrap();
        let mut prompt = String::from("base prompt");
        let (fixed, gate) = gate_candidate(db, candidate, &mut prompt);
        assert!(gate.has_errors());
        assert!(gate.repaired);
        assert_eq!(gate.executions_saved, 1);
        // The gate normalizes the repaired query, lowercasing identifiers.
        assert!(print_query(&fixed).contains("createdtime"));
        assert!(prompt.starts_with("base prompt"));
        assert!(prompt.contains("unknown-column"), "{prompt}");
        assert!(prompt.contains("createdTime"), "{prompt}");
    }

    #[test]
    fn gate_leaves_structural_errors_for_feedback() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let db = corpus.database(e);
        // `activation_date` is a real column of another table: that is a
        // missing join, not a typo — the gate must not rename it.
        let candidate = parse_query("SELECT activation_date FROM hkg_dim_segment").unwrap();
        let mut prompt = String::new();
        let (kept, gate) = gate_candidate(db, candidate.clone(), &mut prompt);
        assert!(gate.has_errors());
        assert!(!gate.repaired);
        assert_eq!(kept, candidate);
        assert!(prompt.contains("activation_date"), "{prompt}");
    }

    #[test]
    fn strategy_names_match_paper() {
        assert_eq!(
            Strategy::Fisql {
                routing: true,
                highlighting: false
            }
            .name(),
            "FISQL"
        );
        assert_eq!(
            Strategy::Fisql {
                routing: false,
                highlighting: false
            }
            .name(),
            "FISQL (- Routing)"
        );
        assert_eq!(
            Strategy::Fisql {
                routing: true,
                highlighting: true
            }
            .name(),
            "FISQL (+ Highlighting)"
        );
        assert_eq!(Strategy::QueryRewrite.name(), "Query Rewrite");
    }
}
