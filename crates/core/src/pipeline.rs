//! Feedback-incorporation strategies: FISQL (with and without routing and
//! highlighting) and the Query Rewrite baseline.
//!
//! All strategies share one signature — previous query + feedback in,
//! revised query out — so the experiment driver and benches swap them
//! freely.

use crate::interpret::{interpret, interpret_candidates, Interpretation};
use fisql_engine::Database;
use fisql_feedback::Feedback;
use fisql_llm::{
    prompt, routing_alignment, BackendResult, FallibleLanguageModel, GenMode, GenRequest,
    LanguageModel,
};
use fisql_spider::Example;
use fisql_sqlkit::check::{check_query, render_report, repair_query, Diagnostic, SchemaInfo};
use fisql_sqlkit::{
    apply_edits, diff_queries, enumerate_repairs, literal_year, locate_faults, normalize_query,
    print_query, print_query_spanned, prune_candidates, realized_classes, same_clause_family, Expr,
    FeedbackCues, Literal, LocateOptions, OpClass, Query, RepairCandidate,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which feedback-incorporation strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// FISQL's two-step prompting (§3.3). `routing` enables feedback-type
    /// identification; `highlighting` uses the user's highlight span for
    /// grounding (Table 3).
    Fisql {
        /// Feedback-type identification on/off (Table 2's ablation).
        routing: bool,
        /// Highlight grounding on/off (Table 3).
        highlighting: bool,
    },
    /// FISQL with *dynamically selected* routing demonstrations (the
    /// paper's §5 future-work extension): instead of the fixed per-type
    /// demonstration set, the most feedback-relevant demonstrations are
    /// retrieved from a tagged pool ([`fisql_llm::RoutingPool`]).
    FisqlDynamic,
    /// The Query Rewrite baseline (§4.1): paraphrase the question to fold
    /// in the feedback, then regenerate from scratch.
    QueryRewrite,
    /// Static fault localization + structure-preserving repair search:
    /// rank fault sites from analyzer/flow/feedback evidence, enumerate
    /// minimal candidate edits, prune statically (abstract
    /// interpretation and equivalence proofs), and beam-search the
    /// survivors by a static closeness score. The engine is touched only
    /// by the runner's final validation — never inside the strategy.
    SearchRefine,
}

impl Strategy {
    /// Canonical display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            } => "FISQL",
            Strategy::Fisql {
                routing: false,
                highlighting: false,
            } => "FISQL (- Routing)",
            Strategy::Fisql {
                routing: true,
                highlighting: true,
            } => "FISQL (+ Highlighting)",
            Strategy::Fisql {
                routing: false,
                highlighting: true,
            } => "FISQL (- Routing, + Highlighting)",
            Strategy::FisqlDynamic => "FISQL (dynamic routing)",
            Strategy::QueryRewrite => "Query Rewrite",
            Strategy::SearchRefine => "SearchRefine",
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parses the CLI spelling of a strategy (`fisql`, `dynamic`,
    /// `rewrite`, `search`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fisql" => Ok(Strategy::Fisql {
                routing: true,
                highlighting: false,
            }),
            "dynamic" => Ok(Strategy::FisqlDynamic),
            "rewrite" => Ok(Strategy::QueryRewrite),
            "search" => Ok(Strategy::SearchRefine),
            other => Err(format!(
                "unknown strategy {other:?} (expected fisql, dynamic, rewrite, or search)"
            )),
        }
    }
}

/// Everything a strategy needs for one incorporation step.
pub struct IncorporateContext<'a> {
    /// Database under query.
    pub db: &'a Database,
    /// The benchmark example (question + gold + channels).
    pub example: &'a Example,
    /// The question as currently phrased (Query Rewrite mutates this
    /// across rounds).
    pub question: &'a str,
    /// The previous (normalized) prediction.
    pub previous: &'a Query,
    /// The user's feedback this round.
    pub feedback: &'a Feedback,
    /// Round number (0-based).
    pub round: u64,
    /// Run the feedback-conformance gate: diff the candidate against the
    /// previous query and verify the realized edit class (and, with
    /// highlighting, the touched clause) agrees with the routed feedback
    /// type; a non-conformant candidate gets one re-prompt with the
    /// conformance diagnostic folded in.
    pub conformance_gate: bool,
}

/// The result of one incorporation step.
#[derive(Debug, Clone)]
pub struct IncorporateOutcome {
    /// The revised query (normalized).
    pub query: Query,
    /// The question text after this round (changes only for Query
    /// Rewrite).
    pub question: String,
    /// The routed feedback class, when routing ran.
    pub routed: Option<OpClass>,
    /// Interpretation diagnostics (FISQL paths only).
    pub interpretation: Option<Interpretation>,
    /// The full prompt sent to the model (fidelity).
    pub prompt: String,
    /// What the static-analysis gate found (and possibly fixed) in the
    /// candidate before it could reach the engine.
    pub gate: GateOutcome,
    /// What the feedback-conformance gate observed, when it ran (FISQL
    /// paths with routing, `conformance_gate` on).
    pub conformance: Option<ConformanceReport>,
    /// What the repair search did, when the strategy was
    /// [`Strategy::SearchRefine`].
    pub search: Option<SearchReport>,
}

/// Accounting for one search-refine step: how many fault sites were
/// localized, how many candidates were enumerated, how many the static
/// pruner removed before any execution, and how many survivors the beam
/// search chose among. The runner folds `pruned_static` into
/// `executions_skipped_static` and the non-chosen survivors into
/// `executions_saved` — each is a candidate a generate-and-test loop
/// would have run against the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchReport {
    /// Ranked fault sites localized in the previous query.
    pub sites: u64,
    /// Repair candidates enumerated across all search rounds.
    pub enumerated: u64,
    /// Candidates removed statically (contradictory, invalid, or proven
    /// equivalent) — executions a generate-and-test loop would have
    /// burned.
    pub pruned_static: u64,
    /// Candidates that survived static pruning (the beam pool).
    pub survivors: u64,
    /// Beam members expanded with a second localization round.
    pub expanded: u64,
    /// Static closeness score of the chosen candidate (0 when no
    /// candidate survived and the previous query was kept).
    pub score: i64,
    /// Generator label of the chosen candidate (`"none"` when no
    /// candidate survived).
    pub chosen: &'static str,
}

/// What the feedback-conformance gate observed for one candidate: whether
/// the edit class realized by the regeneration (per [`diff_queries`])
/// agrees with the class the router predicted from the feedback text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConformanceReport {
    /// The routed feedback class the candidate was checked against.
    pub routed: OpClass,
    /// Whether the first candidate already conformed.
    pub agreed: bool,
    /// Whether a conformance re-prompt was issued.
    pub retried: bool,
    /// Whether the final candidate (after any retry) conformed.
    pub agreed_after_retry: bool,
}

/// What the static-analysis gate ([`gate_candidate`]) did to one
/// candidate query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GateOutcome {
    /// Diagnostics the analyzer reported for the candidate (pre-repair).
    pub diagnostics: Vec<Diagnostic>,
    /// Whether a typo-level repair made the candidate analyzer-clean.
    pub repaired: bool,
    /// Engine executions avoided: a repaired candidate skips the failing
    /// run it would otherwise have burned.
    pub executions_saved: u64,
}

impl GateOutcome {
    /// Whether the candidate had error-severity findings (before repair).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }
}

/// Gates a candidate query through the static analyzer before it can
/// reach the engine. Error findings are rendered and folded into the
/// regeneration prompt (so the next round's model sees exactly which
/// names were invalid), and a unique typo-level repair (edit distance
/// ≤ 2 against the schema, names that exist nowhere in it) is applied
/// when it makes the candidate analyzer-clean.
pub fn gate_candidate(
    db: &Database,
    candidate: Query,
    prompt: &mut String,
) -> (Query, GateOutcome) {
    let schema = db.schema_info();
    let diagnostics = check_query(&candidate, &schema);
    if !diagnostics.iter().any(Diagnostic::is_error) {
        return (
            candidate,
            GateOutcome {
                diagnostics,
                ..GateOutcome::default()
            },
        );
    }
    let sql = print_query(&candidate);
    prompt.push_str(&prompt::diagnostics_addendum(&render_report(
        &sql,
        &diagnostics,
    )));
    match repair_query(&candidate, &schema) {
        Some(fixed) => (
            normalize_query(&fixed),
            GateOutcome {
                diagnostics,
                repaired: true,
                executions_saved: 1,
            },
        ),
        None => (
            candidate,
            GateOutcome {
                diagnostics,
                repaired: false,
                executions_saved: 0,
            },
        ),
    }
}

/// Runs one feedback-incorporation step with `strategy` on an
/// *infallible* backend.
///
/// Thin wrapper over [`try_incorporate`]: for a plain [`LanguageModel`]
/// every backend call returns `Ok` through the blanket lift, so the
/// result is unwrapped here once, keeping existing call sites untouched.
pub fn incorporate<L: LanguageModel + ?Sized>(
    strategy: Strategy,
    llm: &L,
    ctx: &IncorporateContext<'_>,
) -> IncorporateOutcome {
    try_incorporate(strategy, llm, ctx).expect("infallible backends cannot return backend errors")
}

/// Runs one feedback-incorporation step with `strategy`, fallibly.
///
/// Generic over the fallible backend surface: the simulated model (via
/// the blanket lift), a faulty/resilient wrapper stack, or a future
/// real-LLM client all drive the same pipeline. A returned error means a
/// backend role failed past any middleware's patience — callers decide
/// whether to degrade (keep the previous round's SQL) or surface it.
pub fn try_incorporate<L: FallibleLanguageModel + ?Sized>(
    strategy: Strategy,
    llm: &L,
    ctx: &IncorporateContext<'_>,
) -> BackendResult<IncorporateOutcome> {
    match strategy {
        Strategy::Fisql {
            routing,
            highlighting,
        } => fisql_step(llm, ctx, routing, highlighting, false),
        Strategy::FisqlDynamic => fisql_step(llm, ctx, true, false, true),
        Strategy::QueryRewrite => rewrite_step(llm, ctx),
        Strategy::SearchRefine => search_step(llm, ctx),
    }
}

fn fisql_step<L: FallibleLanguageModel + ?Sized>(
    llm: &L,
    ctx: &IncorporateContext<'_>,
    routing: bool,
    highlighting: bool,
    dynamic: bool,
) -> BackendResult<IncorporateOutcome> {
    // Step 1 (§3.3): feedback-type identification + routed demonstrations
    // (fixed set, or dynamically selected — the §5 extension).
    let routed = if routing {
        Some(llm.try_classify_feedback(&ctx.feedback.text, ctx.round)?)
    } else {
        None
    };
    let type_demos: Vec<String> = match routed {
        Some(class) if dynamic => builtin_pool().select(class, &ctx.feedback.text, ctx.previous, 2),
        Some(class) => prompt::type_demonstrations(class),
        None => Vec::new(),
    };

    // Step 2: the regeneration prompt (Figure 6), built for fidelity.
    let prompt_text = prompt::feedback_prompt(
        ctx.db,
        &[],
        &type_demos,
        ctx.question,
        &print_query(ctx.previous),
        &ctx.feedback.text,
    );

    // Interpret the feedback against the previous query.
    let mut rng = StdRng::seed_from_u64(
        0x1E27 ^ (ctx.example.id as u64).rotate_left(13) ^ ctx.round.rotate_left(29),
    );
    let highlight = if highlighting {
        ctx.feedback.highlight
    } else {
        None
    };
    let interp = interpret(
        &ctx.feedback.text,
        ctx.previous,
        ctx.db,
        routed,
        highlight,
        &mut rng,
    );

    let candidate = || -> BackendResult<Query> {
        if interp.edits.is_empty() {
            // Interpretation failure: the model regenerates essentially
            // the same query (paper error cause (b)).
            return Ok(ctx.previous.clone());
        }
        let p = llm.try_edit_success_prob(routing, dynamic)?
            * llm.try_edit_complexity_factor(&interp.edits)?;
        let applied = llm.try_apply_feedback_edit_with_prob(
            ctx.previous,
            &interp.edits,
            p,
            ctx.example.id,
            ctx.round,
        )?;
        Ok(normalize_query(&applied))
    };
    let mut query = candidate()?;
    let mut prompt_text = prompt_text;

    // Feedback-conformance gate: the realized edit class (diff of previous
    // vs candidate) must agree with the routed class, and — under
    // highlighting — the realized edits must touch the clause the user
    // highlighted. A no-op candidate (empty diff) is cause-(b)
    // non-conformance whenever the router predicted any change.
    let conformance = match (ctx.conformance_gate, routed) {
        (true, Some(routed_class)) => {
            let conforms = |q: &Query| {
                // A candidate canonically equivalent to the previous
                // query is a semantic no-op regardless of its spelling —
                // cause-(b) non-conformance just like an empty diff.
                if fisql_sqlkit::canonically_equivalent(ctx.previous, q) {
                    return false;
                }
                let realized = diff_queries(ctx.previous, q);
                let classes = realized_classes(&realized);
                if !classes.contains(&routed_class) {
                    return false;
                }
                let span_ok = match highlight {
                    Some(h) => {
                        let spanned = print_query_spanned(ctx.previous);
                        match spanned.clause_at(h) {
                            Some(path) => realized
                                .iter()
                                .any(|e| same_clause_family(&e.clause(), path)),
                            None => true,
                        }
                    }
                    None => true,
                };
                span_ok
            };
            let agreed = conforms(&query);
            let mut report = ConformanceReport {
                routed: routed_class,
                agreed,
                retried: false,
                agreed_after_retry: agreed,
            };
            if !agreed {
                report.retried = true;
                let realized = realized_classes(&diff_queries(ctx.previous, &query));
                prompt_text.push_str(&prompt::conformance_addendum(
                    &routed_class.to_string(),
                    &realized.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
                ));
                // One re-prompt. Deterministic backends reproduce the same
                // candidate (the report still records the retry); if the
                // retry dies in a faulty backend, keep the first candidate
                // rather than fail the whole round.
                if let Ok(second) = candidate() {
                    query = second;
                }
                report.agreed_after_retry = conforms(&query);
            }
            Some(report)
        }
        _ => None,
    };

    let (query, gate) = gate_candidate(ctx.db, query, &mut prompt_text);

    Ok(IncorporateOutcome {
        query,
        question: ctx.question.to_string(),
        routed,
        interpretation: Some(interp),
        prompt: prompt_text,
        gate,
        conformance,
        search: None,
    })
}

/// The built-in routing pool, embedded once per process (building it per
/// incorporation step would re-embed every demonstration each round).
fn builtin_pool() -> &'static fisql_llm::RoutingPool {
    use std::sync::OnceLock;
    static POOL: OnceLock<fisql_llm::RoutingPool> = OnceLock::new();
    POOL.get_or_init(fisql_llm::RoutingPool::builtin)
}

/// Beam width of the repair search: survivors re-localized in round two.
const BEAM_WIDTH: usize = 4;

fn search_step<L: FallibleLanguageModel + ?Sized>(
    llm: &L,
    ctx: &IncorporateContext<'_>,
) -> BackendResult<IncorporateOutcome> {
    // The backend's only role here is feedback-type classification; every
    // later step is pure static analysis, so the whole strategy is
    // deterministic in (query, feedback, schema) — a requirement for the
    // runner's bit-identical-reports contract.
    let routed = llm.try_classify_feedback(&ctx.feedback.text, ctx.round)?;
    let schema = ctx.db.schema_info();
    let highlight = ctx.feedback.highlight;
    let previous = normalize_query(ctx.previous);

    // Localize: rank fault sites from analyzer, flow, feedback, and
    // highlight evidence; mine the feedback for repair material.
    let sites = locate_faults(
        &previous,
        &schema,
        LocateOptions {
            feedback: Some(&ctx.feedback.text),
            highlight,
        },
    );
    let cues = FeedbackCues::extract(&ctx.feedback.text, &schema);

    // Enumerate: site-driven repairs, plus the feedback interpreter's
    // full candidate pool (the same pool `interpret` samples one member
    // from) re-expressed as repair candidates. Interpreter candidates
    // carry the out-of-range site index `sites.len()` so diagnostics can
    // tell the two generators apart.
    let mut pool = enumerate_repairs(&previous, &schema, &sites, &cues);
    for cand in interpret_candidates(
        &ctx.feedback.text,
        &previous,
        ctx.db,
        Some(routed),
        highlight,
    ) {
        if let Ok(query) = apply_edits(&previous, &cand.edits) {
            pool.push(RepairCandidate {
                query,
                edits: cand.edits,
                site: sites.len(),
                label: cand.label,
            });
        }
    }
    let enumerated_round1 = pool.len() as u64;

    // Prune: abstract interpretation (contradictory/empty), analyzer
    // (invalid names), and the equivalence oracle (no-ops, duplicates)
    // drop candidates before anything can reach the engine.
    let outcome = prune_candidates(&previous, pool, &schema);
    let mut pruned_static = outcome.pruned_static();
    let mut survivors = outcome.kept;

    let score_of = |cand: &RepairCandidate| closeness(&previous, cand, &cues, routed, &schema);
    let rank = |pool: &mut Vec<RepairCandidate>| {
        pool.sort_by_cached_key(|c| (std::cmp::Reverse(score_of(c)), print_query(&c.query)));
    };
    rank(&mut survivors);

    // Expand: a second localization round on the top beam members, so
    // multi-edit faults (join + literal, table + column) are reachable.
    // Second-round candidates are re-pruned against the *original* query
    // and the accumulated pool, then ranked into it.
    let beam: Vec<RepairCandidate> = survivors.iter().take(BEAM_WIDTH).cloned().collect();
    let mut enumerated_round2 = 0u64;
    for member in &beam {
        let member_sites = locate_faults(
            &member.query,
            &schema,
            LocateOptions {
                feedback: Some(&ctx.feedback.text),
                highlight: None,
            },
        );
        let expansions = enumerate_repairs(&member.query, &schema, &member_sites, &cues);
        enumerated_round2 += expansions.len() as u64;
        let expansions: Vec<RepairCandidate> = expansions
            .into_iter()
            .map(|e| RepairCandidate {
                query: e.query,
                edits: member.edits.iter().cloned().chain(e.edits).collect(),
                site: member.site,
                label: e.label,
            })
            .collect();
        let second = prune_candidates(&previous, expansions, &schema);
        pruned_static += second.pruned_static();
        for cand in second.kept {
            let duplicate = survivors.iter().any(|k| k.query == cand.query);
            if duplicate {
                pruned_static += 1;
            } else {
                survivors.push(cand);
            }
        }
    }
    rank(&mut survivors);

    let report = SearchReport {
        sites: sites.len() as u64,
        enumerated: enumerated_round1 + enumerated_round2,
        pruned_static,
        survivors: survivors.len() as u64,
        expanded: beam.len() as u64,
        score: survivors.first().map(&score_of).unwrap_or(0),
        chosen: survivors.first().map(|c| c.label).unwrap_or("none"),
    };

    // Choose: the top-ranked survivor goes to the runner's validator; an
    // empty pool keeps the previous query (interpretation failure, the
    // paper's error cause (b)).
    let chosen = survivors
        .into_iter()
        .next()
        .map(|c| c.query)
        .unwrap_or_else(|| previous.clone());

    let mut prompt_text = prompt::feedback_prompt(
        ctx.db,
        &[],
        &[],
        ctx.question,
        &print_query(&previous),
        &ctx.feedback.text,
    );
    let (query, gate) = gate_candidate(ctx.db, chosen, &mut prompt_text);

    Ok(IncorporateOutcome {
        query,
        question: ctx.question.to_string(),
        routed: Some(routed),
        interpretation: None,
        prompt: prompt_text,
        gate,
        conformance: None,
        search: Some(report),
    })
}

/// Static closeness score for one repair candidate: cue coverage
/// dominates, routed-class agreement breaks coverage ties, and edit
/// count plus analyzer warnings act as minimality penalties. Integer
/// arithmetic throughout — scores must be exactly reproducible.
pub(crate) fn closeness(
    previous: &Query,
    cand: &RepairCandidate,
    cues: &FeedbackCues,
    routed: OpClass,
    schema: &SchemaInfo,
) -> i64 {
    let realized = realized_classes(&diff_queries(previous, &cand.query));
    let coverage = cue_coverage(&cand.query, cues);
    let warnings = check_query(&cand.query, schema).len() as i64;
    coverage * 30 + routing_alignment(routed, &realized) * 12
        - 3 * (cand.edits.len() as i64)
        - 2 * warnings
}

/// Counts how many of the feedback's cues the candidate query satisfies:
/// mentioned years appear as literal years, numbers as numeric literals
/// or the LIMIT count, strings as string literals, schema entities as
/// referenced tables/columns, plus aggregate, sort-direction, and LIMIT
/// expectations.
fn cue_coverage(query: &Query, cues: &FeedbackCues) -> i64 {
    let mut literals: Vec<Literal> = Vec::new();
    let mut columns: Vec<String> = Vec::new();
    let mut funcs: Vec<fisql_sqlkit::Func> = Vec::new();
    for_each_expr(query, &mut |e| match e {
        Expr::Literal(lit) => literals.push(lit.clone()),
        Expr::Column(c) => columns.push(c.column.to_lowercase()),
        Expr::Call { func, .. } => funcs.push(*func),
        _ => {}
    });
    let tables = query.all_table_names();

    let mut satisfied = 0i64;
    for year in &cues.years {
        if literals.iter().any(|l| literal_year(l) == Some(*year)) {
            satisfied += 1;
        }
    }
    for n in &cues.numbers {
        let as_literal = literals
            .iter()
            .any(|l| matches!(l, Literal::Number(v) if v == n));
        let as_limit = *n >= 0 && query.limit.is_some_and(|l| l.count == *n as u64);
        if as_literal || as_limit {
            satisfied += 1;
        }
    }
    for s in &cues.strings {
        if literals
            .iter()
            .any(|l| matches!(l, Literal::String(v) if v.eq_ignore_ascii_case(s)))
        {
            satisfied += 1;
        }
    }
    for t in &cues.tables {
        if tables.iter().any(|n| n.eq_ignore_ascii_case(t)) {
            satisfied += 1;
        }
    }
    for c in &cues.columns {
        if columns.iter().any(|n| n.eq_ignore_ascii_case(c)) {
            satisfied += 1;
        }
    }
    for agg in &cues.aggregates {
        if funcs.contains(agg) {
            satisfied += 1;
        }
    }
    if cues.ascending && query.order_by.iter().any(|o| !o.desc) {
        satisfied += 1;
    }
    if cues.descending && query.order_by.iter().any(|o| o.desc) {
        satisfied += 1;
    }
    if cues.limit_hint && query.limit.is_some() {
        satisfied += 1;
    }
    satisfied
}

/// Visits every expression in every core's SELECT list, WHERE, GROUP BY,
/// and HAVING, plus the trailing ORDER BY keys (subquery interiors are
/// reached through [`Expr::walk`]'s own contract).
fn for_each_expr(query: &Query, f: &mut impl FnMut(&Expr)) {
    for core in query.cores() {
        for item in &core.items {
            if let fisql_sqlkit::SelectItem::Expr { expr, .. } = item {
                expr.walk(f);
            }
        }
        if let Some(w) = &core.where_clause {
            w.walk(f);
        }
        for g in &core.group_by {
            g.walk(f);
        }
        if let Some(h) = &core.having {
            h.walk(f);
        }
    }
    for o in &query.order_by {
        o.expr.walk(f);
    }
}

fn rewrite_step<L: FallibleLanguageModel + ?Sized>(
    llm: &L,
    ctx: &IncorporateContext<'_>,
) -> BackendResult<IncorporateOutcome> {
    // Paraphrase the question to absorb the feedback …
    let new_question = llm.try_rewrite_question(ctx.question, &ctx.feedback.text)?;
    let prompt_text = prompt::rewrite_prompt(ctx.question, &ctx.feedback.text);
    // … then regenerate from scratch. The regeneration resamples the
    // comprehension model: hints now present in the question resolve their
    // channels, but every *other* channel refires independently — the
    // mechanism behind the baseline's weakness.
    let generation = llm.try_generate_sql(&GenRequest {
        example: ctx.example,
        demos: 3,
        hint_text: &new_question,
        salt: 1000 + ctx.round,
        mode: GenMode::Rewrite,
    })?;
    let mut prompt_text = prompt_text;
    let (query, gate) =
        gate_candidate(ctx.db, normalize_query(&generation.query), &mut prompt_text);
    Ok(IncorporateOutcome {
        query,
        question: new_question,
        routed: None,
        interpretation: None,
        prompt: prompt_text,
        gate,
        conformance: None,
        search: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_feedback::Feedback;
    use fisql_llm::{Calibration, LlmConfig, SimLlm};
    use fisql_spider::{build_aep, AepConfig};
    use fisql_sqlkit::{parse_query, structurally_equal};

    fn flawless_llm() -> SimLlm {
        SimLlm::new(LlmConfig {
            seed: 1,
            calibration: Calibration {
                router_noise: 0.0,
                edit_apply_with_routing: 1.0,
                edit_apply_without_routing: 1.0,
                ..Default::default()
            },
        })
    }

    #[test]
    fn fisql_fixes_the_figure4_flagship() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(
            &parse_query(
                "SELECT COUNT(*) FROM hkg_dim_segment \
                 WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
            )
            .unwrap(),
        );
        let fb = Feedback {
            text: "we are in 2024".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: false,
            },
        );
        assert!(
            structurally_equal(&out.query, &e.gold),
            "got {}",
            print_query(&out.query)
        );
        assert_eq!(out.routed, Some(OpClass::Edit));
        assert!(out.prompt.contains("we are in 2024"));
    }

    #[test]
    fn conformance_gate_reports_agreement_on_good_edit() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(
            &parse_query(
                "SELECT COUNT(*) FROM hkg_dim_segment \
                 WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
            )
            .unwrap(),
        );
        let fb = Feedback {
            text: "we are in 2024".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: true,
            },
        );
        let report = out.conformance.expect("gate should have run");
        assert_eq!(report.routed, OpClass::Edit);
        assert!(report.agreed);
        assert!(!report.retried);
        assert!(report.agreed_after_retry);
        // The agreeing path must not pollute the prompt.
        assert!(!out.prompt.contains("conformance"), "{}", out.prompt);
    }

    #[test]
    fn conformance_gate_retries_on_noop_candidate() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(&e.gold);
        // Routable but ungroundable: the router sees an Edit-type
        // feedback, the interpreter finds nothing to change, so the
        // candidate is a no-op — cause-(b) non-conformance.
        let fb = Feedback {
            text: "change the frobnication coefficient".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: true,
            },
        );
        let report = out.conformance.expect("gate should have run");
        assert!(!report.agreed);
        assert!(report.retried);
        // Deterministic backend: the retry reproduces the no-op.
        assert!(!report.agreed_after_retry);
        assert!(structurally_equal(&out.query, &previous));
        assert!(
            out.prompt.contains("revision"),
            "conformance addendum missing from prompt: {}",
            out.prompt
        );
    }

    #[test]
    fn conformance_gate_off_reports_nothing() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(&e.gold);
        let fb = Feedback {
            text: "we are in 2024".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: false,
            },
        );
        assert!(out.conformance.is_none());
    }

    #[test]
    fn rewrite_step_changes_question() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(&e.gold);
        let fb = Feedback {
            text: "we are in 2024".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::QueryRewrite,
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: false,
            },
        );
        assert!(out.question.contains("2024"));
        assert!(out.question.contains("January"));
        assert!(out.interpretation.is_none());
    }

    #[test]
    fn search_refine_fixes_the_figure4_flagship() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(
            &parse_query(
                "SELECT COUNT(*) FROM hkg_dim_segment \
                 WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
            )
            .unwrap(),
        );
        let fb = Feedback {
            text: "we are in 2024".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::SearchRefine,
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: false,
            },
        );
        assert!(
            structurally_equal(&out.query, &e.gold),
            "got {}",
            print_query(&out.query)
        );
        assert_eq!(out.routed, Some(OpClass::Edit));
        let report = out.search.expect("search report should be present");
        assert!(report.sites >= 1, "no fault sites localized: {report:?}");
        assert!(report.survivors >= 1, "no survivors: {report:?}");
        assert!(
            report.pruned_static >= 1,
            "nothing pruned statically: {report:?}"
        );
        assert_ne!(report.chosen, "none");
        // The strategy itself never touches the engine; the runner's
        // validator does.
        assert!(out.interpretation.is_none());
    }

    #[test]
    fn search_refine_is_deterministic() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(
            &parse_query(
                "SELECT COUNT(*) FROM hkg_dim_segment \
                 WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
            )
            .unwrap(),
        );
        let fb = Feedback {
            text: "we are in 2024".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let ctx = IncorporateContext {
            db: corpus.database(e),
            example: e,
            question: &e.question,
            previous: &previous,
            feedback: &fb,
            round: 0,
            conformance_gate: false,
        };
        let a = incorporate(Strategy::SearchRefine, &flawless_llm(), &ctx);
        let b = incorporate(Strategy::SearchRefine, &flawless_llm(), &ctx);
        assert_eq!(a.query, b.query);
        assert_eq!(a.search, b.search);
    }

    #[test]
    fn search_refine_keeps_previous_on_ungroundable_feedback() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let previous = normalize_query(&e.gold);
        let fb = Feedback {
            text: "change the frobnication coefficient".into(),
            highlight: None,
            intended: vec![],
            misaligned: false,
        };
        let out = incorporate(
            Strategy::SearchRefine,
            &flawless_llm(),
            &IncorporateContext {
                db: corpus.database(e),
                example: e,
                question: &e.question,
                previous: &previous,
                feedback: &fb,
                round: 0,
                conformance_gate: false,
            },
        );
        let report = out.search.expect("search report should be present");
        if report.survivors == 0 {
            assert!(structurally_equal(&out.query, &previous));
            assert_eq!(report.chosen, "none");
            assert_eq!(report.score, 0);
        }
    }

    #[test]
    fn gate_repairs_typo_and_annotates_prompt() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let db = corpus.database(e);
        // `createdTme` exists nowhere in the schema; its unique nearest
        // schema name within distance 2 is `createdTime`.
        let candidate =
            parse_query("SELECT COUNT(*) FROM hkg_dim_segment WHERE createdTme >= '2024-01-01'")
                .unwrap();
        let mut prompt = String::from("base prompt");
        let (fixed, gate) = gate_candidate(db, candidate, &mut prompt);
        assert!(gate.has_errors());
        assert!(gate.repaired);
        assert_eq!(gate.executions_saved, 1);
        // The gate normalizes the repaired query, lowercasing identifiers.
        assert!(print_query(&fixed).contains("createdtime"));
        assert!(prompt.starts_with("base prompt"));
        assert!(prompt.contains("unknown-column"), "{prompt}");
        assert!(prompt.contains("createdTime"), "{prompt}");
    }

    #[test]
    fn gate_leaves_structural_errors_for_feedback() {
        let corpus = build_aep(&AepConfig {
            n_examples: 5,
            seed: 2,
        });
        let e = &corpus.examples[0];
        let db = corpus.database(e);
        // `activation_date` is a real column of another table: that is a
        // missing join, not a typo — the gate must not rename it.
        let candidate = parse_query("SELECT activation_date FROM hkg_dim_segment").unwrap();
        let mut prompt = String::new();
        let (kept, gate) = gate_candidate(db, candidate.clone(), &mut prompt);
        assert!(gate.has_errors());
        assert!(!gate.repaired);
        assert_eq!(kept, candidate);
        assert!(prompt.contains("activation_date"), "{prompt}");
    }

    #[test]
    fn strategy_names_match_paper() {
        assert_eq!(
            Strategy::Fisql {
                routing: true,
                highlighting: false
            }
            .name(),
            "FISQL"
        );
        assert_eq!(
            Strategy::Fisql {
                routing: false,
                highlighting: false
            }
            .name(),
            "FISQL (- Routing)"
        );
        assert_eq!(
            Strategy::Fisql {
                routing: true,
                highlighting: true
            }
            .name(),
            "FISQL (+ Highlighting)"
        );
        assert_eq!(Strategy::QueryRewrite.name(), "Query Rewrite");
        assert_eq!(Strategy::SearchRefine.name(), "SearchRefine");
    }
}
