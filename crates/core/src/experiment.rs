//! Experiment drivers regenerating the paper's evaluation (§4).
//!
//! Each public function corresponds to a step of the paper's protocol:
//!
//! 1. [`zero_shot_report`] — Figure 2's zero-shot accuracy comparison.
//! 2. [`collect_errors`] — run the (few-shot, RAG) Assistant over a
//!    corpus and keep the failures (§4.1: 243/1034 SPIDER errors).
//! 3. [`annotate_errors`] — the simulated user provides feedback where
//!    they can (§4.1: 101 annotated ≈ 41%).
//! 4. [`run_correction`] — multi-round feedback incorporation with a
//!    chosen [`Strategy`], producing the % instances corrected per round
//!    (Tables 2-3, Figure 8).

use crate::assistant::Assistant;
use crate::pipeline::{incorporate, IncorporateContext, Strategy};
use fisql_feedback::{Feedback, SimUser, UserView};
use fisql_llm::SimLlm;
use fisql_spider::{check_prediction, evaluate, AccuracyReport, Corpus, Verdict};
use fisql_sqlkit::{normalize_query, print_query_spanned, Query};
use serde::{Deserialize, Serialize};

/// Figure 2: zero-shot accuracy (no demonstrations, Figure 1 prompt).
pub fn zero_shot_report(corpus: &Corpus, llm: &SimLlm) -> AccuracyReport {
    let assistant = Assistant {
        llm: llm.clone(),
        store: fisql_llm::DemoStore::new(vec![]),
        demos_k: 0,
    };
    let predictions: Vec<(usize, Query)> = corpus
        .examples
        .iter()
        .enumerate()
        .map(|(i, e)| (i, assistant.answer(corpus.database(e), e, 0).query))
        .collect();
    evaluate(
        corpus,
        predictions.iter().map(|(i, q)| (&corpus.examples[*i], q)),
    )
}

/// One collected Assistant error.
#[derive(Debug, Clone)]
pub struct ErrorCase {
    /// Index into the corpus's example list.
    pub example_idx: usize,
    /// The initial (wrong) prediction, normalized.
    pub initial: Query,
    /// Whether the initial prediction failed to execute.
    pub execution_error: bool,
}

/// Runs the production Assistant (few-shot RAG) over the corpus and
/// collects the error cases.
pub fn collect_errors(corpus: &Corpus, llm: &SimLlm, demos_k: usize) -> Vec<ErrorCase> {
    let assistant = Assistant::for_corpus(corpus, llm.clone(), demos_k);
    let mut errors = Vec::new();
    for (i, e) in corpus.examples.iter().enumerate() {
        let db = corpus.database(e);
        let turn = assistant.answer(db, e, 0);
        let verdict = check_prediction(db, e, &turn.query);
        if !verdict.is_correct() {
            errors.push(ErrorCase {
                example_idx: i,
                initial: turn.query,
                execution_error: matches!(verdict, Verdict::ExecutionError { .. }),
            });
        }
    }
    errors
}

/// An error case the simulated user could and did annotate.
#[derive(Debug, Clone)]
pub struct AnnotatedCase {
    /// The underlying error case.
    pub error: ErrorCase,
    /// The round-0 feedback.
    pub feedback: Feedback,
}

/// Asks the simulated user for feedback on every error; keeps the
/// annotatable subset (the paper's 101-of-243).
pub fn annotate_errors(
    corpus: &Corpus,
    errors: &[ErrorCase],
    user: &SimUser,
) -> Vec<AnnotatedCase> {
    let mut out = Vec::new();
    for err in errors {
        let example = &corpus.examples[err.example_idx];
        let db = corpus.database(example);
        let view = build_view(db, example, &err.initial);
        if let Some(feedback) = user.feedback(example, &err.initial, &view, 0) {
            out.push(AnnotatedCase {
                error: err.clone(),
                feedback,
            });
        }
    }
    out
}

fn build_view(
    db: &fisql_engine::Database,
    example: &fisql_spider::Example,
    predicted: &Query,
) -> UserView {
    UserView {
        question: example.question.clone(),
        sql: print_query_spanned(predicted),
        explanation: crate::explain::explain_query(predicted),
        result: fisql_engine::execute(db, predicted)
            .map(|rs| rs.render_grid(10))
            .map_err(|e| e.to_string()),
    }
}

/// Per-round correction report for one strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrectionReport {
    /// Strategy display name.
    pub strategy: String,
    /// Number of annotated cases attempted.
    pub total: usize,
    /// Cumulative corrected counts after round 1, 2, … rounds.
    pub corrected_after_round: Vec<usize>,
    /// Candidates the static analyzer flagged with error-severity
    /// diagnostics before execution (across all rounds).
    #[serde(default)]
    pub statically_flagged: usize,
    /// Candidates the analyzer auto-repaired, i.e. engine executions of a
    /// doomed query that were skipped (across all rounds).
    #[serde(default)]
    pub executions_saved: u64,
}

impl CorrectionReport {
    /// % instances corrected after `round` rounds (1-based).
    pub fn pct_after(&self, round: usize) -> f64 {
        if self.total == 0 || round == 0 {
            return 0.0;
        }
        let idx = (round - 1).min(self.corrected_after_round.len().saturating_sub(1));
        100.0 * self.corrected_after_round[idx] as f64 / self.total as f64
    }
}

/// Runs the multi-round correction protocol (§4.2, Figure 8) for one
/// strategy over the annotated cases.
///
/// Round 0's feedback is the annotation itself; later rounds re-elicit
/// feedback on the revised query. A case counts as corrected at round `r`
/// once its execution result matches gold.
pub fn run_correction(
    corpus: &Corpus,
    cases: &[AnnotatedCase],
    strategy: Strategy,
    rounds: usize,
    llm: &SimLlm,
    user: &SimUser,
) -> CorrectionReport {
    let mut corrected_after_round = vec![0usize; rounds];
    let mut statically_flagged = 0usize;
    let mut executions_saved = 0u64;
    for case in cases {
        let example = &corpus.examples[case.error.example_idx];
        let db = corpus.database(example);
        let mut current = normalize_query(&case.error.initial);
        let mut question = example.question.clone();
        let mut corrected_at: Option<usize> = None;

        for round in 0..rounds {
            // Elicit (or reuse) this round's feedback.
            let mut feedback = if round == 0 {
                Some(case.feedback.clone())
            } else {
                let view = build_view(db, example, &current);
                user.feedback(example, &current, &view, round as u64)
            };
            let Some(fb) = feedback.as_mut() else {
                break;
            };
            // Attach a highlight when the interface supports it.
            if let Strategy::Fisql {
                highlighting: true, ..
            } = strategy
            {
                if fb.highlight.is_none() {
                    let spanned = print_query_spanned(&current);
                    user.add_highlight(fb, &spanned, example.id, round as u64);
                }
            }
            let outcome = incorporate(
                strategy,
                llm,
                &IncorporateContext {
                    db,
                    example,
                    question: &question,
                    previous: &current,
                    feedback: fb,
                    round: round as u64,
                },
            );
            if outcome.gate.has_errors() {
                statically_flagged += 1;
            }
            executions_saved += outcome.gate.executions_saved;
            current = outcome.query;
            question = outcome.question;

            if check_prediction(db, example, &current).is_correct() {
                corrected_at = Some(round);
                break;
            }
        }
        if let Some(r) = corrected_at {
            for slot in corrected_after_round.iter_mut().skip(r) {
                *slot += 1;
            }
        }
    }
    CorrectionReport {
        strategy: strategy.name().to_string(),
        total: cases.len(),
        corrected_after_round,
        statically_flagged,
        executions_saved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_feedback::UserConfig;
    use fisql_llm::LlmConfig;
    use fisql_spider::{build_aep, AepConfig, SpiderConfig};

    fn small_setup() -> (Corpus, SimLlm, SimUser) {
        let corpus = fisql_spider::build_spider(&SpiderConfig::small(31));
        (
            corpus,
            SimLlm::new(LlmConfig::default()),
            SimUser::new(UserConfig::default()),
        )
    }

    #[test]
    fn zero_shot_spider_like_accuracy_in_band() {
        let (corpus, llm, _) = small_setup();
        let report = zero_shot_report(&corpus, &llm);
        let acc = report.accuracy();
        // Small corpus, wide band; the full-size calibration check lives
        // in the bench harness.
        assert!(
            (0.4..=0.95).contains(&acc),
            "spider-like zero-shot accuracy {acc}"
        );
    }

    #[test]
    fn aep_zero_shot_is_much_worse() {
        let (_, llm, _) = small_setup();
        let spider = zero_shot_report(&fisql_spider::build_spider(&SpiderConfig::small(32)), &llm);
        let aep = zero_shot_report(
            &build_aep(&AepConfig {
                n_examples: 80,
                seed: 32,
            }),
            &llm,
        );
        assert!(
            aep.accuracy() + 0.15 < spider.accuracy(),
            "aep {} vs spider {}",
            aep.accuracy(),
            spider.accuracy()
        );
    }

    #[test]
    fn error_collection_and_annotation_shrink() {
        let (corpus, llm, user) = small_setup();
        let errors = collect_errors(&corpus, &llm, 3);
        assert!(!errors.is_empty());
        assert!(errors.len() < corpus.examples.len());
        let annotated = annotate_errors(&corpus, &errors, &user);
        assert!(annotated.len() < errors.len() || errors.len() <= 2);
    }

    #[test]
    fn fisql_beats_query_rewrite() {
        let (corpus, llm, user) = small_setup();
        let errors = collect_errors(&corpus, &llm, 3);
        let annotated = annotate_errors(&corpus, &errors, &user);
        if annotated.len() < 5 {
            return; // too small to compare meaningfully
        }
        let fisql = run_correction(
            &corpus,
            &annotated,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            1,
            &llm,
            &user,
        );
        let rewrite = run_correction(&corpus, &annotated, Strategy::QueryRewrite, 1, &llm, &user);
        assert!(
            fisql.corrected_after_round[0] >= rewrite.corrected_after_round[0],
            "FISQL {} < rewrite {}",
            fisql.corrected_after_round[0],
            rewrite.corrected_after_round[0]
        );
    }

    #[test]
    fn second_round_never_hurts() {
        let (corpus, llm, user) = small_setup();
        let errors = collect_errors(&corpus, &llm, 3);
        let annotated = annotate_errors(&corpus, &errors, &user);
        let report = run_correction(
            &corpus,
            &annotated,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            2,
            &llm,
            &user,
        );
        assert!(report.corrected_after_round[1] >= report.corrected_after_round[0]);
    }

    #[test]
    fn correction_report_percentages() {
        let report = CorrectionReport {
            strategy: "FISQL".into(),
            total: 100,
            corrected_after_round: vec![45, 60],
            statically_flagged: 0,
            executions_saved: 0,
        };
        assert!((report.pct_after(1) - 45.0).abs() < 1e-9);
        assert!((report.pct_after(2) - 60.0).abs() < 1e-9);
        // Round beyond recorded data clamps to the last round.
        assert!((report.pct_after(5) - 60.0).abs() < 1e-9);
    }
}
