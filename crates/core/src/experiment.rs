//! Experiment drivers regenerating the paper's evaluation (§4).
//!
//! Each step of the paper's protocol maps onto the API:
//!
//! 1. [`zero_shot_report`] — Figure 2's zero-shot accuracy comparison.
//! 2. [`CorrectionRun::collect_errors`](crate::runner::CorrectionRun::collect_errors)
//!    — run the (few-shot, RAG) Assistant over a corpus and keep the
//!    failures (§4.1: 243/1034 SPIDER errors).
//! 3. [`CorrectionRun::annotate`](crate::runner::CorrectionRun::annotate)
//!    — the simulated user provides feedback where they can (§4.1: 101
//!    annotated ≈ 41%).
//! 4. [`CorrectionRun::run`](crate::runner::CorrectionRun::run) —
//!    multi-round feedback incorporation with a chosen [`Strategy`],
//!    producing the % instances corrected per round (Tables 2-3,
//!    Figure 8) — sharded across worker threads, bit-identical at any
//!    worker count.

use crate::runner::RunMetrics;
use fisql_engine::ExecLimits;
use fisql_feedback::{Feedback, UserView};
use fisql_llm::SimLlm;
use fisql_spider::{evaluate, AccuracyReport, Corpus};
use fisql_sqlkit::{print_query_spanned, Query};
use serde::{Deserialize, Serialize};

use crate::assistant::Assistant;

/// Figure 2: zero-shot accuracy (no demonstrations, Figure 1 prompt).
pub fn zero_shot_report(corpus: &Corpus, llm: &SimLlm) -> AccuracyReport {
    let assistant = Assistant {
        llm: llm.clone(),
        store: fisql_llm::DemoStore::new(vec![]),
        demos_k: 0,
    };
    let predictions: Vec<(usize, Query)> = corpus
        .examples
        .iter()
        .enumerate()
        .map(|(i, e)| (i, assistant.answer(corpus.database(e), e, 0).query))
        .collect();
    evaluate(
        corpus,
        predictions.iter().map(|(i, q)| (&corpus.examples[*i], q)),
    )
}

/// One collected Assistant error.
#[derive(Debug, Clone)]
pub struct ErrorCase {
    /// Index into the corpus's example list.
    pub example_idx: usize,
    /// The initial (wrong) prediction, normalized.
    pub initial: Query,
    /// Whether the initial prediction failed to execute.
    pub execution_error: bool,
}

/// An error case the simulated user could and did annotate.
#[derive(Debug, Clone)]
pub struct AnnotatedCase {
    /// The underlying error case.
    pub error: ErrorCase,
    /// The round-0 feedback.
    pub feedback: Feedback,
}

/// Assembles what the user sees before giving feedback (paper Figure 7).
///
/// Runs under a row-count guard: a model-generated query that would
/// materialize millions of join rows renders as an error grid instead of
/// stalling the evaluation loop. Only the (deterministic) row budget is
/// used here — a wall-clock deadline could make a report depend on
/// machine load, breaking the bit-identical-replay contract.
pub(crate) fn build_view(
    db: &fisql_engine::Database,
    example: &fisql_spider::Example,
    predicted: &Query,
) -> UserView {
    let guard = ExecLimits {
        max_rows: ExecLimits::interactive().max_rows,
        deadline_ms: None,
    };
    build_view_with(db, example, predicted, |db, q| {
        fisql_engine::execute_with_limits(db, q, guard).map_err(|e| e.to_string())
    })
}

/// [`build_view`] with the engine call abstracted out so the runner can
/// route it through the per-shard result cache's exact-print lane. The
/// executor must reproduce `execute_with_limits` under the interactive
/// row budget byte-for-byte (rows and error strings) for rendered views
/// to stay bit-identical.
pub(crate) fn build_view_with(
    db: &fisql_engine::Database,
    example: &fisql_spider::Example,
    predicted: &Query,
    mut exec: impl FnMut(&fisql_engine::Database, &Query) -> Result<fisql_engine::ResultSet, String>,
) -> UserView {
    UserView {
        question: example.question.clone(),
        sql: print_query_spanned(predicted),
        explanation: crate::explain::explain_query(predicted),
        result: exec(db, predicted).map(|rs| rs.render_grid(10)),
    }
}

/// Per-round correction report for one strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrectionReport {
    /// Strategy display name.
    pub strategy: String,
    /// Number of annotated cases attempted.
    pub total: usize,
    /// Cumulative corrected counts after round 1, 2, … rounds.
    pub corrected_after_round: Vec<usize>,
    /// Candidates the static analyzer flagged with error-severity
    /// diagnostics before execution (across all rounds).
    #[serde(default)]
    pub statically_flagged: usize,
    /// Candidates the analyzer auto-repaired, i.e. engine executions of a
    /// doomed query that were skipped (across all rounds).
    #[serde(default)]
    pub executions_saved: u64,
    /// Feedback rounds that degraded gracefully — backend calls failed
    /// past the resilience layer, so the round kept the previous SQL
    /// (across all cases and rounds). Deterministic for a deterministic
    /// fault schedule, hence serialized with the report.
    #[serde(default)]
    pub degraded_rounds: u64,
    /// Cases with at least one degraded round.
    #[serde(default)]
    pub cases_degraded: usize,
    /// Engine executions skipped by the static equivalence oracle: a
    /// candidate provably equivalent to a query the case already executed
    /// and found incorrect inherits that verdict without running (each
    /// skip avoids the predicted + gold pair, so this counts in twos).
    #[serde(default)]
    pub executions_skipped_static: u64,
    /// Conformance-gate checks where the realized edit class agreed with
    /// the routed feedback type (zero when the gate is off).
    #[serde(default)]
    pub router_realized_agreements: u64,
    /// Conformance-gate checks that disagreed (and triggered a re-prompt).
    #[serde(default)]
    pub router_realized_disagreements: u64,
    /// Conformance re-prompts issued (one per disagreement, by design).
    #[serde(default)]
    pub conformance_retries: u64,
    /// Cases that panicked and were contained by the runner's per-case
    /// isolation (they count toward `total` but never toward
    /// `corrected_after_round`).
    #[serde(default)]
    pub cases_crashed: usize,
    /// Cases expired by the stall watchdog (zero when no per-case
    /// deadline is configured).
    #[serde(default)]
    pub cases_timed_out: usize,
    /// Per-run throughput metrics (worker count, wall time, cache hit
    /// rate, …). Excluded from serialization and comparisons: wall-clock
    /// and cache interleaving vary run to run, while every other report
    /// field is bit-identical at any worker count.
    #[serde(skip)]
    pub metrics: RunMetrics,
}

impl CorrectionReport {
    /// % instances corrected after `round` rounds (1-based).
    ///
    /// Asking about a round beyond the recorded data returns 0 — the run
    /// has nothing to say about rounds it never executed. (It used to
    /// silently clamp to the last recorded round, repeating the final
    /// bucket for any out-of-range query.)
    pub fn pct_after(&self, round: usize) -> f64 {
        if self.total == 0 || round == 0 || round > self.corrected_after_round.len() {
            return 0.0;
        }
        100.0 * self.corrected_after_round[round - 1] as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Strategy;
    use crate::runner::CorrectionRun;
    use fisql_feedback::{SimUser, UserConfig};
    use fisql_llm::LlmConfig;
    use fisql_spider::{build_aep, AepConfig, SpiderConfig};

    fn small_setup() -> (Corpus, SimLlm, SimUser) {
        let corpus = fisql_spider::build_spider(&SpiderConfig::small(31));
        (
            corpus,
            SimLlm::new(LlmConfig::default()),
            SimUser::new(UserConfig::default()),
        )
    }

    #[test]
    fn zero_shot_spider_like_accuracy_in_band() {
        let (corpus, llm, _) = small_setup();
        let report = zero_shot_report(&corpus, &llm);
        let acc = report.accuracy();
        // Small corpus, wide band; the full-size calibration check lives
        // in the bench harness.
        assert!(
            (0.4..=0.95).contains(&acc),
            "spider-like zero-shot accuracy {acc}"
        );
    }

    #[test]
    fn aep_zero_shot_is_much_worse() {
        let (_, llm, _) = small_setup();
        let spider = zero_shot_report(&fisql_spider::build_spider(&SpiderConfig::small(32)), &llm);
        let aep = zero_shot_report(
            &build_aep(&AepConfig {
                n_examples: 80,
                seed: 32,
            }),
            &llm,
        );
        assert!(
            aep.accuracy() + 0.15 < spider.accuracy(),
            "aep {} vs spider {}",
            aep.accuracy(),
            spider.accuracy()
        );
    }

    #[test]
    fn error_collection_and_annotation_shrink() {
        let (corpus, llm, user) = small_setup();
        let errors = CorrectionRun::new(&corpus, &llm, &user)
            .demos_k(3)
            .collect_errors();
        assert!(!errors.is_empty());
        assert!(errors.len() < corpus.examples.len());
        let annotated = CorrectionRun::new(&corpus, &llm, &user).annotate(&errors);
        assert!(annotated.len() < errors.len() || errors.len() <= 2);
    }

    #[test]
    fn fisql_beats_query_rewrite() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user).demos_k(3);
        let errors = run.collect_errors();
        let annotated = run.annotate(&errors);
        if annotated.len() < 5 {
            return; // too small to compare meaningfully
        }
        let fisql = run
            .strategy(Strategy::Fisql {
                routing: true,
                highlighting: false,
            })
            .rounds(1)
            .run(&annotated);
        let rewrite = run
            .strategy(Strategy::QueryRewrite)
            .rounds(1)
            .run(&annotated);
        assert!(
            fisql.corrected_after_round[0] >= rewrite.corrected_after_round[0],
            "FISQL {} < rewrite {}",
            fisql.corrected_after_round[0],
            rewrite.corrected_after_round[0]
        );
    }

    #[test]
    fn second_round_never_hurts() {
        let (corpus, llm, user) = small_setup();
        let run = CorrectionRun::new(&corpus, &llm, &user).demos_k(3);
        let errors = run.collect_errors();
        let annotated = run.annotate(&errors);
        let report = run
            .strategy(Strategy::Fisql {
                routing: true,
                highlighting: false,
            })
            .rounds(2)
            .run(&annotated);
        assert!(report.corrected_after_round[1] >= report.corrected_after_round[0]);
    }

    #[test]
    fn correction_report_percentages() {
        let report = CorrectionReport {
            strategy: "FISQL".into(),
            total: 100,
            corrected_after_round: vec![45, 60],
            statically_flagged: 0,
            executions_saved: 0,
            degraded_rounds: 0,
            cases_degraded: 0,
            executions_skipped_static: 0,
            router_realized_agreements: 0,
            router_realized_disagreements: 0,
            conformance_retries: 0,
            cases_crashed: 0,
            cases_timed_out: 0,
            metrics: RunMetrics::default(),
        };
        assert!((report.pct_after(1) - 45.0).abs() < 1e-9);
        assert!((report.pct_after(2) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn pct_after_is_zero_beyond_recorded_rounds() {
        // Regression: out-of-range rounds used to clamp to the final
        // bucket, reporting 60% for a round the run never executed.
        let report = CorrectionReport {
            strategy: "FISQL".into(),
            total: 100,
            corrected_after_round: vec![45, 60],
            statically_flagged: 0,
            executions_saved: 0,
            degraded_rounds: 0,
            cases_degraded: 0,
            executions_skipped_static: 0,
            router_realized_agreements: 0,
            router_realized_disagreements: 0,
            conformance_retries: 0,
            cases_crashed: 0,
            cases_timed_out: 0,
            metrics: RunMetrics::default(),
        };
        assert_eq!(report.pct_after(3), 0.0);
        assert_eq!(report.pct_after(5), 0.0);
        assert_eq!(report.pct_after(0), 0.0);
        let empty = CorrectionReport {
            strategy: "FISQL".into(),
            total: 0,
            corrected_after_round: vec![],
            statically_flagged: 0,
            executions_saved: 0,
            degraded_rounds: 0,
            cases_degraded: 0,
            executions_skipped_static: 0,
            router_realized_agreements: 0,
            router_realized_disagreements: 0,
            conformance_retries: 0,
            cases_crashed: 0,
            cases_timed_out: 0,
            metrics: RunMetrics::default(),
        };
        assert_eq!(empty.pct_after(1), 0.0);
    }
}
