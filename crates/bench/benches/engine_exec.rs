//! Engine micro-benchmarks: scans, joins (hash vs nested loop),
//! aggregation, and set operations over a generated database.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fisql_engine::{execute, Database};
use fisql_spider::{
    data_gen::{populate, DataGenOptions},
    schema_gen::{generate_schema, SchemaGenOptions},
    vocab::THEMES,
};
use fisql_sqlkit::parse_query;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_db(rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let opts = SchemaGenOptions {
        min_tables: 6,
        max_tables: 6,
        ..Default::default()
    };
    let mut db = generate_schema(&THEMES[1], 0, &opts, &mut rng);
    populate(
        &mut db,
        &THEMES[1],
        &DataGenOptions {
            min_rows: rows,
            max_rows: rows,
            null_probability: 0.05,
        },
        &mut rng,
    );
    db
}

fn first_two_fk_tables(db: &Database) -> Option<(String, String, String, String)> {
    for t in &db.tables {
        if let Some(fk) = t.foreign_keys.first() {
            let target = db.table(&fk.ref_table)?;
            return Some((
                t.name.clone(),
                t.columns[fk.column].name.clone(),
                target.name.clone(),
                target.columns[fk.ref_column].name.clone(),
            ));
        }
    }
    None
}

fn bench_scan_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_filter");
    for rows in [50usize, 200, 1000] {
        let db = bench_db(rows);
        let t = db.tables[0].name.clone();
        let q = parse_query(&format!("SELECT COUNT(*) FROM {t} WHERE {t}_id % 3 = 0")).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| execute(black_box(&db), black_box(&q)).unwrap());
        });
    }
    g.finish();
}

fn bench_joins(c: &mut Criterion) {
    let db = bench_db(400);
    let Some((child, fk_col, parent, pk_col)) = first_two_fk_tables(&db) else {
        return;
    };
    // Hash-joinable equality constraint.
    let hash = parse_query(&format!(
        "SELECT COUNT(*) FROM {child} JOIN {parent} ON {child}.{fk_col} = {parent}.{pk_col}"
    ))
    .unwrap();
    // Non-equi constraint forces the nested loop.
    let nested = parse_query(&format!(
        "SELECT COUNT(*) FROM {child} JOIN {parent} ON {child}.{fk_col} > {parent}.{pk_col}"
    ))
    .unwrap();
    let mut g = c.benchmark_group("join");
    g.bench_function("hash_equi", |b| {
        b.iter(|| execute(black_box(&db), black_box(&hash)).unwrap());
    });
    g.bench_function("nested_loop", |b| {
        b.iter(|| execute(black_box(&db), black_box(&nested)).unwrap());
    });
    g.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let db = bench_db(1000);
    let t = &db.tables[0];
    let text_col = t
        .columns
        .iter()
        .find(|c| c.dtype == fisql_engine::DataType::Text)
        .map(|c| c.name.clone())
        .unwrap_or_else(|| t.columns[1].name.clone());
    let q = parse_query(&format!(
        "SELECT {text_col}, COUNT(*) FROM {} GROUP BY {text_col} HAVING COUNT(*) > 1",
        t.name
    ))
    .unwrap();
    c.bench_function("aggregate/group_having", |b| {
        b.iter(|| execute(black_box(&db), black_box(&q)).unwrap());
    });
}

fn bench_set_ops(c: &mut Criterion) {
    let db = bench_db(500);
    let t = db.tables[0].name.clone();
    let col = db.tables[0].columns[1].name.clone();
    let q = parse_query(&format!(
        "SELECT {col} FROM {t} UNION SELECT {col} FROM {t} EXCEPT SELECT {col} FROM {t} LIMIT 1"
    ))
    .unwrap();
    c.bench_function("set_ops/union_except", |b| {
        b.iter(|| execute(black_box(&db), black_box(&q)).unwrap());
    });
}

criterion_group!(
    benches,
    bench_scan_filter,
    bench_joins,
    bench_aggregate,
    bench_set_ops
);
criterion_main!(benches);
