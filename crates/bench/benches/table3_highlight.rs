//! Table 3 as a Criterion benchmark: interpretation with and without
//! highlight grounding, plus the span-map construction itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fisql_bench::{annotated_cases, Scale, Setup};
use fisql_core::{interpret, CorrectionRun, Strategy};
use fisql_sqlkit::{normalize_query, print_query_spanned, OpClass, Span};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_highlight(c: &mut Criterion) {
    let setup = Setup::new(Scale::Small, 0x7AB3);
    let (_, cases) = annotated_cases(&setup, &setup.aep);
    assert!(!cases.is_empty());

    let mut g = c.benchmark_group("table3_highlight");
    g.sample_size(15);
    for (name, highlighting) in [("plain", false), ("highlighting", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                CorrectionRun::new(black_box(&setup.aep), &setup.llm, &setup.user)
                    .strategy(Strategy::Fisql {
                        routing: true,
                        highlighting,
                    })
                    .rounds(1)
                    .run(black_box(&cases))
            });
        });
    }
    g.finish();

    // Micro: interpretation latency with a highlight attached.
    let predicted = normalize_query(
        &fisql_sqlkit::parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
        )
        .unwrap(),
    );
    let db = &setup.aep.databases[0];
    let spanned = print_query_spanned(&predicted);
    let hl: Span = spanned.span_of(&fisql_sqlkit::ClausePath::Where).unwrap();
    let mut group = c.benchmark_group("interpret");
    group.bench_function("with_highlight", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            interpret(
                black_box("change to 2024"),
                &predicted,
                db,
                Some(OpClass::Edit),
                Some(hl),
                &mut rng,
            )
        });
    });
    group.bench_function("without_highlight", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            interpret(
                black_box("we are in 2024"),
                &predicted,
                db,
                Some(OpClass::Edit),
                None,
                &mut rng,
            )
        });
    });
    group.bench_function("span_map_build", |b| {
        b.iter(|| print_query_spanned(black_box(&predicted)));
    });
    group.finish();
}

criterion_group!(benches, bench_highlight);
criterion_main!(benches);
