//! Table 2 as a Criterion benchmark: one-round feedback incorporation for
//! each strategy over a cached annotated error set, plus the single-step
//! latencies of the two pipelines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fisql_bench::{annotated_cases, Scale, Setup};
use fisql_core::{incorporate, CorrectionRun, IncorporateContext, Strategy};
use fisql_sqlkit::normalize_query;

fn bench_table2(c: &mut Criterion) {
    let setup = Setup::new(Scale::Small, 0x7AB2);
    let (_, cases) = annotated_cases(&setup, &setup.spider);
    assert!(!cases.is_empty(), "no annotated cases at bench scale");

    let strategies = [
        (
            "fisql",
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        ),
        (
            "fisql_no_routing",
            Strategy::Fisql {
                routing: false,
                highlighting: false,
            },
        ),
        ("query_rewrite", Strategy::QueryRewrite),
    ];

    let mut g = c.benchmark_group("table2_one_round");
    g.sample_size(20);
    for (name, strategy) in strategies {
        g.bench_function(name, |b| {
            b.iter(|| {
                CorrectionRun::new(black_box(&setup.spider), &setup.llm, &setup.user)
                    .strategy(strategy)
                    .rounds(1)
                    .run(black_box(&cases))
            });
        });
    }
    g.finish();

    // Single-step latency of one incorporation call.
    let case = &cases[0];
    let example = &setup.spider.examples[case.error.example_idx];
    let db = setup.spider.database(example);
    let previous = normalize_query(&case.error.initial);
    let mut g = c.benchmark_group("incorporate_step");
    for (name, strategy) in [
        (
            "fisql",
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
        ),
        ("query_rewrite", Strategy::QueryRewrite),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                incorporate(
                    strategy,
                    &setup.llm,
                    &IncorporateContext {
                        db,
                        example,
                        question: &example.question,
                        previous: black_box(&previous),
                        feedback: &case.feedback,
                        round: 0,
                        conformance_gate: false,
                    },
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
