//! Substrate micro-benchmarks: SQL lexing, parsing, printing, diffing,
//! and normalization throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fisql_sqlkit::{diff_queries, normalize_query, parse_query, print_query};

const SIMPLE: &str = "SELECT name FROM singer WHERE age > 30";
const MEDIUM: &str = "SELECT country, COUNT(*) FROM singer \
    JOIN singer_in_concert ON singer.singer_id = singer_in_concert.singer_id \
    WHERE age BETWEEN 20 AND 50 GROUP BY country HAVING COUNT(*) > 2 \
    ORDER BY COUNT(*) DESC LIMIT 10";
const COMPLEX: &str = "SELECT a.name, (SELECT COUNT(*) FROM t2 WHERE t2.aid = a.id) FROM t1 a \
    LEFT JOIN t3 ON a.id = t3.aid \
    WHERE a.x IN (SELECT y FROM t4 WHERE z LIKE '%w%') AND NOT (a.p = 1 OR a.q = 2) \
    GROUP BY a.name HAVING SUM(a.v) > 100 \
    UNION SELECT b.name, 0 FROM t5 b ORDER BY 1 ASC LIMIT 50 OFFSET 5";

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("parse");
    for (name, sql) in [("simple", SIMPLE), ("medium", MEDIUM), ("complex", COMPLEX)] {
        g.bench_function(name, |b| b.iter(|| parse_query(black_box(sql)).unwrap()));
    }
    g.finish();
}

fn bench_print(c: &mut Criterion) {
    let q = parse_query(COMPLEX).unwrap();
    c.bench_function("print/complex", |b| b.iter(|| print_query(black_box(&q))));
}

fn bench_normalize(c: &mut Criterion) {
    let q = parse_query(MEDIUM).unwrap();
    c.bench_function("normalize/medium", |b| {
        b.iter(|| normalize_query(black_box(&q)));
    });
}

fn bench_diff(c: &mut Criterion) {
    let p =
        parse_query("SELECT COUNT(*) FROM s WHERE y >= '2023-01-01' AND y < '2023-02-01'").unwrap();
    let g =
        parse_query("SELECT COUNT(*) FROM s WHERE y >= '2024-01-01' AND y < '2024-02-01'").unwrap();
    c.bench_function("diff/year_shift", |b| {
        b.iter(|| diff_queries(black_box(&p), black_box(&g)));
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_print,
    bench_normalize,
    bench_diff
);
criterion_main!(benches);
