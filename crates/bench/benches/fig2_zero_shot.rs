//! Figure 2 as a Criterion benchmark: the zero-shot evaluation pipeline
//! end to end (corpus-cached; measures generation + execution + scoring).
//!
//! The experiment binary `exp_fig2` reports the accuracy numbers; this
//! bench tracks the throughput of regenerating the figure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fisql_core::zero_shot_report;
use fisql_llm::{LlmConfig, SimLlm};
use fisql_spider::{build_aep, build_spider, AepConfig, SpiderConfig};

fn bench_zero_shot(c: &mut Criterion) {
    let spider = build_spider(&SpiderConfig::small(0xF16));
    let aep = build_aep(&AepConfig {
        n_examples: 60,
        seed: 0xF16,
    });
    let llm = SimLlm::new(LlmConfig::default());

    let mut g = c.benchmark_group("fig2_zero_shot");
    g.sample_size(20);
    g.bench_function("spider_like", |b| {
        b.iter(|| zero_shot_report(black_box(&spider), black_box(&llm)));
    });
    g.bench_function("aep_like", |b| {
        b.iter(|| zero_shot_report(black_box(&aep), black_box(&llm)));
    });
    g.finish();

    // Sanity: the figure's headline ordering holds at bench scale too.
    let s = zero_shot_report(&spider, &llm).accuracy();
    let a = zero_shot_report(&aep, &llm).accuracy();
    assert!(s > a, "figure 2 ordering violated: spider {s} vs aep {a}");
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus_generation");
    g.sample_size(10);
    g.bench_function("spider_small", |b| {
        b.iter(|| build_spider(&SpiderConfig::small(black_box(7))));
    });
    g.bench_function("aep_60", |b| {
        b.iter(|| {
            build_aep(&AepConfig {
                n_examples: 60,
                seed: black_box(7),
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench_zero_shot, bench_corpus_generation);
criterion_main!(benches);
