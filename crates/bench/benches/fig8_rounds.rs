//! Figure 8 as a Criterion benchmark: the multi-round correction driver
//! at one and two rounds, for FISQL and its routing ablation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fisql_bench::{annotated_cases, Scale, Setup};
use fisql_core::{CorrectionRun, Strategy};

fn bench_rounds(c: &mut Criterion) {
    let setup = Setup::new(Scale::Small, 0xF18);
    let (_, cases) = annotated_cases(&setup, &setup.spider);
    assert!(!cases.is_empty());

    let mut g = c.benchmark_group("fig8_rounds");
    g.sample_size(15);
    for rounds in [1usize, 2, 3] {
        for (name, routing) in [("fisql", true), ("no_routing", false)] {
            g.bench_with_input(BenchmarkId::new(name, rounds), &rounds, |b, &rounds| {
                b.iter(|| {
                    CorrectionRun::new(black_box(&setup.spider), &setup.llm, &setup.user)
                        .strategy(Strategy::Fisql {
                            routing,
                            highlighting: false,
                        })
                        .rounds(rounds)
                        .run(black_box(&cases))
                });
            });
        }
    }
    g.finish();

    // Monotonicity sanity at bench scale.
    let r = CorrectionRun::new(&setup.spider, &setup.llm, &setup.user)
        .strategy(Strategy::Fisql {
            routing: true,
            highlighting: false,
        })
        .rounds(3)
        .run(&cases);
    assert!(r.corrected_after_round.windows(2).all(|w| w[0] <= w[1]));
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
