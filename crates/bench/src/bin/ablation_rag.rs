//! Ablation: RAG demonstration-budget sweep.
//!
//! DESIGN.md §5 — how few-shot demonstrations affect the Assistant's
//! first-pass accuracy (and therefore the size of the error set feedback
//! has to fix). The paper's production pipeline uses RAG demonstrations
//! (§3.2); Figure 2's zero-shot setting is the 0-demo point of this
//! sweep.
//!
//! Run: `cargo run --release -p fisql-bench --bin ablation_rag`

use fisql_bench::Setup;
use fisql_core::Assistant;
use fisql_spider::evaluate;

fn main() {
    let setup = Setup::from_env();
    println!(
        "# Ablation — demonstration budget sweep (seed {})\n",
        setup.seed
    );

    println!("{:<8} {:>16} {:>16}", "demos", "SPIDER acc", "AEP acc");
    let mut rows = Vec::new();
    for demos in [0usize, 1, 3, 5, 8] {
        let mut accs = Vec::new();
        for corpus in [&setup.spider, &setup.aep] {
            let assistant = Assistant::for_corpus(corpus, setup.llm.clone(), demos);
            let preds: Vec<(usize, fisql_sqlkit::Query)> = corpus
                .examples
                .iter()
                .enumerate()
                .map(|(i, e)| (i, assistant.answer(corpus.database(e), e, 0).query))
                .collect();
            let report = evaluate(corpus, preds.iter().map(|(i, q)| (&corpus.examples[*i], q)));
            accs.push(report.accuracy());
        }
        println!(
            "{:<8} {:>15.1}% {:>15.1}%",
            demos,
            100.0 * accs[0],
            100.0 * accs[1]
        );
        rows.push(serde_json::json!({
            "demos": demos, "spider": accs[0], "aep": accs[1],
        }));
    }
    println!("\n(0 demos = Figure 2's zero-shot points)");
    println!("\n{}", serde_json::json!({"ablation": "rag", "rows": rows}));
}
