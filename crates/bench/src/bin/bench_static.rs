//! Static-analysis benchmark: equivalence oracle + conformance gate.
//!
//! Runs the SPIDER-subset correction experiment with the static
//! equivalence oracle and the feedback-conformance gate on and off, and
//! asserts the acceptance invariants of both features:
//!
//! - the oracle skips at least one engine execution at every worker
//!   count, without changing a single verdict;
//! - the conformance-gated report is byte-identical to the gate-off
//!   report except for the new agreement/retry counters.
//!
//! Emits `BENCH_static.json`; CI uploads it as a workflow artifact.
//!
//! Run: `FISQL_SCALE=small cargo run --release -p fisql-bench --bin bench_static`

use fisql_bench::{annotated_cases, runner, Setup};
use fisql_core::{CorrectionReport, Strategy};

fn main() {
    let setup = Setup::from_env();
    println!("# Static-analysis benchmark (seed {})\n", setup.seed);

    let (_, cases) = annotated_cases(&setup, &setup.spider);
    println!("annotated SPIDER feedback set: {} cases", cases.len());

    let strategy = Strategy::Fisql {
        routing: true,
        highlighting: false,
    };
    let rounds = 2;
    let run_with = |workers: usize, oracle: bool, gate: bool| -> CorrectionReport {
        runner(&setup, &setup.spider)
            .strategy(strategy)
            .rounds(rounds)
            .workers(workers)
            .static_oracle(oracle)
            .conformance_gate(gate)
            .run(&cases)
    };

    // Warm the embedding/selection caches.
    let _ = run_with(1, false, false);

    let baseline = run_with(1, false, false);
    let baseline_json = serde_json::to_string(&baseline).unwrap();

    println!(
        "\n{:>8} {:>14} {:>12} {:>12} {:>10}",
        "workers", "exec skipped", "executions", "agreements", "retries"
    );
    let mut rows = Vec::new();
    for workers in [1usize, 2] {
        let report = run_with(workers, true, true);

        // Oracle acceptance: at least one execution skipped statically,
        // verdicts untouched.
        assert!(
            report.executions_skipped_static >= 1,
            "no executions skipped statically at {workers} workers"
        );
        assert_eq!(
            report.corrected_after_round, baseline.corrected_after_round,
            "oracle/gate changed verdicts at {workers} workers"
        );

        // Gate acceptance: zeroing the new counters makes the report
        // byte-identical to the oracle-off/gate-off baseline.
        let mut neutered = report.clone();
        neutered.executions_skipped_static = 0;
        neutered.router_realized_agreements = 0;
        neutered.router_realized_disagreements = 0;
        neutered.conformance_retries = 0;
        assert_eq!(
            serde_json::to_string(&neutered).unwrap(),
            baseline_json,
            "gated report differs beyond the new counters at {workers} workers"
        );

        let m = &report.metrics;
        println!(
            "{:>8} {:>14} {:>12} {:>12} {:>10}",
            m.workers,
            report.executions_skipped_static,
            m.engine_executions,
            report.router_realized_agreements,
            report.conformance_retries,
        );
        rows.push(serde_json::json!({
            "requested_workers": workers,
            "effective_workers": m.workers,
            "wall_ms": m.wall_ms,
            "engine_executions": m.engine_executions,
            "executions_skipped_static": report.executions_skipped_static,
            "router_realized_agreements": report.router_realized_agreements,
            "router_realized_disagreements": report.router_realized_disagreements,
            "conformance_retries": report.conformance_retries,
            "agreement_rate": m.agreement.agreement_rate(),
            "report_identical_modulo_counters": true,
        }));
    }

    let json = serde_json::json!({
        "seed": setup.seed,
        "cases": cases.len(),
        "rounds": rounds,
        "strategy": baseline.strategy,
        "corrected_after_round": baseline.corrected_after_round,
        "baseline_engine_executions": baseline.metrics.engine_executions,
        "runs": rows,
    });
    let out = "BENCH_static.json";
    std::fs::write(out, json.to_string()).expect("write BENCH_static.json");
    println!("\nwrote {out}");
}
