//! Chaos benchmark: accuracy-after-feedback and throughput under
//! injected backend faults.
//!
//! Runs the same correction experiment with the resilient chaos stack
//! (`Resilient<FaultyBackend<SimLlm>>`) at fault rates 0%, 5%, and 20%,
//! asserts each faulted run is bit-identical between 1 and 4 workers
//! (the chaos determinism contract), and emits `BENCH_resilience.json`
//! with per-rate accuracy, degradation, and resilience telemetry. CI
//! uploads the file as a workflow artifact.
//!
//! Run: `FISQL_SCALE=small cargo run --release -p fisql-bench --bin chaos`

use fisql_bench::{annotated_cases, Setup};
use fisql_core::{CorrectionReport, CorrectionRun, Strategy};
use fisql_llm::{FaultConfig, FaultyBackend, ResilienceConfig, Resilient};

fn main() {
    let setup = Setup::from_env();
    let retry_budget = 3u32;
    let rounds = 2usize;
    println!(
        "# Chaos benchmark (seed {}, retry budget {retry_budget})\n",
        setup.seed
    );

    let (_, cases) = annotated_cases(&setup, &setup.spider);
    println!("annotated SPIDER feedback set: {} cases", cases.len());

    let strategy = Strategy::Fisql {
        routing: true,
        highlighting: false,
    };

    println!(
        "\n{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "fault %", "pct after", "degraded", "retries", "exhausted", "trips", "cases/s"
    );

    let mut rows = Vec::new();
    for fault_rate in [0.0f64, 0.05, 0.20] {
        let chaos = Resilient::new(
            FaultyBackend::new(setup.llm.clone(), FaultConfig::uniform(fault_rate)),
            ResilienceConfig {
                attempt_budget: retry_budget,
                ..Default::default()
            },
        );
        let run = CorrectionRun::new(&setup.spider, &chaos, &setup.user)
            .demos_k(3)
            .strategy(strategy)
            .rounds(rounds);
        let run_at = |workers: usize| -> CorrectionReport { run.workers(workers).run(&cases) };

        let serial = run_at(1);
        let parallel = run_at(4);
        let identical =
            serde_json::to_string(&serial).unwrap() == serde_json::to_string(&parallel).unwrap();
        assert!(
            identical,
            "faulted report at 4 workers diverged from serial (rate {fault_rate})"
        );

        let m = &parallel.metrics;
        let r = &m.resilience;
        println!(
            "{:>10.1} {:>10.2} {:>10} {:>10} {:>10} {:>10} {:>12.1}",
            fault_rate * 100.0,
            serial.pct_after(rounds),
            serial.degraded_rounds,
            r.retries,
            r.exhausted,
            r.breaker_trips,
            m.cases_per_sec,
        );
        let pct_after_round: Vec<f64> = (1..=rounds).map(|n| serial.pct_after(n)).collect();
        rows.push(serde_json::json!({
            "fault_rate": fault_rate,
            "pct_after_round": pct_after_round,
            "corrected_after_round": serial.corrected_after_round,
            "degraded_rounds": serial.degraded_rounds,
            "cases_degraded": serial.cases_degraded,
            "wall_ms": m.wall_ms,
            "cases_per_sec": m.cases_per_sec,
            "backend_calls": r.calls,
            "attempts": r.attempts,
            "retries": r.retries,
            "exhausted": r.exhausted,
            "breaker_trips": r.breaker_trips,
            "breaker_fast_fails": r.breaker_fast_fails,
            "report_identical_across_workers": identical,
        }));
    }

    let json = serde_json::json!({
        "seed": setup.seed,
        "cases": cases.len(),
        "rounds": rounds,
        "retry_budget": retry_budget,
        "strategy": format!("{strategy:?}"),
        "runs": rows,
    });
    let out = "BENCH_resilience.json";
    std::fs::write(out, json.to_string()).expect("write BENCH_resilience.json");
    println!("\nwrote {out}");
}
