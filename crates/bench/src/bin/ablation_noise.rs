//! Ablation: feedback-misalignment sweep.
//!
//! DESIGN.md §5 — the paper's error cause (c): "user feedback being
//! misaligned with the correction required". This sweep varies the
//! simulated user's misalignment probability and measures how much of
//! FISQL's one-round correction rate it costs.
//!
//! Run: `cargo run --release -p fisql-bench --bin ablation_noise`

use fisql_bench::{annotated_cases, correction, pct, Setup};
use fisql_core::Strategy;
use fisql_feedback::{SimUser, UserConfig};

fn main() {
    let base = Setup::from_env();
    println!(
        "# Ablation — feedback misalignment sweep (seed {})\n",
        base.seed
    );

    println!("{:<14} {:>14} {:>14}", "p(misalign)", "SPIDER", "EP");
    let mut rows = Vec::new();
    for p_misalign in [0.0, 0.04, 0.08, 0.15, 0.30, 0.50] {
        let mut setup = Setup::new(fisql_bench::Scale::from_env(), base.seed);
        setup.user = SimUser::new(UserConfig {
            seed: base.seed ^ 0x05E4,
            p_misalign,
            ..Default::default()
        });
        let mut pcts = Vec::new();
        for corpus in [&setup.spider, &setup.aep] {
            // Re-annotate under this noise level (misalignment changes the
            // feedback itself, not just its interpretation).
            let (_, cases) = annotated_cases(&setup, corpus);
            let report = correction(
                &setup,
                corpus,
                &cases,
                Strategy::Fisql {
                    routing: true,
                    highlighting: false,
                },
                1,
            );
            pcts.push((report.corrected_after_round[0], report.total));
        }
        println!(
            "{:<14.2} {:>14} {:>14}",
            p_misalign,
            pct(pcts[0].0, pcts[0].1),
            pct(pcts[1].0, pcts[1].1)
        );
        rows.push(serde_json::json!({
            "p_misalign": p_misalign,
            "spider_pct": 100.0 * pcts[0].0 as f64 / pcts[0].1.max(1) as f64,
            "ep_pct": 100.0 * pcts[1].0 as f64 / pcts[1].1.max(1) as f64,
        }));
    }
    println!(
        "\n{}",
        serde_json::json!({"ablation": "misalignment", "rows": rows})
    );
}
