//! Durability benchmark: run-journal overhead at each fsync policy.
//!
//! Runs the same correction experiment four ways — no journal, then
//! journaled under `never` / `batch` / `each` fsync — asserting every
//! variant's report is bit-identical to the unjournaled baseline (the
//! journal is an observer, never a participant), and measures the
//! throughput cost of each durability level. A final kill-free resume
//! pass replays the full journal and must run zero cases. Emits
//! `BENCH_durability.json`; CI uploads it as a workflow artifact.
//!
//! Run: `FISQL_SCALE=small cargo run --release -p fisql-bench --bin bench_durability`

use fisql_bench::{annotated_cases, Setup};
use fisql_core::{CorrectionRun, FsyncPolicy, Strategy};

fn main() {
    let setup = Setup::from_env();
    let rounds = 2usize;
    let workers = 4usize;
    println!("# Durability benchmark (seed {})\n", setup.seed);

    let (_, cases) = annotated_cases(&setup, &setup.spider);
    println!("annotated SPIDER feedback set: {} cases", cases.len());

    let strategy = Strategy::Fisql {
        routing: true,
        highlighting: false,
    };
    let run = CorrectionRun::new(&setup.spider, &setup.llm, &setup.user)
        .demos_k(3)
        .strategy(strategy)
        .rounds(rounds)
        .workers(workers);

    let baseline = run.run(&cases);
    let baseline_json = serde_json::to_string(&baseline).unwrap();
    let dir = std::env::temp_dir().join(format!("fisql-bench-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    println!(
        "\n{:>10} {:>10} {:>12} {:>14} {:>12}",
        "fsync", "wall ms", "cases/s", "overhead %", "bytes"
    );
    println!(
        "{:>10} {:>10.1} {:>12.1} {:>14} {:>12}",
        "(none)", baseline.metrics.wall_ms, baseline.metrics.cases_per_sec, "-", "-"
    );

    let mut rows = Vec::new();
    for policy in [
        FsyncPolicy::Never,
        FsyncPolicy::Batch,
        FsyncPolicy::EachRecord,
    ] {
        let path = dir.join(format!("{policy}.fjnl"));
        let report = run.journal(&path).fsync(policy).run(&cases);
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            baseline_json,
            "journaling under {policy} changed the report"
        );
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let overhead =
            100.0 * (report.metrics.wall_ms - baseline.metrics.wall_ms) / baseline.metrics.wall_ms;

        // Resume against the complete journal: everything replays from
        // disk, nothing re-runs, and the report is still identical.
        let resumed = run.journal(&path).fsync(policy).resume(true).run(&cases);
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            baseline_json,
            "full-journal resume under {policy} diverged"
        );

        println!(
            "{:>10} {:>10.1} {:>12.1} {:>14.1} {:>12}",
            policy.to_string(),
            report.metrics.wall_ms,
            report.metrics.cases_per_sec,
            overhead,
            bytes,
        );
        rows.push(serde_json::json!({
            "fsync": policy.to_string(),
            "wall_ms": report.metrics.wall_ms,
            "cases_per_sec": report.metrics.cases_per_sec,
            "overhead_pct_vs_unjournaled": overhead,
            "journal_bytes": bytes,
            "resume_wall_ms": resumed.metrics.wall_ms,
            "report_identical_to_baseline": true,
        }));
    }

    let json = serde_json::json!({
        "seed": setup.seed,
        "cases": cases.len(),
        "rounds": rounds,
        "workers": workers,
        "strategy": format!("{strategy:?}"),
        "baseline_wall_ms": baseline.metrics.wall_ms,
        "baseline_cases_per_sec": baseline.metrics.cases_per_sec,
        "runs": rows,
    });
    let out = "BENCH_durability.json";
    std::fs::write(out, json.to_string()).expect("write BENCH_durability.json");
    std::fs::remove_dir_all(&dir).ok();
    println!("\nwrote {out}");
}
