//! Diagnostic: failure-mode breakdown for FISQL round-1 corrections,
//! plus the static-analysis gate's per-strategy catch rate (candidates
//! flagged/repaired before execution vs. failed at the engine), plus the
//! runner's containment accounting under a panic-injecting chaos stack.
//! Not part of the paper's tables; used for calibration analysis.

use fisql_bench::{annotated_cases, Setup};
use fisql_core::{incorporate, CorrectionRun, IncorporateContext, Strategy};
use fisql_engine::execute;
use fisql_llm::{FaultConfig, FaultyBackend, ResilienceConfig, Resilient};
use fisql_spider::check_prediction;
use fisql_sqlkit::{
    diff_queries, locate_faults, normalize_query, print_query_spanned, same_clause_family,
    LocateOptions,
};

fn main() {
    let setup = Setup::from_env();
    for (name, corpus) in [("SPIDER", &setup.spider), ("EP", &setup.aep)] {
        let (_, cases) = annotated_cases(&setup, corpus);
        let mut ok = 0;
        let mut misaligned = 0;
        let mut interp_fail = 0;
        let mut ambiguous_wrong = 0;
        let mut apply_fail = 0;
        let mut partial_multi = 0;
        let mut other = 0;
        let mut initial_multi = 0;
        for case in &cases {
            let example = &corpus.examples[case.error.example_idx];
            let db = corpus.database(example);
            let previous = normalize_query(&case.error.initial);
            let d0 = diff_queries(&previous, &example.gold);
            let edits_needed_multi =
                fisql_feedback::year_shift_target(&d0).is_none() && d0.len() > 1;
            if edits_needed_multi {
                initial_multi += 1;
            }
            let out = incorporate(
                Strategy::Fisql {
                    routing: true,
                    highlighting: false,
                },
                &setup.llm,
                &IncorporateContext {
                    db,
                    example,
                    question: &example.question,
                    previous: &previous,
                    feedback: &case.feedback,
                    round: 0,
                    conformance_gate: false,
                },
            );
            if check_prediction(db, example, &out.query).is_correct() {
                ok += 1;
                continue;
            }
            if case.feedback.misaligned {
                misaligned += 1;
            } else if let Some(i) = &out.interpretation {
                if i.candidates == 0 {
                    interp_fail += 1;
                } else if out.query == previous {
                    apply_fail += 1;
                } else if edits_needed_multi {
                    partial_multi += 1;
                } else if i.candidates > 1 {
                    ambiguous_wrong += 1;
                } else {
                    other += 1;
                }
            } else {
                other += 1;
            }
        }
        println!(
            "{name}: total {} ok {} | misaligned {} interp-fail {} apply-fail {} multi-partial {} ambiguous {} other {} (initial multi-edit {})",
            cases.len(), ok, misaligned, interp_fail, apply_fail, partial_multi, ambiguous_wrong, other, initial_multi
        );

        // Localization accuracy: does the top-ranked fault site land on a
        // clause the gold diff actually edits? Top-1 requires the first
        // site to hit; top-3 any of the first three; `sites` counts cases
        // where localization produced anything at all. The gold diff's
        // clause spans (via the spanned printer) are the ground truth.
        let mut top1 = 0u64;
        let mut top3 = 0u64;
        let mut any_sites = 0u64;
        for case in &cases {
            let example = &corpus.examples[case.error.example_idx];
            let db = corpus.database(example);
            let previous = normalize_query(&case.error.initial);
            let schema = db.schema_info();
            let sites = locate_faults(
                &previous,
                &schema,
                LocateOptions {
                    feedback: Some(&case.feedback.text),
                    highlight: case.feedback.highlight,
                },
            );
            if sites.is_empty() {
                continue;
            }
            any_sites += 1;
            let gold_edits = diff_queries(&previous, &example.gold);
            let spanned = print_query_spanned(&previous);
            let hit = |site: &fisql_sqlkit::FaultSite| {
                gold_edits.iter().any(|e| {
                    let clause = e.clause();
                    same_clause_family(&site.clause, &clause)
                        || spanned
                            .span_of(&clause)
                            .is_some_and(|s| site.span.start < s.end && s.start < site.span.end)
                })
            };
            if hit(&sites[0]) {
                top1 += 1;
                top3 += 1;
            } else if sites.iter().take(3).any(hit) {
                top3 += 1;
            }
        }
        println!(
            "{name} localization: top-1 {top1}/{any_sites}, top-3 {top3}/{any_sites} ({} case(s) without sites)",
            cases.len() as u64 - any_sites
        );

        // Static-analysis gate: per strategy, how many round-1 candidates
        // the analyzer flags (and typo-repairs) before they can reach the
        // engine, vs. how many of the gated candidates still fail there.
        for strategy in [
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            Strategy::FisqlDynamic,
            Strategy::QueryRewrite,
            Strategy::SearchRefine,
        ] {
            let mut flagged = 0u64;
            let mut repaired = 0u64;
            let mut saved = 0u64;
            let mut exec_failed = 0u64;
            for case in &cases {
                let example = &corpus.examples[case.error.example_idx];
                let db = corpus.database(example);
                let out = incorporate(
                    strategy,
                    &setup.llm,
                    &IncorporateContext {
                        db,
                        example,
                        question: &example.question,
                        previous: &normalize_query(&case.error.initial),
                        feedback: &case.feedback,
                        round: 0,
                        conformance_gate: false,
                    },
                );
                if out.gate.has_errors() {
                    flagged += 1;
                }
                if out.gate.repaired {
                    repaired += 1;
                }
                saved += out.gate.executions_saved;
                if execute(db, &out.query).is_err() {
                    exec_failed += 1;
                }
            }
            println!(
                "{name} gate [{}]: statically flagged {flagged} (repaired {repaired}, executions saved {saved}) | failed at engine {exec_failed} of {}",
                strategy.name(),
                cases.len()
            );
        }

        // Containment accounting: the same case set under a chaos stack
        // that also injects client-side panics. Every panic must land in
        // `cases_crashed` (never abort the run); the split between
        // crashed, degraded, and completed cases is the diagnostic.
        let crashing = Resilient::new(
            FaultyBackend::new(
                setup.llm.clone(),
                FaultConfig {
                    panic: 0.05,
                    ..FaultConfig::uniform(0.2)
                },
            ),
            ResilienceConfig {
                attempt_budget: 3,
                ..Default::default()
            },
        );
        let report = CorrectionRun::new(corpus, &crashing, &setup.user)
            .demos_k(3)
            .rounds(2)
            .workers(4)
            .run(&cases);
        println!(
            "{name} containment: {} of {} case(s) crashed (isolated), {} timed out, {} degraded, {} rounds degraded",
            report.cases_crashed,
            report.total,
            report.cases_timed_out,
            report.cases_degraded,
            report.degraded_rounds,
        );
    }
}
