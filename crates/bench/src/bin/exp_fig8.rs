//! Figure 8 — improving performance through additional feedback rounds
//! (SPIDER errors).
//!
//! Paper: round 2 adds ~15 points for both FISQL and FISQL (− Routing),
//! and after two rounds the (− Routing) variant has corrected the same
//! errors as FISQL (convergence).
//!
//! Run: `cargo run --release -p fisql-bench --bin exp_fig8`

use fisql_bench::{annotated_cases, correction, Setup};
use fisql_core::Strategy;

fn main() {
    let setup = Setup::from_env();
    println!(
        "# Figure 8 — multi-round feedback on SPIDER errors (seed {})\n",
        setup.seed
    );

    let (_, cases) = annotated_cases(&setup, &setup.spider);
    println!("annotated SPIDER feedback set: {} cases\n", cases.len());

    let rounds = 2;
    let fisql = correction(
        &setup,
        &setup.spider,
        &cases,
        Strategy::Fisql {
            routing: true,
            highlighting: false,
        },
        rounds,
    );
    let no_routing = correction(
        &setup,
        &setup.spider,
        &cases,
        Strategy::Fisql {
            routing: false,
            highlighting: false,
        },
        rounds,
    );

    println!(
        "{:<20} {:>10} {:>10} {:>14}",
        "Method", "round 1", "round 2", "paper (r1→r2)"
    );
    println!(
        "{:<20} {:>9.2}% {:>9.2}% {:>14}",
        "FISQL",
        fisql.pct_after(1),
        fisql.pct_after(2),
        "44.55→~60"
    );
    println!(
        "{:<20} {:>9.2}% {:>9.2}% {:>14}",
        "FISQL (- Routing)",
        no_routing.pct_after(1),
        no_routing.pct_after(2),
        "43.56→~59"
    );
    println!(
        "\nround-2 gain: FISQL +{:.1}pp, (-Routing) +{:.1}pp (paper: ~15pp each)",
        fisql.pct_after(2) - fisql.pct_after(1),
        no_routing.pct_after(2) - no_routing.pct_after(1)
    );
    println!(
        "convergence after 2 rounds: FISQL {} vs (-Routing) {} corrected (paper: equal)",
        fisql.corrected_after_round[1], no_routing.corrected_after_round[1]
    );

    let json = serde_json::json!({
        "figure": 8,
        "seed": setup.seed,
        "total": cases.len(),
        "fisql": fisql.corrected_after_round,
        "fisql_no_routing": no_routing.corrected_after_round,
    });
    println!("\n{json}");
}
