//! Table 3 — % instances corrected with highlights plus natural-language
//! feedback.
//!
//! Paper values:
//!
//! | Method                | Experience Platform | SPIDER |
//! |-----------------------|---------------------|--------|
//! | FISQL                 | 67.92               | 44.55  |
//! | FISQL (+ Highlighting)| 69.81               | 44.55  |
//!
//! Highlighting grounds feedback to the clause the user marked
//! (Figure 9); it helps on the jargon-dense Experience Platform and is
//! neutral on SPIDER.
//!
//! Run: `cargo run --release -p fisql-bench --bin exp_table3`

use fisql_bench::{annotated_cases, correction, pct, Setup};
use fisql_core::Strategy;

fn main() {
    let setup = Setup::from_env();
    println!("# Table 3 — highlight grounding (seed {})\n", setup.seed);

    let (_, spider_cases) = annotated_cases(&setup, &setup.spider);
    let (_, aep_cases) = annotated_cases(&setup, &setup.aep);

    let strategies = [
        (
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            67.92,
            44.55,
        ),
        (
            Strategy::Fisql {
                routing: true,
                highlighting: true,
            },
            69.81,
            44.55,
        ),
    ];

    println!(
        "{:<24} {:>12} {:>10} {:>12} {:>10}",
        "Method", "EP (ours)", "EP paper", "SPIDER(ours)", "paper"
    );
    let mut rows = Vec::new();
    for (strategy, ep_paper, spider_paper) in strategies {
        let ep = correction(&setup, &setup.aep, &aep_cases, strategy, 1);
        let sp = correction(&setup, &setup.spider, &spider_cases, strategy, 1);
        println!(
            "{:<24} {:>12} {:>10.2} {:>12} {:>10.2}",
            strategy.name(),
            pct(ep.corrected_after_round[0], ep.total),
            ep_paper,
            pct(sp.corrected_after_round[0], sp.total),
            spider_paper,
        );
        rows.push(serde_json::json!({
            "method": strategy.name(),
            "ep_pct": 100.0 * ep.corrected_after_round[0] as f64 / ep.total.max(1) as f64,
            "spider_pct": 100.0 * sp.corrected_after_round[0] as f64 / sp.total.max(1) as f64,
        }));
    }

    let json = serde_json::json!({"table": 3, "seed": setup.seed, "rows": rows});
    println!("\n{json}");
}
