//! Figure 2 — zero-shot NL2SQL accuracy: SPIDER vs AEP.
//!
//! Paper values: SPIDER 68.6%, AEP 24.0%. Also prints the §4.1 error
//! statistics (gpt-3.5 errs on 243/1034 SPIDER dev questions; ~41%
//! annotated).
//!
//! Run: `cargo run --release -p fisql-bench --bin exp_fig2`
//! (set `FISQL_SCALE=small` for a quick pass).

use fisql_bench::{annotated_cases, Setup};
use fisql_core::zero_shot_report;

fn main() {
    let setup = Setup::from_env();
    println!("# Figure 2 — zero-shot accuracy (seed {})\n", setup.seed);

    let spider = zero_shot_report(&setup.spider, &setup.llm);
    let aep = zero_shot_report(&setup.aep, &setup.llm);

    println!("{:<18} {:>10} {:>12}", "dataset", "accuracy", "paper");
    println!(
        "{:<18} {:>9.1}% {:>12}",
        "SPIDER (ours)",
        100.0 * spider.accuracy(),
        "68.6%"
    );
    println!(
        "{:<18} {:>9.1}% {:>12}",
        "AEP (ours)",
        100.0 * aep.accuracy(),
        "24.0%"
    );
    println!(
        "\nPer-hardness breakdown (SPIDER-like):\n{}",
        spider.render()
    );

    // §4.1 error statistics, measured with the production (few-shot RAG)
    // Assistant like the paper's collection protocol.
    let (spider_errors, spider_annotated) = annotated_cases(&setup, &setup.spider);
    println!("# §4.1 error statistics");
    println!(
        "SPIDER-like errors: {}/{} (paper: 243/1034)",
        spider_errors,
        setup.spider.examples.len()
    );
    println!(
        "annotated feedback: {} ({:.0}% of errors; paper: 101 ≈ 41%)",
        spider_annotated.len(),
        100.0 * spider_annotated.len() as f64 / spider_errors.max(1) as f64
    );

    let json = serde_json::json!({
        "figure": 2,
        "seed": setup.seed,
        "spider_accuracy": spider.accuracy(),
        "aep_accuracy": aep.accuracy(),
        "paper": {"spider": 0.686, "aep": 0.24},
        "spider_errors": spider_errors,
        "spider_total": setup.spider.examples.len(),
        "annotated": spider_annotated.len(),
    });
    println!("\n{json}");
}
