//! Serve-mode load benchmark: throughput and latency of the `fisql
//! serve` daemon under deterministic scripted load.
//!
//! Boots an in-process daemon (ephemeral port, 32 session slots) and
//! drives it at three client concurrency levels — under the cap, at the
//! cap, and 2× over it — with the seeded load generator. Each level
//! reports sessions/s, rounds/s, p50/p99 request latency, and the
//! admission counters; the over-cap level demonstrates backpressure
//! (queued admissions, zero failures). A final pair of runs asserts the
//! load digest is identical across repetitions — per-session transcripts
//! are deterministic regardless of scheduling. A final survivability
//! level mixes seeded chaos clients (slowloris, torn frames, stalls)
//! into the scripted load on a compacting, idle-reaping daemon and
//! reports the reap and compaction counters. Emits `BENCH_serve.json`;
//! CI uploads it as a workflow artifact.
//!
//! Run: `cargo run --release -p fisql-bench --bin bench_serve`

use fisql_core::serve::{run_chaos, run_load, ChaosConfig, Server};
use fisql_core::{LoadConfig, ServeConfig};

const MAX_SESSIONS: usize = 32;
const CONCURRENCY_LEVELS: [usize; 3] = [8, 32, 64];

fn main() {
    let serve_config = ServeConfig::default()
        .port(0)
        .max_sessions(MAX_SESSIONS)
        .queue_depth(64)
        .queue_wait_ms(30_000)
        .n_examples(60);
    println!(
        "# Serve load benchmark ({MAX_SESSIONS} session slots, corpus seed {:#x})\n",
        serve_config.seed
    );
    println!(
        "{:>11} {:>9} {:>10} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "concurrency",
        "sessions",
        "wall ms",
        "sessions/s",
        "rounds/s",
        "p50 us",
        "p99 us",
        "queued"
    );

    let mut rows = Vec::new();
    for concurrency in CONCURRENCY_LEVELS {
        let (report, summary) = one_level(&serve_config, concurrency, 0x10AD);
        let queued = summary.admission.admitted_queued;
        println!(
            "{:>11} {:>9} {:>10} {:>11.1} {:>9.1} {:>9} {:>9} {:>9}",
            concurrency,
            report.sessions_completed,
            report.wall_ms,
            report.sessions_per_sec(),
            report.rounds_per_sec(),
            report.latency_percentile_us(50.0),
            report.latency_percentile_us(99.0),
            queued,
        );
        assert_eq!(report.sessions_failed, 0, "load must not fail sessions");
        assert_eq!(
            report.sessions_completed + report.sessions_rejected,
            (2 * concurrency.max(MAX_SESSIONS)) as u64,
            "every scripted session must complete or be explicitly rejected"
        );
        rows.push(serde_json::json!({
            "concurrency": concurrency,
            "sessions": report.sessions_completed,
            "sessions_rejected": report.sessions_rejected,
            "rounds": report.rounds,
            "wall_ms": report.wall_ms,
            "sessions_per_sec": report.sessions_per_sec(),
            "rounds_per_sec": report.rounds_per_sec(),
            "latency_p50_us": report.latency_percentile_us(50.0),
            "latency_p99_us": report.latency_percentile_us(99.0),
            "admitted_queued": queued,
            "peak_active": summary.admission.peak_active,
            "reaped": summary.admission.reaped,
            "degraded": summary.sessions_degraded,
            "compactions": summary.store.compactions,
            "digest": format!("{:#018x}", report.digest),
        }));
    }

    // Determinism across repetitions: same seed, same scripts, same
    // per-session transcripts — the order-insensitive digest must agree.
    let (a, _) = one_level(&serve_config, 16, 0xD1CE);
    let (b, _) = one_level(&serve_config, 16, 0xD1CE);
    assert_eq!(
        a.digest, b.digest,
        "load digest diverged across identical runs"
    );
    println!(
        "\ndigest check: two identical runs agree ({:#018x})",
        a.digest
    );

    // Survivability level: scripted load with seeded chaos clients on a
    // compacting, idle-reaping daemon. The scripted sessions must all
    // complete and the chaos slots must all come back.
    let chaos_serve = serve_config
        .clone()
        .idle_timeout_ms(400)
        .compact_every(8)
        .store(std::env::temp_dir().join(format!("fisql-bench-chaos-{}.fjnl", std::process::id())));
    let server = Server::bind(chaos_serve.clone()).expect("bind chaos level");
    let handle = server.handle().expect("handle");
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));
    let chaos_addr = addr.clone();
    let chaos_thread = std::thread::spawn(move || {
        run_chaos(&ChaosConfig {
            addr: chaos_addr,
            clients: 12,
            seed: 0xC4A05,
            byte_pause_ms: 25,
            read_deadline_ms: 30_000,
            connect_retry_ms: 15_000,
            ..ChaosConfig::default()
        })
        .expect("chaos run")
    });
    let report = run_load(&LoadConfig {
        addr,
        sessions: 2 * MAX_SESSIONS,
        concurrency: 16,
        max_rounds: 2,
        seed: 0x10AD,
        corpus_seed: serve_config.seed,
        n_examples: serve_config.n_examples,
        ..LoadConfig::default()
    })
    .expect("load under chaos");
    let chaos_report = chaos_thread.join().expect("chaos thread");
    handle.shutdown();
    let summary = thread.join().expect("server thread");
    if let Some(path) = &chaos_serve.store {
        std::fs::remove_file(path).ok();
    }
    assert_eq!(
        report.sessions_failed, 0,
        "chaos must not fail healthy sessions"
    );
    assert_eq!(chaos_report.failed, 0, "chaos clients must all resolve");
    assert_eq!(summary.final_active, 0, "every chaos slot must return");
    println!(
        "\nchaos level: {} healthy session(s) completed beside {} attacker(s) — \
         {} reaped, {} compaction(s), {} slot(s) leaked",
        report.sessions_completed,
        chaos_report.clients,
        summary.admission.reaped,
        summary.store.compactions,
        summary.final_active,
    );

    let json = serde_json::json!({
        "max_sessions": MAX_SESSIONS,
        "queue_depth": 64,
        "corpus_seed": serve_config.seed,
        "n_examples": serve_config.n_examples,
        "levels": rows,
        "digest_stable_across_runs": true,
        "chaos": {
            "clients": chaos_report.clients,
            "admitted": chaos_report.admitted,
            "reaped_observed": chaos_report.reaped,
            "refused": chaos_report.refused,
            "disconnected": chaos_report.disconnected,
            "served": chaos_report.served,
            "reaped": summary.admission.reaped,
            "degraded": summary.sessions_degraded,
            "compactions": summary.store.compactions,
            "store_generation": summary.store.generation,
            "healthy_sessions": report.sessions_completed,
            "healthy_digest": format!("{:#018x}", report.digest),
            "final_active": summary.final_active,
        },
    });
    let out = "BENCH_serve.json";
    std::fs::write(out, json.to_string()).expect("write BENCH_serve.json");
    println!("wrote {out}");
}

/// Boots a fresh daemon, runs one load level against it, drains it, and
/// returns the load report plus the daemon's own summary.
fn one_level(
    serve_config: &ServeConfig,
    concurrency: usize,
    load_seed: u64,
) -> (fisql_core::LoadReport, fisql_core::serve::ServeSummary) {
    let server = Server::bind(serve_config.clone()).expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));

    let load = LoadConfig {
        addr,
        sessions: 2 * concurrency.max(MAX_SESSIONS),
        concurrency,
        max_rounds: 2,
        seed: load_seed,
        corpus_seed: serve_config.seed,
        n_examples: serve_config.n_examples,
        ..LoadConfig::default()
    };
    let report = run_load(&load).expect("load run");
    handle.shutdown();
    let summary = thread.join().expect("server thread");
    (report, summary)
}
