//! Serve-mode load benchmark: throughput and latency of the `fisql
//! serve` daemon under deterministic scripted load.
//!
//! Boots an in-process daemon (ephemeral port, 32 session slots) and
//! drives it at three client concurrency levels — under the cap, at the
//! cap, and 2× over it — with the seeded load generator. Each level
//! reports sessions/s, rounds/s, p50/p99 request latency, and the
//! admission counters; the over-cap level demonstrates backpressure
//! (queued admissions, zero failures). A final pair of runs asserts the
//! load digest is identical across repetitions — per-session transcripts
//! are deterministic regardless of scheduling. Emits `BENCH_serve.json`;
//! CI uploads it as a workflow artifact.
//!
//! Run: `cargo run --release -p fisql-bench --bin bench_serve`

use fisql_core::serve::{run_load, Server};
use fisql_core::{LoadConfig, ServeConfig};

const MAX_SESSIONS: usize = 32;
const CONCURRENCY_LEVELS: [usize; 3] = [8, 32, 64];

fn main() {
    let serve_config = ServeConfig::default()
        .port(0)
        .max_sessions(MAX_SESSIONS)
        .queue_depth(64)
        .queue_wait_ms(30_000)
        .n_examples(60);
    println!(
        "# Serve load benchmark ({MAX_SESSIONS} session slots, corpus seed {:#x})\n",
        serve_config.seed
    );
    println!(
        "{:>11} {:>9} {:>10} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "concurrency",
        "sessions",
        "wall ms",
        "sessions/s",
        "rounds/s",
        "p50 us",
        "p99 us",
        "queued"
    );

    let mut rows = Vec::new();
    for concurrency in CONCURRENCY_LEVELS {
        let (report, summary) = one_level(&serve_config, concurrency, 0x10AD);
        let queued = summary.admission.admitted_queued;
        println!(
            "{:>11} {:>9} {:>10} {:>11.1} {:>9.1} {:>9} {:>9} {:>9}",
            concurrency,
            report.sessions_completed,
            report.wall_ms,
            report.sessions_per_sec(),
            report.rounds_per_sec(),
            report.latency_percentile_us(50.0),
            report.latency_percentile_us(99.0),
            queued,
        );
        assert_eq!(report.sessions_failed, 0, "load must not fail sessions");
        assert_eq!(
            report.sessions_completed + report.sessions_rejected,
            (2 * concurrency.max(MAX_SESSIONS)) as u64,
            "every scripted session must complete or be explicitly rejected"
        );
        rows.push(serde_json::json!({
            "concurrency": concurrency,
            "sessions": report.sessions_completed,
            "sessions_rejected": report.sessions_rejected,
            "rounds": report.rounds,
            "wall_ms": report.wall_ms,
            "sessions_per_sec": report.sessions_per_sec(),
            "rounds_per_sec": report.rounds_per_sec(),
            "latency_p50_us": report.latency_percentile_us(50.0),
            "latency_p99_us": report.latency_percentile_us(99.0),
            "admitted_queued": queued,
            "peak_active": summary.admission.peak_active,
            "digest": format!("{:#018x}", report.digest),
        }));
    }

    // Determinism across repetitions: same seed, same scripts, same
    // per-session transcripts — the order-insensitive digest must agree.
    let (a, _) = one_level(&serve_config, 16, 0xD1CE);
    let (b, _) = one_level(&serve_config, 16, 0xD1CE);
    assert_eq!(
        a.digest, b.digest,
        "load digest diverged across identical runs"
    );
    println!(
        "\ndigest check: two identical runs agree ({:#018x})",
        a.digest
    );

    let json = serde_json::json!({
        "max_sessions": MAX_SESSIONS,
        "queue_depth": 64,
        "corpus_seed": serve_config.seed,
        "n_examples": serve_config.n_examples,
        "levels": rows,
        "digest_stable_across_runs": true,
    });
    let out = "BENCH_serve.json";
    std::fs::write(out, json.to_string()).expect("write BENCH_serve.json");
    println!("wrote {out}");
}

/// Boots a fresh daemon, runs one load level against it, drains it, and
/// returns the load report plus the daemon's own summary.
fn one_level(
    serve_config: &ServeConfig,
    concurrency: usize,
    load_seed: u64,
) -> (fisql_core::LoadReport, fisql_core::serve::ServeSummary) {
    let server = Server::bind(serve_config.clone()).expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));

    let load = LoadConfig {
        addr,
        sessions: 2 * concurrency.max(MAX_SESSIONS),
        concurrency,
        max_rounds: 2,
        seed: load_seed,
        corpus_seed: serve_config.seed,
        n_examples: serve_config.n_examples,
        ..LoadConfig::default()
    };
    let report = run_load(&load).expect("load run");
    handle.shutdown();
    let summary = thread.join().expect("server thread");
    (report, summary)
}
