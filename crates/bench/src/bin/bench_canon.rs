//! Canonicalization benchmark: semantic result cache + canonical oracle.
//!
//! Runs the SPIDER-subset correction experiment with the per-worker
//! semantic result cache on and off and asserts the acceptance
//! invariants of the canonical-form layer:
//!
//! - the serialized report is byte-identical with the cache on and off,
//!   at 1, 4, and 8 workers (the cache is never observable);
//! - the cache actually fires: at every worker count it skips at least
//!   one engine execution, and the measured engine-invocation count
//!   (logical executions minus cache hits) drops against the cache-off
//!   baseline.
//!
//! Emits `BENCH_canon.json` with a hit-rate column per run; CI uploads
//! it as a workflow artifact.
//!
//! Run: `FISQL_SCALE=small cargo run --release -p fisql-bench --bin bench_canon`

use fisql_bench::{annotated_cases, runner, Setup};
use fisql_core::{CorrectionReport, Strategy};

fn main() {
    let setup = Setup::from_env();
    println!("# Canonicalization benchmark (seed {})\n", setup.seed);

    let (_, cases) = annotated_cases(&setup, &setup.spider);
    println!("annotated SPIDER feedback set: {} cases", cases.len());

    let strategy = Strategy::Fisql {
        routing: true,
        highlighting: false,
    };
    let rounds = 2;
    let run_with = |workers: usize, cache: bool| -> CorrectionReport {
        runner(&setup, &setup.spider)
            .strategy(strategy)
            .rounds(rounds)
            .workers(workers)
            .semantic_cache(cache)
            .run(&cases)
    };

    // Warm the embedding/selection caches.
    let _ = run_with(1, false);

    // The cache-off baseline: every logical execution reaches the
    // engine, so its logical count is the measured count.
    let baseline = run_with(1, false);
    let baseline_json = serde_json::to_string(&baseline).unwrap();
    let baseline_measured = baseline.metrics.engine_executions;
    assert_eq!(
        baseline.metrics.executions_skipped_cache, 0,
        "disabled cache must not count hits"
    );

    println!(
        "\n{:>8} {:>8} {:>10} {:>10} {:>10} {:>9} {:>11}",
        "workers", "cache", "logical", "skipped", "measured", "hit rate", "reduction"
    );
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>9} {:>11}",
        1, "off", baseline_measured, 0, baseline_measured, "-", "-"
    );
    let mut rows = vec![serde_json::json!({
        "requested_workers": 1,
        "effective_workers": baseline.metrics.workers,
        "semantic_cache": false,
        "wall_ms": baseline.metrics.wall_ms,
        "logical_executions": baseline_measured,
        "executions_skipped_cache": 0,
        "measured_executions": baseline_measured,
        "cache_hit_rate": 0.0,
        "reduction_vs_uncached": 0.0,
        "report_bit_identical": true,
    })];
    for workers in [1usize, 4, 8] {
        let report = run_with(workers, true);
        let m = &report.metrics;

        // Observability acceptance: the cache never changes the report.
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            baseline_json,
            "cached report diverged from uncached at {workers} workers"
        );
        // Effectiveness acceptance: the cache fires and the measured
        // engine-invocation count drops.
        assert!(
            m.executions_skipped_cache >= 1,
            "no executions served from cache at {workers} workers"
        );
        let measured = m.engine_executions - m.executions_skipped_cache;
        assert!(
            measured < baseline_measured,
            "no measured execution drop at {workers} workers"
        );

        let reduction = 1.0 - (measured as f64 / baseline_measured as f64);
        println!(
            "{:>8} {:>8} {:>10} {:>10} {:>10} {:>8.1}% {:>10.1}%",
            m.workers,
            "on",
            m.engine_executions,
            m.executions_skipped_cache,
            measured,
            100.0 * m.semantic_cache_hit_rate(),
            100.0 * reduction,
        );
        rows.push(serde_json::json!({
            "requested_workers": workers,
            "effective_workers": m.workers,
            "semantic_cache": true,
            "wall_ms": m.wall_ms,
            "logical_executions": m.engine_executions,
            "executions_skipped_cache": m.executions_skipped_cache,
            "measured_executions": measured,
            "cache_hit_rate": m.semantic_cache_hit_rate(),
            "reduction_vs_uncached": reduction,
            "report_bit_identical": true,
        }));
    }

    let json = serde_json::json!({
        "seed": setup.seed,
        "cases": cases.len(),
        "rounds": rounds,
        "strategy": baseline.strategy,
        "corrected_after_round": baseline.corrected_after_round,
        "baseline_measured_executions": baseline_measured,
        "runs": rows,
    });
    let out = "BENCH_canon.json";
    std::fs::write(out, json.to_string()).expect("write BENCH_canon.json");
    println!("\nwrote {out}");
}
