//! Repair-search benchmark: the `SearchRefine` strategy against the
//! Query Rewrite baseline.
//!
//! Runs the SPIDER-subset correction experiment with both strategies and
//! asserts the acceptance invariants of the repair search:
//!
//! - SearchRefine corrects at least as many cases as Query Rewrite while
//!   spending fewer engine executions per corrected case (the whole
//!   candidate pool is pruned and ranked statically; only the chosen
//!   candidate is validated);
//! - the static pruner removes candidates on real workloads (the
//!   `executions_skipped_static` / `executions_saved` ledger is not
//!   empty);
//! - SearchRefine reports are byte-identical at every worker count.
//!
//! Emits `BENCH_search.json`; CI uploads it as a workflow artifact.
//!
//! Run: `FISQL_SCALE=small cargo run --release -p fisql-bench --bin bench_search`

use fisql_bench::{annotated_cases, runner, Setup};
use fisql_core::{CorrectionReport, Strategy};

fn main() {
    let setup = Setup::from_env();
    println!("# Repair-search benchmark (seed {})\n", setup.seed);

    let (_, cases) = annotated_cases(&setup, &setup.spider);
    println!("annotated SPIDER feedback set: {} cases", cases.len());

    let rounds = 2;
    let run_with = |strategy: Strategy, workers: usize| -> CorrectionReport {
        runner(&setup, &setup.spider)
            .strategy(strategy)
            .rounds(rounds)
            .workers(workers)
            .run(&cases)
    };

    // Warm the embedding/selection caches.
    let _ = run_with(Strategy::QueryRewrite, 1);

    let corrected = |r: &CorrectionReport| *r.corrected_after_round.last().unwrap_or(&0);
    let per_corrected = |r: &CorrectionReport| {
        r.metrics.engine_executions as f64 / f64::from(u32::try_from(corrected(r).max(1)).unwrap())
    };

    let rewrite = run_with(Strategy::QueryRewrite, 1);
    let search = run_with(Strategy::SearchRefine, 1);
    let search_json = serde_json::to_string(&search).unwrap();

    // Accuracy: the search must match or beat the rewrite baseline.
    assert!(
        corrected(&search) >= corrected(&rewrite),
        "SearchRefine corrected {} cases, Query Rewrite {}",
        corrected(&search),
        corrected(&rewrite)
    );
    assert!(corrected(&search) > 0, "SearchRefine corrected nothing");
    // Efficiency: fewer engine executions per corrected case.
    assert!(
        per_corrected(&search) < per_corrected(&rewrite),
        "SearchRefine spent {:.2} executions per corrected case, Query Rewrite {:.2}",
        per_corrected(&search),
        per_corrected(&rewrite)
    );
    // The static pruner actually worked.
    assert!(
        search.executions_skipped_static + search.executions_saved > 0,
        "the repair search pruned nothing statically"
    );

    println!(
        "\n{:>14} {:>10} {:>12} {:>14} {:>12} {:>12}",
        "strategy", "corrected", "executions", "exec/corrected", "pruned", "saved"
    );
    for (name, report) in [("Query Rewrite", &rewrite), ("SearchRefine", &search)] {
        println!(
            "{:>14} {:>10} {:>12} {:>14.2} {:>12} {:>12}",
            name,
            corrected(report),
            report.metrics.engine_executions,
            per_corrected(report),
            report.executions_skipped_static,
            report.executions_saved,
        );
    }

    // Determinism: byte-identical SearchRefine reports at every worker
    // count.
    let mut rows = Vec::new();
    for workers in [1usize, 2] {
        let report = run_with(Strategy::SearchRefine, workers);
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            search_json,
            "SearchRefine report diverged at {workers} workers"
        );
        rows.push(serde_json::json!({
            "requested_workers": workers,
            "effective_workers": report.metrics.workers,
            "wall_ms": report.metrics.wall_ms,
            "report_identical": true,
        }));
    }

    let json = serde_json::json!({
        "seed": setup.seed,
        "cases": cases.len(),
        "rounds": rounds,
        "search": {
            "strategy": search.strategy,
            "corrected_after_round": search.corrected_after_round,
            "engine_executions": search.metrics.engine_executions,
            "executions_per_corrected_case": per_corrected(&search),
            "candidates_pruned_statically": search.executions_skipped_static,
            "executions_saved": search.executions_saved,
        },
        "rewrite_baseline": {
            "strategy": rewrite.strategy,
            "corrected_after_round": rewrite.corrected_after_round,
            "engine_executions": rewrite.metrics.engine_executions,
            "executions_per_corrected_case": per_corrected(&rewrite),
        },
        "worker_runs": rows,
    });
    let out = "BENCH_search.json";
    std::fs::write(out, json.to_string()).expect("write BENCH_search.json");
    println!("\nwrote {out}");
}
