//! Extension experiment: fixed vs dynamic routing demonstrations.
//!
//! The paper's §5 proposes enhancing the routing mechanism "with dynamic
//! example selection based on query structure and feedback" as future
//! work. This binary measures that extension against the paper's fixed
//! per-type demonstration sets.
//!
//! Run: `cargo run --release -p fisql-bench --bin ablation_dynamic`

use fisql_bench::{annotated_cases, correction, pct, Setup};
use fisql_core::Strategy;

fn main() {
    let setup = Setup::from_env();
    println!(
        "# Extension — fixed vs dynamic routing demonstrations (seed {})\n",
        setup.seed
    );

    let (_, spider_cases) = annotated_cases(&setup, &setup.spider);
    let (_, aep_cases) = annotated_cases(&setup, &setup.aep);

    println!("{:<26} {:>12} {:>12}", "Method", "EP", "SPIDER");
    let mut rows = Vec::new();
    for strategy in [
        Strategy::Fisql {
            routing: true,
            highlighting: false,
        },
        Strategy::FisqlDynamic,
    ] {
        let ep = correction(&setup, &setup.aep, &aep_cases, strategy, 1);
        let sp = correction(&setup, &setup.spider, &spider_cases, strategy, 1);
        println!(
            "{:<26} {:>12} {:>12}",
            strategy.name(),
            pct(ep.corrected_after_round[0], ep.total),
            pct(sp.corrected_after_round[0], sp.total)
        );
        rows.push(serde_json::json!({
            "method": strategy.name(),
            "ep_pct": 100.0 * ep.corrected_after_round[0] as f64 / ep.total.max(1) as f64,
            "spider_pct": 100.0 * sp.corrected_after_round[0] as f64 / sp.total.max(1) as f64,
        }));
    }
    println!(
        "\n{}",
        serde_json::json!({"ablation": "dynamic-routing", "rows": rows})
    );
}
