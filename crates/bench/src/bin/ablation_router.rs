//! Ablation: router-accuracy sweep.
//!
//! DESIGN.md §5 — how the one-round correction rate degrades as the
//! feedback-type classifier is corrupted, from a perfect router down to
//! near-random routing. The paper only reports routing fully on vs fully
//! off (Table 2); this sweep maps the space between.
//!
//! Run: `cargo run --release -p fisql-bench --bin ablation_router`

use fisql_bench::{annotated_cases, correction, pct, Setup};
use fisql_core::Strategy;
use fisql_llm::SimLlm;

fn main() {
    let mut setup = Setup::from_env();
    println!("# Ablation — router noise sweep (seed {})\n", setup.seed);
    let (_, cases) = annotated_cases(&setup, &setup.spider);
    println!("annotated SPIDER cases: {}\n", cases.len());

    println!("{:<14} {:>22}", "router noise", "% corrected (1 round)");
    let mut rows = Vec::new();
    for noise in [0.0, 0.06, 0.15, 0.30, 0.50, 0.6667] {
        let mut cfg = setup.llm.cfg;
        cfg.calibration.router_noise = noise;
        setup.llm = SimLlm::new(cfg);
        let report = correction(
            &setup,
            &setup.spider,
            &cases,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            1,
        );
        println!(
            "{:<14.2} {:>22}",
            noise,
            pct(report.corrected_after_round[0], report.total)
        );
        rows.push(serde_json::json!({
            "noise": noise,
            "pct": 100.0 * report.corrected_after_round[0] as f64 / report.total.max(1) as f64,
        }));
    }
    println!("\n(noise 0.67 ≈ uniform routing; compare the FISQL(- Routing) row of Table 2)");
    println!(
        "\n{}",
        serde_json::json!({"ablation": "router", "rows": rows})
    );
}
