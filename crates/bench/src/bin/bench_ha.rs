//! Hot-standby replication benchmark: what a failover costs and what
//! replication sustains.
//!
//! Two parts:
//!
//! 1. **Steady state** — a primary/follower pair on ephemeral ports,
//!    scripted load against the primary; reports records shipped per
//!    second and the follower's lag once the load drains (must be 0
//!    after a quiesce).
//! 2. **Kill levels** — the deterministic [`run_failover`] harness
//!    stages baseline → HA pair → `kill -9` at three points (mid-load,
//!    during compaction, at a replication-lag boundary) and reports
//!    client re-attach latency p50/p99, failovers, lost rounds, and
//!    whether the surviving transcript digest matches the unfailed
//!    baseline. Quorum levels assert zero loss and digest identity.
//!
//! Emits `BENCH_ha.json`; CI uploads it as a workflow artifact.
//!
//! Run: `cargo run --release -p fisql-bench --bin bench_ha`

use fisql_core::serve::{run_failover, run_load, AckMode, FailoverConfig, KillPoint, Server};
use fisql_core::{LoadConfig, ServeConfig};
use std::path::PathBuf;

fn temp_store(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("fisql-bench-ha-{tag}-{}.fjnl", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

fn main() {
    let small = std::env::var("FISQL_SCALE").is_ok_and(|s| s == "small");
    let sessions = if small { 16 } else { 32 };
    let serve = ServeConfig::default().port(0).n_examples(24);
    println!(
        "# Hot-standby replication benchmark ({sessions} scripted sessions, corpus seed {:#x})\n",
        serve.seed
    );

    // ---- Steady state: one pair, load on the primary only.
    let p_store = temp_store("steady-primary");
    let f_store = temp_store("steady-follower");
    let primary = Server::bind(
        serve
            .clone()
            .store(&p_store)
            .repl_listen("127.0.0.1:0")
            .repl_ack(AckMode::Quorum),
    )
    .expect("bind primary");
    let repl_addr = primary.repl_addr().expect("repl listener");
    let p_handle = primary.handle().expect("handle");
    let p_addr = p_handle.addr().to_string();
    let p_thread = std::thread::spawn(move || primary.serve().expect("primary loop"));
    let follower = Server::bind(
        serve
            .clone()
            .store(&f_store)
            .replica_of(repl_addr.to_string())
            .auto_promote(false),
    )
    .expect("bind follower");
    let f_handle = follower.handle().expect("handle");
    let f_thread = std::thread::spawn(move || follower.serve().expect("follower loop"));

    let steady = run_load(&LoadConfig {
        addr: p_addr,
        sessions,
        concurrency: 8,
        max_rounds: 2,
        seed: 0x51EAD,
        corpus_seed: serve.seed,
        n_examples: serve.n_examples,
        connect_retry_ms: 10_000,
        ..LoadConfig::default()
    })
    .expect("steady load");
    assert_eq!(steady.sessions_failed, 0, "steady load must not fail");
    let stats = steady.stats.as_ref().expect("primary stats");
    let shipped = stats.repl_records_shipped;
    let records_per_sec = 1000.0 * shipped as f64 / steady.wall_ms.max(1) as f64;
    let lag_after_drain = p_handle.repl().log.lag();
    println!(
        "steady state: {} record(s) shipped in {:.1} s — {:.1} records/s, \
         lag after drain {} (quorum acks, {} timeout(s))",
        shipped,
        steady.wall_ms as f64 / 1000.0,
        records_per_sec,
        lag_after_drain,
        stats.repl_ack_timeouts,
    );
    f_handle.shutdown();
    f_thread.join().expect("follower thread");
    p_handle.shutdown();
    p_thread.join().expect("primary thread");
    std::fs::remove_file(&p_store).ok();
    std::fs::remove_file(&f_store).ok();

    // ---- Kill levels: the deterministic failover harness.
    println!(
        "\n{:>18} {:>7} {:>9} {:>10} {:>11} {:>11} {:>7}",
        "kill point", "ack", "failovers", "lost", "p50 us", "p99 us", "digest"
    );
    // Load seeds are the ones the failover integration suite pins: the
    // kill-to-schedule alignment is seed-sensitive, and these are the
    // schedules proven to put live sessions under the axe.
    let levels: [(&str, AckMode, KillPoint, u64, u64); 3] = [
        (
            "after-rounds",
            AckMode::Quorum,
            KillPoint::AfterRounds(2),
            0,
            0xFA11,
        ),
        (
            "during-compaction",
            AckMode::Quorum,
            KillPoint::DuringCompaction,
            2,
            0xC0AC,
        ),
        (
            "lag-boundary",
            AckMode::None,
            KillPoint::LagBoundary,
            0,
            0x1A6B,
        ),
    ];
    let mut rows = Vec::new();
    for (name, ack, kill, compact_every, load_seed) in levels {
        let mut level_serve = serve.clone().repl_ack(ack).repl_ack_timeout_ms(5_000);
        if compact_every > 0 {
            level_serve = level_serve.compact_every(compact_every);
        }
        // The compaction-triggered kill needs enough load left *after*
        // the first rewrite to land on live sessions at release speed.
        let level_sessions = if kill == KillPoint::DuringCompaction {
            sessions * 4
        } else {
            sessions
        };
        let config = FailoverConfig {
            serve: level_serve,
            baseline_store: temp_store(&format!("{name}-baseline")),
            primary_store: temp_store(&format!("{name}-primary")),
            follower_store: temp_store(&format!("{name}-follower")),
            sessions: level_sessions,
            concurrency: 4,
            max_rounds: 2,
            load_seed,
            kill,
            reattach_budget_ms: 20_000,
        };
        let report = run_failover(&config).expect("failover run");
        for path in [
            &config.baseline_store,
            &config.primary_store,
            &config.follower_store,
        ] {
            std::fs::remove_file(path).ok();
        }
        assert_eq!(report.ha.sessions_failed, 0, "{name}: sessions failed");
        assert!(report.failovers >= 1, "{name}: the kill must be felt");
        if ack == AckMode::Quorum {
            assert_eq!(report.lost_rounds, 0, "{name}: quorum lost rounds");
            assert!(report.digests_match, "{name}: quorum digest diverged");
        }
        let p50 = report.ha.failover_percentile_us(50.0);
        let p99 = report.ha.failover_percentile_us(99.0);
        println!(
            "{:>18} {:>7} {:>9} {:>10} {:>11} {:>11} {:>7}",
            name,
            ack.to_string(),
            report.failovers,
            report.lost_rounds,
            p50,
            p99,
            if report.digests_match {
                "match"
            } else {
                "DIFF"
            },
        );
        rows.push(serde_json::json!({
            "kill_point": name,
            "ack": ack.to_string(),
            "sessions": report.ha.sessions_completed,
            "failovers": report.failovers,
            "lost_rounds": report.lost_rounds,
            "failover_p50_us": p50,
            "failover_p99_us": p99,
            "digests_match": report.digests_match,
            "survivor_role": report.survivor.as_ref().map(|s| format!("{:?}", s.role)),
            "survivor_epoch": report.survivor.as_ref().map(|s| s.epoch),
            "survivor_lag_records": report.survivor.as_ref().map(|s| s.replication_lag_records),
            "ha_wall_ms": report.ha.wall_ms,
            "baseline_wall_ms": report.baseline.wall_ms,
        }));
    }

    let json = serde_json::json!({
        "sessions": sessions,
        "corpus_seed": serve.seed,
        "n_examples": serve.n_examples,
        "steady_state": {
            "records_shipped": shipped,
            "records_per_sec": records_per_sec,
            "lag_after_drain": lag_after_drain,
            "ack_timeouts": stats.repl_ack_timeouts,
            "wall_ms": steady.wall_ms,
        },
        "kill_levels": rows,
    });
    let out = "BENCH_ha.json";
    std::fs::write(out, json.to_string()).expect("write BENCH_ha.json");
    println!("\nwrote {out}");
}
