//! §4.2 — error analysis: why feedback rounds fail.
//!
//! The paper attributes residual errors to (a) multiple errors needing
//! multiple rounds, (b) failure to interpret/apply the feedback, and (c)
//! misaligned feedback. This binary quantifies that taxonomy for every
//! strategy on both datasets.
//!
//! Run: `cargo run --release -p fisql-bench --bin exp_error_analysis`

use fisql_bench::{annotated_cases, Setup};
use fisql_core::{analyze_round, Strategy};

fn main() {
    let setup = Setup::from_env();
    println!("# §4.2 — error analysis (seed {})\n", setup.seed);
    let (_, spider_cases) = annotated_cases(&setup, &setup.spider);
    let (_, aep_cases) = annotated_cases(&setup, &setup.aep);

    let mut reports = Vec::new();
    for (corpus, cases) in [(&setup.spider, &spider_cases), (&setup.aep, &aep_cases)] {
        for strategy in [
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            Strategy::QueryRewrite,
        ] {
            let a = analyze_round(corpus, cases, strategy, &setup.llm);
            println!("{}", a.render());
            reports.push(a);
        }
    }
    println!(
        "{}",
        serde_json::to_string(&reports).expect("reports serialize")
    );
}
