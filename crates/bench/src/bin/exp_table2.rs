//! Table 2 — % instances corrected after one feedback round.
//!
//! Paper values:
//!
//! | Method            | Experience Platform | SPIDER |
//! |-------------------|---------------------|--------|
//! | Query Rewrite     | 35.85               | 16.83  |
//! | FISQL (- Routing) | —                   | 43.56  |
//! | FISQL             | 67.92               | 44.55  |
//!
//! Run: `cargo run --release -p fisql-bench --bin exp_table2`
//! Pass `--show-examples` to also print Table 1-style feedback examples.

use fisql_bench::{annotated_cases, correction, pct, Setup};
use fisql_core::Strategy;
use fisql_sqlkit::OpClass;

fn main() {
    let show_examples = std::env::args().any(|a| a == "--show-examples");
    let setup = Setup::from_env();
    println!("# Table 2 — % instances corrected (seed {})\n", setup.seed);

    let (spider_errors, spider_cases) = annotated_cases(&setup, &setup.spider);
    let (aep_errors, aep_cases) = annotated_cases(&setup, &setup.aep);
    println!(
        "annotated feedback sets: SPIDER {} (of {} errors; paper 101), EP {} (of {} errors; paper 53)\n",
        spider_cases.len(),
        spider_errors,
        aep_cases.len(),
        aep_errors
    );

    let strategies = [
        (Strategy::QueryRewrite, Some(35.85), Some(16.83)),
        (
            Strategy::Fisql {
                routing: false,
                highlighting: false,
            },
            None,
            Some(43.56),
        ),
        (
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            Some(67.92),
            Some(44.55),
        ),
    ];

    println!(
        "{:<20} {:>12} {:>10} {:>12} {:>10}",
        "Method", "EP (ours)", "EP paper", "SPIDER(ours)", "paper"
    );
    let mut rows = Vec::new();
    for (strategy, ep_paper, spider_paper) in strategies {
        let ep = correction(&setup, &setup.aep, &aep_cases, strategy, 1);
        let sp = correction(&setup, &setup.spider, &spider_cases, strategy, 1);
        println!(
            "{:<20} {:>12} {:>10} {:>12} {:>10}",
            strategy.name(),
            pct(ep.corrected_after_round[0], ep.total),
            ep_paper.map(|v| format!("{v:.2}")).unwrap_or("-".into()),
            pct(sp.corrected_after_round[0], sp.total),
            spider_paper
                .map(|v| format!("{v:.2}"))
                .unwrap_or("-".into()),
        );
        rows.push(serde_json::json!({
            "method": strategy.name(),
            "ep_pct": 100.0 * ep.corrected_after_round[0] as f64 / ep.total.max(1) as f64,
            "spider_pct": 100.0 * sp.corrected_after_round[0] as f64 / sp.total.max(1) as f64,
            "ep_paper": ep_paper,
            "spider_paper": spider_paper,
        }));
    }

    if show_examples {
        println!("\n# Table 1 — example feedback per type");
        let mut seen = std::collections::HashSet::new();
        for case in spider_cases.iter().chain(&aep_cases) {
            let class = case
                .feedback
                .intended
                .first()
                .map(|e| e.class())
                .unwrap_or(OpClass::Edit);
            if seen.insert(class) {
                println!("{:<8} {}", class.to_string(), case.feedback.text);
            }
            if seen.len() >= 3 {
                break;
            }
        }
    }

    let json = serde_json::json!({"table": 2, "seed": setup.seed, "rows": rows});
    println!("\n{json}");
}
