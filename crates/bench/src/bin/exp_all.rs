//! Runs every experiment of the paper in sequence and prints a combined
//! paper-vs-measured summary (the source for EXPERIMENTS.md).
//!
//! Run: `cargo run --release -p fisql-bench --bin exp_all`

use fisql_bench::{annotated_cases, correction, Setup};
use fisql_core::{zero_shot_report, Strategy};

fn main() {
    let setup = Setup::from_env();
    println!("# FISQL — full experiment suite (seed {})\n", setup.seed);

    // Figure 2.
    let spider_zs = zero_shot_report(&setup.spider, &setup.llm);
    let aep_zs = zero_shot_report(&setup.aep, &setup.llm);

    // §4.1 statistics.
    let (spider_errors, spider_cases) = annotated_cases(&setup, &setup.spider);
    let (aep_errors, aep_cases) = annotated_cases(&setup, &setup.aep);

    // Tables 2-3.
    let fisql = Strategy::Fisql {
        routing: true,
        highlighting: false,
    };
    let no_routing = Strategy::Fisql {
        routing: false,
        highlighting: false,
    };
    let highlighting = Strategy::Fisql {
        routing: true,
        highlighting: true,
    };
    let p = |r: &fisql_core::CorrectionReport, round: usize| r.pct_after(round);

    let qr_ep = correction(&setup, &setup.aep, &aep_cases, Strategy::QueryRewrite, 1);
    let qr_sp = correction(
        &setup,
        &setup.spider,
        &spider_cases,
        Strategy::QueryRewrite,
        1,
    );
    let nr_sp = correction(&setup, &setup.spider, &spider_cases, no_routing, 2);
    let nr_ep = correction(&setup, &setup.aep, &aep_cases, no_routing, 1);
    let fi_ep = correction(&setup, &setup.aep, &aep_cases, fisql, 1);
    let fi_sp = correction(&setup, &setup.spider, &spider_cases, fisql, 2);
    let hl_ep = correction(&setup, &setup.aep, &aep_cases, highlighting, 1);
    let hl_sp = correction(&setup, &setup.spider, &spider_cases, highlighting, 1);

    println!("| Experiment                        | Paper  | Measured |");
    println!("|-----------------------------------|--------|----------|");
    println!(
        "| Fig 2: SPIDER zero-shot accuracy  | 68.6%  | {:>7.1}% |",
        100.0 * spider_zs.accuracy()
    );
    println!(
        "| Fig 2: AEP zero-shot accuracy     | 24.0%  | {:>7.1}% |",
        100.0 * aep_zs.accuracy()
    );
    println!(
        "| §4.1: SPIDER errors               | 243/1034 | {}/{} |",
        spider_errors,
        setup.spider.examples.len()
    );
    println!(
        "| §4.1: annotated SPIDER feedback   | 101 (~41%) | {} ({:.0}%) |",
        spider_cases.len(),
        100.0 * spider_cases.len() as f64 / spider_errors.max(1) as f64
    );
    println!(
        "| §4.1: EP feedback set             | 53     | {} (of {} errors) |",
        aep_cases.len(),
        aep_errors
    );
    println!(
        "| T2: Query Rewrite EP / SPIDER     | 35.85 / 16.83 | {:.2} / {:.2} |",
        p(&qr_ep, 1),
        p(&qr_sp, 1)
    );
    println!(
        "| T2: FISQL(-Routing) SPIDER        | 43.56  | {:>7.2} |",
        p(&nr_sp, 1)
    );
    println!(
        "| T2: FISQL(-Routing) EP            | —      | {:>7.2} |",
        p(&nr_ep, 1)
    );
    println!(
        "| T2: FISQL EP / SPIDER             | 67.92 / 44.55 | {:.2} / {:.2} |",
        p(&fi_ep, 1),
        p(&fi_sp, 1)
    );
    println!(
        "| F8: FISQL round 2 (SPIDER)        | ~60    | {:>7.2} |",
        p(&fi_sp, 2)
    );
    println!(
        "| F8: (-Routing) round 2 (SPIDER)   | ~59    | {:>7.2} |",
        p(&nr_sp, 2)
    );
    println!(
        "| T3: FISQL+Highlight EP / SPIDER   | 69.81 / 44.55 | {:.2} / {:.2} |",
        p(&hl_ep, 1),
        p(&hl_sp, 1)
    );

    let json = serde_json::json!({
        "seed": setup.seed,
        "fig2": {"spider": spider_zs.accuracy(), "aep": aep_zs.accuracy()},
        "errors": {"spider": spider_errors, "spider_annotated": spider_cases.len(),
                    "aep": aep_errors, "aep_annotated": aep_cases.len()},
        "table2": {
            "query_rewrite": {"ep": p(&qr_ep, 1), "spider": p(&qr_sp, 1)},
            "fisql_no_routing": {"ep": p(&nr_ep, 1), "spider": p(&nr_sp, 1)},
            "fisql": {"ep": p(&fi_ep, 1), "spider": p(&fi_sp, 1)},
        },
        "fig8": {"fisql": fi_sp.corrected_after_round, "no_routing": nr_sp.corrected_after_round,
                  "total": spider_cases.len()},
        "table3": {
            "fisql_highlight": {"ep": p(&hl_ep, 1), "spider": p(&hl_sp, 1)},
        },
    });
    println!("\n{json}");
}
