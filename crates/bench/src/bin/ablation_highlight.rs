//! Ablation: highlight-coverage sweep.
//!
//! DESIGN.md §5 — Table 3 reports highlighting fully available; this
//! sweep varies how often users actually attach a highlight, mapping the
//! engagement→benefit curve of the interface feature.
//!
//! Run: `cargo run --release -p fisql-bench --bin ablation_highlight`

use fisql_bench::{annotated_cases, correction, pct, Setup};
use fisql_core::Strategy;
use fisql_feedback::{SimUser, UserConfig};

fn main() {
    let base = Setup::from_env();
    println!(
        "# Ablation — highlight coverage sweep (seed {})\n",
        base.seed
    );

    println!("{:<14} {:>14} {:>14}", "p(highlight)", "SPIDER", "EP");
    let mut rows = Vec::new();
    for p_highlight in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut setup = Setup::new(fisql_bench::Scale::from_env(), base.seed);
        setup.user = SimUser::new(UserConfig {
            seed: base.seed ^ 0x05E4,
            p_highlight,
            ..Default::default()
        });
        let mut pcts = Vec::new();
        for corpus in [&setup.spider, &setup.aep] {
            let (_, cases) = annotated_cases(&setup, corpus);
            let report = correction(
                &setup,
                corpus,
                &cases,
                Strategy::Fisql {
                    routing: true,
                    highlighting: true,
                },
                1,
            );
            pcts.push((report.corrected_after_round[0], report.total));
        }
        println!(
            "{:<14.2} {:>14} {:>14}",
            p_highlight,
            pct(pcts[0].0, pcts[0].1),
            pct(pcts[1].0, pcts[1].1)
        );
        rows.push(serde_json::json!({
            "p_highlight": p_highlight,
            "spider_pct": 100.0 * pcts[0].0 as f64 / pcts[0].1.max(1) as f64,
            "ep_pct": 100.0 * pcts[1].0 as f64 / pcts[1].1.max(1) as f64,
        }));
    }
    println!("\n(p = 0 reduces to plain FISQL; p = 1 is Table 3's '+ Highlighting' row)");
    println!(
        "\n{}",
        serde_json::json!({"ablation": "highlight", "rows": rows})
    );
}
