//! Parallel-runner benchmark: serial vs sharded correction runs.
//!
//! Runs the same correction experiment at 1, 2, 4, and 8 workers,
//! asserts the reports are byte-identical (the runner's determinism
//! contract), and emits `BENCH_parallel.json` with wall times, speedups,
//! and cache statistics. CI uploads the file as a workflow artifact.
//!
//! Run: `FISQL_SCALE=small cargo run --release -p fisql-bench --bin bench`
//!
//! Speedup is hardware-dependent: on a single-core machine every worker
//! count degenerates to roughly serial throughput (the report records
//! `available_parallelism` so results are interpretable).

use fisql_bench::{annotated_cases, runner, Setup};
use fisql_core::{CorrectionReport, Strategy};

fn main() {
    let setup = Setup::from_env();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "# Parallel runner benchmark (seed {}, {} core(s) available)\n",
        setup.seed, cores
    );

    let (_, cases) = annotated_cases(&setup, &setup.spider);
    println!("annotated SPIDER feedback set: {} cases", cases.len());

    let strategy = Strategy::Fisql {
        routing: true,
        highlighting: false,
    };
    let rounds = 2;
    let run_at = |workers: usize| -> CorrectionReport {
        runner(&setup, &setup.spider)
            .strategy(strategy)
            .rounds(rounds)
            .workers(workers)
            .run(&cases)
    };

    // Warm the embedding/selection caches so every worker count is
    // measured against the same cache state.
    let _ = run_at(1);

    let serial = run_at(1);
    let serial_json = serde_json::to_string(&serial).unwrap();
    println!(
        "\n{:>8} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "workers", "wall ms", "cases/s", "speedup", "cache hits", "identical"
    );

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let report = run_at(workers);
        let identical = serde_json::to_string(&report).unwrap() == serial_json;
        assert!(
            identical,
            "report at {workers} workers diverged from serial"
        );
        let m = &report.metrics;
        let speedup = serial.metrics.wall_ms / m.wall_ms.max(1e-9);
        println!(
            "{:>8} {:>12.2} {:>12.1} {:>9.2}x {:>12} {:>10}",
            m.workers, m.wall_ms, m.cases_per_sec, speedup, m.cache_hits, identical
        );
        rows.push(serde_json::json!({
            "requested_workers": workers,
            "effective_workers": m.workers,
            "wall_ms": m.wall_ms,
            "cases_per_sec": m.cases_per_sec,
            "speedup_vs_serial": speedup,
            "engine_executions": m.engine_executions,
            "cache_hits": m.cache_hits,
            "cache_misses": m.cache_misses,
            "cache_hit_rate": m.cache_hit_rate(),
            "report_identical_to_serial": identical,
        }));
    }

    let json = serde_json::json!({
        "seed": setup.seed,
        "available_parallelism": cores,
        "cases": cases.len(),
        "rounds": rounds,
        "strategy": serial.strategy,
        "corrected_after_round": serial.corrected_after_round,
        "runs": rows,
    });
    let out = "BENCH_parallel.json";
    std::fs::write(out, json.to_string()).expect("write BENCH_parallel.json");
    println!("\nwrote {out}");
}
