//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md §4); this library holds the common
//! corpus/model/user construction so all experiments run off identical,
//! seeded inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fisql_core::{AnnotatedCase, CorrectionReport, CorrectionRun, Strategy};
use fisql_feedback::{SimUser, UserConfig};
use fisql_llm::{LlmConfig, SimLlm};
use fisql_spider::{build_aep, build_spider, AepConfig, Corpus, SpiderConfig};

/// Master seed shared by all experiments unless overridden with
/// `FISQL_SEED`.
pub const DEFAULT_SEED: u64 = 0xF15C;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale: 200 databases / 1034 SPIDER-like questions, 225
    /// AEP-like questions.
    Full,
    /// CI scale: a few databases, a few dozen questions.
    Small,
}

impl Scale {
    /// Reads `FISQL_SCALE=small` from the environment (default: full).
    pub fn from_env() -> Scale {
        match std::env::var("FISQL_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            _ => Scale::Full,
        }
    }
}

/// Seed from `FISQL_SEED`, defaulting to [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    std::env::var("FISQL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// The full experimental setup: both corpora plus model and user.
pub struct Setup {
    /// SPIDER-like corpus.
    pub spider: Corpus,
    /// AEP-like corpus.
    pub aep: Corpus,
    /// The simulated LLM.
    pub llm: SimLlm,
    /// The simulated user.
    pub user: SimUser,
    /// The seed everything derives from.
    pub seed: u64,
}

impl Setup {
    /// Builds the setup at the given scale and seed.
    pub fn new(scale: Scale, seed: u64) -> Setup {
        let spider = match scale {
            Scale::Full => build_spider(&SpiderConfig {
                seed,
                ..Default::default()
            }),
            Scale::Small => build_spider(&SpiderConfig::small(seed)),
        };
        let aep = match scale {
            Scale::Full => build_aep(&AepConfig {
                seed: seed ^ 0xAE9,
                ..Default::default()
            }),
            Scale::Small => build_aep(&AepConfig {
                n_examples: 60,
                seed: seed ^ 0xAE9,
            }),
        };
        let llm = SimLlm::new(LlmConfig {
            seed: seed ^ 0x515E,
            calibration: fisql_llm::Calibration::default(),
        });
        let user = SimUser::new(UserConfig {
            seed: seed ^ 0x05E4,
            ..Default::default()
        });
        Setup {
            spider,
            aep,
            llm,
            user,
            seed,
        }
    }

    /// Builds from environment (`FISQL_SCALE`, `FISQL_SEED`).
    pub fn from_env() -> Setup {
        Setup::new(Scale::from_env(), seed_from_env())
    }
}

/// The experiment builder wired for one corpus of this setup, honouring
/// `FISQL_WORKERS` (the builder default reads it).
pub fn runner<'a>(setup: &'a Setup, corpus: &'a Corpus) -> CorrectionRun<'a> {
    CorrectionRun::new(corpus, &setup.llm, &setup.user).demos_k(3)
}

/// Error collection + annotation for one corpus (the §4.1 protocol).
pub fn annotated_cases(setup: &Setup, corpus: &Corpus) -> (usize, Vec<AnnotatedCase>) {
    let run = runner(setup, corpus);
    let errors = run.collect_errors();
    let n_errors = errors.len();
    let annotated = run.annotate(&errors);
    (n_errors, annotated)
}

/// Runs one strategy and returns its report.
pub fn correction(
    setup: &Setup,
    corpus: &Corpus,
    cases: &[AnnotatedCase],
    strategy: Strategy,
    rounds: usize,
) -> CorrectionReport {
    runner(setup, corpus)
        .strategy(strategy)
        .rounds(rounds)
        .run(cases)
}

/// Formats a percentage the way the paper's tables do.
pub fn pct(n: usize, total: usize) -> String {
    if total == 0 {
        "-".to_string()
    } else {
        format!("{:.2}", 100.0 * n as f64 / total as f64)
    }
}
