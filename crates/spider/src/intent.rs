//! Semantic frames ("intents") underlying generated questions.
//!
//! Every benchmark example is generated *intent-first*: a structured
//! semantic frame is sampled from the database schema, then (a) compiled
//! into the gold SQL query and (b) rendered into a natural-language
//! question. The simulated LLM receives the question plus the intent's
//! ambiguity annotations, mirroring how a real model receives a question
//! whose surface form underdetermines the SQL.

use fisql_sqlkit::ast::*;
use serde::{Deserialize, Serialize};

/// An aggregate in a projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggIntent {
    /// `COUNT(*)`
    Count,
    /// `COUNT(DISTINCT col)`
    CountDistinct(String),
    /// `SUM(col)`
    Sum(String),
    /// `AVG(col)`
    Avg(String),
    /// `MIN(col)`
    Min(String),
    /// `MAX(col)`
    Max(String),
}

impl AggIntent {
    /// The aggregated column, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            AggIntent::Count => None,
            AggIntent::CountDistinct(c)
            | AggIntent::Sum(c)
            | AggIntent::Avg(c)
            | AggIntent::Min(c)
            | AggIntent::Max(c) => Some(c),
        }
    }

    /// Compiles to an expression. `qualify` prefixes column refs with a
    /// table name (used when the query has joins).
    pub fn to_expr(&self, qualify: Option<&str>) -> Expr {
        let col = |c: &str| match qualify {
            Some(t) => Expr::qcol(t, c),
            None => Expr::col(c),
        };
        match self {
            AggIntent::Count => Expr::count_star(),
            AggIntent::CountDistinct(c) => Expr::Call {
                func: Func::Count,
                distinct: true,
                args: vec![col(c)],
            },
            AggIntent::Sum(c) => Expr::call(Func::Sum, vec![col(c)]),
            AggIntent::Avg(c) => Expr::call(Func::Avg, vec![col(c)]),
            AggIntent::Min(c) => Expr::call(Func::Min, vec![col(c)]),
            AggIntent::Max(c) => Expr::call(Func::Max, vec![col(c)]),
        }
    }
}

/// One projected item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Projection {
    /// A plain column `table.column`.
    Column {
        /// Owning table.
        table: String,
        /// Column name.
        column: String,
    },
    /// An aggregate over the primary table.
    Agg(AggIntent),
}

/// The kind of a filter predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PredKind {
    /// `col <op> literal`
    Cmp {
        /// Comparison operator.
        op: BinOp,
        /// Right-hand literal.
        value: Literal,
    },
    /// `col LIKE '%word%'`
    Like {
        /// The contained word (wildcards added at compile time).
        word: String,
    },
    /// `col BETWEEN lo AND hi`
    Between {
        /// Lower bound.
        lo: Literal,
        /// Upper bound.
        hi: Literal,
    },
    /// `col IS [NOT] NULL`
    IsNull {
        /// Negated (`IS NOT NULL`).
        negated: bool,
    },
    /// A calendar-month window over a date column:
    /// `col >= 'Y-M-01' AND col < '<next month>'`.
    ///
    /// This is the paper's flagship ambiguity (Figure 4): the question
    /// says only "in January", leaving the year implicit.
    MonthWindow {
        /// The correct (current) year.
        year: i64,
        /// Month 1..=12.
        month: u32,
    },
}

/// One filter predicate bound to a column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredIntent {
    /// Owning table.
    pub table: String,
    /// Filtered column.
    pub column: String,
    /// Predicate shape.
    pub kind: PredKind,
}

/// One join step (always along a generated FK edge).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinStep {
    /// Table being joined in.
    pub table: String,
    /// Table already in scope the join attaches to.
    pub left_table: String,
    /// Join column on `left_table`.
    pub left_col: String,
    /// Join column on `table`.
    pub right_col: String,
}

/// The overall query shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// Plain projection.
    Select,
    /// Aggregates only.
    AggOnly,
    /// `GROUP BY key` with `COUNT(*)`, optionally `HAVING COUNT(*) > n`.
    GroupBy {
        /// Table owning the grouping key.
        key_table: String,
        /// Grouping column.
        key: String,
        /// Optional HAVING threshold.
        having_count_gt: Option<i64>,
    },
    /// `ORDER BY col [DESC] LIMIT n` superlative.
    Superlative {
        /// Table owning the sort column.
        order_table: String,
        /// Sort column.
        order_col: String,
        /// Sort direction.
        desc: bool,
        /// Row limit.
        limit: u64,
    },
    /// `WHERE col = (SELECT MIN/MAX(col) FROM table)` extremum.
    Extremum {
        /// The extremized column (on the primary table).
        column: String,
        /// MAX if true, MIN otherwise.
        max: bool,
    },
}

/// A complete semantic frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Intent {
    /// Primary table.
    pub primary: String,
    /// Join chain (may be empty).
    pub joins: Vec<JoinStep>,
    /// Projected items.
    pub projections: Vec<Projection>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Filter predicates (conjoined).
    pub preds: Vec<PredIntent>,
    /// Query shape.
    pub shape: Shape,
}

impl Intent {
    /// Whether compiled column references need table qualification.
    pub fn qualified(&self) -> bool {
        !self.joins.is_empty()
    }

    /// Compiles the intent into its gold SQL query.
    pub fn compile(&self) -> Query {
        let q = self.qualified();
        let colref = |table: &str, column: &str| {
            if q {
                Expr::qcol(table, column)
            } else {
                Expr::col(column)
            }
        };

        // FROM clause.
        let mut from = FromClause::table(self.primary.clone());
        for j in &self.joins {
            from.joins.push(Join {
                kind: JoinKind::Inner,
                factor: TableFactor::table(j.table.clone()),
                constraint: Some(Expr::binary(
                    Expr::qcol(j.left_table.clone(), j.left_col.clone()),
                    BinOp::Eq,
                    Expr::qcol(j.table.clone(), j.right_col.clone()),
                )),
            });
        }

        // Projections.
        let agg_qualifier = if q { Some(self.primary.as_str()) } else { None };
        let mut items: Vec<SelectItem> = self
            .projections
            .iter()
            .map(|p| match p {
                Projection::Column { table, column } => SelectItem::expr(colref(table, column)),
                Projection::Agg(a) => SelectItem::expr(a.to_expr(agg_qualifier)),
            })
            .collect();

        // WHERE.
        let mut where_parts: Vec<Expr> = self.preds.iter().flat_map(|p| pred_exprs(p, q)).collect();

        let mut core = SelectCore {
            distinct: self.distinct,
            items: Vec::new(),
            from: Some(from),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
        };
        let mut order_by = Vec::new();
        let mut limit = None;

        match &self.shape {
            Shape::Select | Shape::AggOnly => {}
            Shape::GroupBy {
                key_table,
                key,
                having_count_gt,
            } => {
                let key_expr = colref(key_table, key);
                items = vec![
                    SelectItem::expr(key_expr.clone()),
                    SelectItem::expr(Expr::count_star()),
                ];
                core.group_by = vec![key_expr];
                if let Some(n) = having_count_gt {
                    core.having = Some(Expr::binary(Expr::count_star(), BinOp::Gt, Expr::num(*n)));
                }
            }
            Shape::Superlative {
                order_table,
                order_col,
                desc,
                limit: n,
            } => {
                order_by.push(OrderItem {
                    expr: colref(order_table, order_col),
                    desc: *desc,
                });
                limit = Some(LimitClause::new(*n));
            }
            Shape::Extremum { column, max } => {
                let inner_agg = if *max {
                    AggIntent::Max(column.clone())
                } else {
                    AggIntent::Min(column.clone())
                };
                let sub = Query::select(
                    vec![SelectItem::expr(inner_agg.to_expr(None))],
                    FromClause::table(self.primary.clone()),
                );
                where_parts.push(Expr::binary(
                    colref(&self.primary, column),
                    BinOp::Eq,
                    Expr::Subquery(Box::new(sub)),
                ));
            }
        }

        core.items = items;
        core.where_clause = Expr::conjoin(where_parts);
        Query {
            core,
            compound: Vec::new(),
            order_by,
            limit,
        }
    }
}

/// Compiles one predicate intent into one or two (MonthWindow) conjuncts.
pub fn pred_exprs(p: &PredIntent, qualify: bool) -> Vec<Expr> {
    let col = if qualify {
        Expr::qcol(p.table.clone(), p.column.clone())
    } else {
        Expr::col(p.column.clone())
    };
    match &p.kind {
        PredKind::Cmp { op, value } => vec![Expr::binary(col, *op, Expr::Literal(value.clone()))],
        PredKind::Like { word } => vec![Expr::Like {
            expr: Box::new(col),
            pattern: Box::new(Expr::str(format!("%{word}%"))),
            negated: false,
        }],
        PredKind::Between { lo, hi } => vec![Expr::Between {
            expr: Box::new(col),
            low: Box::new(Expr::Literal(lo.clone())),
            high: Box::new(Expr::Literal(hi.clone())),
            negated: false,
        }],
        PredKind::IsNull { negated } => vec![Expr::IsNull {
            expr: Box::new(col),
            negated: *negated,
        }],
        PredKind::MonthWindow { year, month } => {
            let (ny, nm) = if *month == 12 {
                (year + 1, 1)
            } else {
                (*year, month + 1)
            };
            vec![
                Expr::binary(
                    col.clone(),
                    BinOp::GtEq,
                    Expr::str(format!("{year:04}-{month:02}-01")),
                ),
                Expr::binary(col, BinOp::Lt, Expr::str(format!("{ny:04}-{nm:02}-01"))),
            ]
        }
    }
}

/// Month names for question rendering.
pub const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_sqlkit::print_query;

    fn base_intent() -> Intent {
        Intent {
            primary: "singer".into(),
            joins: vec![],
            projections: vec![Projection::Column {
                table: "singer".into(),
                column: "name".into(),
            }],
            distinct: false,
            preds: vec![],
            shape: Shape::Select,
        }
    }

    #[test]
    fn compiles_plain_select() {
        let sql = print_query(&base_intent().compile());
        assert_eq!(sql, "SELECT name FROM singer");
    }

    #[test]
    fn compiles_count() {
        let mut i = base_intent();
        i.projections = vec![Projection::Agg(AggIntent::Count)];
        i.shape = Shape::AggOnly;
        assert_eq!(print_query(&i.compile()), "SELECT COUNT(*) FROM singer");
    }

    #[test]
    fn compiles_filters() {
        let mut i = base_intent();
        i.preds = vec![PredIntent {
            table: "singer".into(),
            column: "age".into(),
            kind: PredKind::Cmp {
                op: BinOp::Gt,
                value: Literal::Number(30),
            },
        }];
        assert_eq!(
            print_query(&i.compile()),
            "SELECT name FROM singer WHERE age > 30"
        );
    }

    #[test]
    fn compiles_month_window() {
        let mut i = base_intent();
        i.primary = "segment".into();
        i.projections = vec![Projection::Agg(AggIntent::Count)];
        i.shape = Shape::AggOnly;
        i.preds = vec![PredIntent {
            table: "segment".into(),
            column: "created_time".into(),
            kind: PredKind::MonthWindow {
                year: 2024,
                month: 1,
            },
        }];
        let sql = print_query(&i.compile());
        assert!(sql.contains("created_time >= '2024-01-01'"));
        assert!(sql.contains("created_time < '2024-02-01'"));
    }

    #[test]
    fn month_window_december_wraps_year() {
        let p = PredIntent {
            table: "t".into(),
            column: "d".into(),
            kind: PredKind::MonthWindow {
                year: 2023,
                month: 12,
            },
        };
        let exprs = pred_exprs(&p, false);
        let texts: Vec<String> = exprs.iter().map(fisql_sqlkit::print_expr).collect();
        assert!(texts[1].contains("2024-01-01"), "{texts:?}");
    }

    #[test]
    fn compiles_join_with_qualification() {
        let mut i = base_intent();
        i.joins = vec![JoinStep {
            table: "concert".into(),
            left_table: "singer".into(),
            left_col: "singer_id".into(),
            right_col: "singer_id".into(),
        }];
        let sql = print_query(&i.compile());
        assert_eq!(
            sql,
            "SELECT singer.name FROM singer JOIN concert ON singer.singer_id = concert.singer_id"
        );
    }

    #[test]
    fn compiles_group_by_having() {
        let mut i = base_intent();
        i.shape = Shape::GroupBy {
            key_table: "singer".into(),
            key: "country".into(),
            having_count_gt: Some(2),
        };
        assert_eq!(
            print_query(&i.compile()),
            "SELECT country, COUNT(*) FROM singer GROUP BY country HAVING COUNT(*) > 2"
        );
    }

    #[test]
    fn compiles_superlative() {
        let mut i = base_intent();
        i.shape = Shape::Superlative {
            order_table: "singer".into(),
            order_col: "age".into(),
            desc: true,
            limit: 1,
        };
        assert_eq!(
            print_query(&i.compile()),
            "SELECT name FROM singer ORDER BY age DESC LIMIT 1"
        );
    }

    #[test]
    fn compiles_extremum() {
        let mut i = base_intent();
        i.shape = Shape::Extremum {
            column: "age".into(),
            max: false,
        };
        assert_eq!(
            print_query(&i.compile()),
            "SELECT name FROM singer WHERE age = (SELECT MIN(age) FROM singer)"
        );
    }

    #[test]
    fn compiled_gold_always_parses_back() {
        // Round-trip through the printer/parser for a tour of shapes.
        let mut intents = vec![base_intent()];
        let mut i = base_intent();
        i.distinct = true;
        i.preds = vec![PredIntent {
            table: "singer".into(),
            column: "name".into(),
            kind: PredKind::Like { word: "Jo".into() },
        }];
        intents.push(i);
        for intent in intents {
            let gold = intent.compile();
            let printed = print_query(&gold);
            let reparsed = fisql_sqlkit::parse_query(&printed).unwrap();
            assert_eq!(gold, reparsed);
        }
    }
}
