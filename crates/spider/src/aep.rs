//! The AEP-like closed-domain corpus.
//!
//! Substitutes the paper's internal Adobe Experience Platform dataset with
//! a synthetic marketing-analytics database whose schema reproduces the
//! paper's examples (`hkg_dim_segment` with a `createdTime` column appears
//! verbatim in Figures 4, 5, and 9) and whose questions use the
//! closed-domain jargon the paper calls out: "audiences" for segments,
//! "activated to" for segment↔destination mappings, and vague temporal
//! phrasing.

use crate::channels::{applicable_channels, DifficultyProfile, ErrorChannel};
use crate::example::{Corpus, Example, Hardness};
use crate::intent_gen::generate_intent;
use crate::question::render_question;
use fisql_engine::{Column, DataType, Database, ForeignKey, Table, Value};
use fisql_sqlkit::parse_query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the AEP-like corpus.
#[derive(Debug, Clone)]
pub struct AepConfig {
    /// Number of examples to generate.
    pub n_examples: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for AepConfig {
    fn default() -> Self {
        AepConfig {
            n_examples: 225,
            seed: 0xAE9,
        }
    }
}

/// Jargon mapping: question surface term → table it actually refers to.
/// The surface term is what non-technical AEP users say; the table name is
/// what the schema calls it — the gap is the closed-domain vocabulary
/// problem of the paper's §1.
pub fn jargon_surface(table: &str) -> Option<&'static str> {
    match table {
        "hkg_dim_segment" => Some("audience"),
        "hkg_dim_destination" => Some("destination"),
        "hkg_dim_dataset" => Some("dataset"),
        "hkg_dim_journey" => Some("journey"),
        "hkg_fact_profile" => Some("profile"),
        "hkg_dim_schema_def" => Some("schema"),
        "hkg_map_segment_destination" => Some("activation"),
        "hkg_fact_query_log" => Some("query"),
        _ => None,
    }
}

/// Builds the AEP marketing-analytics database.
pub fn build_aep_database(rng: &mut impl Rng) -> Database {
    let mut db = Database::new("aep_experience_platform");

    let statuses = ["active", "inactive", "draft", "archived"];
    let platforms = ["Amazon S3", "Google Ads", "Meta", "Braze", "SFTP"];
    let seg_names = [
        "ABC",
        "Loyalty",
        "Churned",
        "VIP",
        "Trial",
        "Holiday Shoppers",
        "Cart Abandoners",
        "Newsletter",
        "High Value",
        "Win-back",
        "Lookalike",
        "Beta Testers",
    ];

    // hkg_dim_segment — the paper's own table.
    let mut segment = Table::new(
        "hkg_dim_segment",
        vec![
            Column::new("segment_id", DataType::Int),
            Column::new("segment_name", DataType::Text),
            Column::new("segment_description", DataType::Text),
            Column::new("status", DataType::Text),
            Column::new("createdTime", DataType::Date),
            Column::new("modifiedTime", DataType::Date),
            Column::new("profile_count", DataType::Int),
        ],
    );
    segment.primary_key = Some(0);
    for i in 0..40 {
        let year = if rng.gen_bool(0.55) { 2024 } else { 2023 };
        let month = rng.gen_range(1..=if year == 2024 { 6 } else { 12 });
        let day = rng.gen_range(1..=28);
        segment.push_row(vec![
            Value::Int(i + 1),
            Value::Text(format!(
                "{} {}",
                seg_names[(i as usize) % seg_names.len()],
                i + 1
            )),
            Value::Text(format!(
                "Segment tracking {}",
                seg_names[(i as usize) % seg_names.len()]
            )),
            Value::Text(statuses[rng.gen_range(0..statuses.len())].to_string()),
            Value::Text(format!("{year:04}-{month:02}-{day:02}")),
            Value::Text(format!("{year:04}-{:02}-{day:02}", (month % 12) + 1)),
            if rng.gen_bool(0.1) {
                Value::Null
            } else {
                Value::Int(rng.gen_range(10..=50_000))
            },
        ]);
    }
    db.add_table(segment);

    // hkg_dim_destination.
    let mut destination = Table::new(
        "hkg_dim_destination",
        vec![
            Column::new("destination_id", DataType::Int),
            Column::new("destination_name", DataType::Text),
            Column::new("platform_type", DataType::Text),
            Column::new("status", DataType::Text),
            Column::new("createdTime", DataType::Date),
        ],
    );
    destination.primary_key = Some(0);
    for i in 0..12 {
        let year = rng.gen_range(2022..=2024);
        destination.push_row(vec![
            Value::Int(i + 1),
            Value::Text(format!(
                "{} export {}",
                platforms[(i as usize) % platforms.len()],
                i + 1
            )),
            Value::Text(platforms[(i as usize) % platforms.len()].to_string()),
            Value::Text(statuses[rng.gen_range(0..2)].to_string()),
            Value::Text(format!(
                "{year:04}-{:02}-{:02}",
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            )),
        ]);
    }
    db.add_table(destination);

    // hkg_map_segment_destination — "activations".
    let mut map = Table::new(
        "hkg_map_segment_destination",
        vec![
            Column::new("map_id", DataType::Int),
            Column::new("segment_id", DataType::Int),
            Column::new("destination_id", DataType::Int),
            Column::new("activation_date", DataType::Date),
            Column::new("status", DataType::Text),
        ],
    );
    map.primary_key = Some(0);
    map.foreign_keys.push(ForeignKey {
        column: 1,
        ref_table: "hkg_dim_segment".into(),
        ref_column: 0,
    });
    map.foreign_keys.push(ForeignKey {
        column: 2,
        ref_table: "hkg_dim_destination".into(),
        ref_column: 0,
    });
    for i in 0..60 {
        let year = rng.gen_range(2023..=2024);
        map.push_row(vec![
            Value::Int(i + 1),
            Value::Int(rng.gen_range(1..=40)),
            Value::Int(rng.gen_range(1..=12)),
            Value::Text(format!(
                "{year:04}-{:02}-{:02}",
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            )),
            Value::Text(statuses[rng.gen_range(0..2)].to_string()),
        ]);
    }
    db.add_table(map);

    // hkg_dim_dataset.
    let mut dataset = Table::new(
        "hkg_dim_dataset",
        vec![
            Column::new("dataset_id", DataType::Int),
            Column::new("dataset_name", DataType::Text),
            Column::new("source_type", DataType::Text),
            Column::new("record_count", DataType::Int),
            Column::new("createdTime", DataType::Date),
            Column::new("status", DataType::Text),
        ],
    );
    dataset.primary_key = Some(0);
    let sources = ["CRM", "Web SDK", "Mobile SDK", "Batch Upload", "Streaming"];
    for i in 0..20 {
        let year = rng.gen_range(2022..=2024);
        dataset.push_row(vec![
            Value::Int(i + 1),
            Value::Text(format!(
                "{} ingest {}",
                sources[(i as usize) % sources.len()],
                i + 1
            )),
            Value::Text(sources[(i as usize) % sources.len()].to_string()),
            Value::Int(rng.gen_range(1_000..=2_000_000)),
            Value::Text(format!(
                "{year:04}-{:02}-{:02}",
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            )),
            Value::Text(statuses[rng.gen_range(0..statuses.len())].to_string()),
        ]);
    }
    db.add_table(dataset);

    // hkg_fact_profile.
    let mut profile = Table::new(
        "hkg_fact_profile",
        vec![
            Column::new("profile_id", DataType::Int),
            Column::new("segment_id", DataType::Int),
            Column::new("dataset_id", DataType::Int),
            Column::new("identity_namespace", DataType::Text),
            Column::new("createdTime", DataType::Date),
            Column::new("merge_policy", DataType::Text),
        ],
    );
    profile.primary_key = Some(0);
    profile.foreign_keys.push(ForeignKey {
        column: 1,
        ref_table: "hkg_dim_segment".into(),
        ref_column: 0,
    });
    profile.foreign_keys.push(ForeignKey {
        column: 2,
        ref_table: "hkg_dim_dataset".into(),
        ref_column: 0,
    });
    let namespaces = ["ECID", "Email", "CRM ID", "Phone", "AAID"];
    let policies = ["timestamp-ordered", "dataset-precedence"];
    for i in 0..120 {
        let year = rng.gen_range(2023..=2024);
        profile.push_row(vec![
            Value::Int(i + 1),
            Value::Int(rng.gen_range(1..=40)),
            Value::Int(rng.gen_range(1..=20)),
            Value::Text(namespaces[rng.gen_range(0..namespaces.len())].to_string()),
            Value::Text(format!(
                "{year:04}-{:02}-{:02}",
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            )),
            Value::Text(policies[rng.gen_range(0..2)].to_string()),
        ]);
    }
    db.add_table(profile);

    // hkg_dim_journey.
    let mut journey = Table::new(
        "hkg_dim_journey",
        vec![
            Column::new("journey_id", DataType::Int),
            Column::new("journey_name", DataType::Text),
            Column::new("segment_id", DataType::Int),
            Column::new("status", DataType::Text),
            Column::new("createdTime", DataType::Date),
            Column::new("step_count", DataType::Int),
        ],
    );
    journey.primary_key = Some(0);
    journey.foreign_keys.push(ForeignKey {
        column: 2,
        ref_table: "hkg_dim_segment".into(),
        ref_column: 0,
    });
    for i in 0..15 {
        let year = rng.gen_range(2023..=2024);
        journey.push_row(vec![
            Value::Int(i + 1),
            Value::Text(format!("Journey {}", i + 1)),
            Value::Int(rng.gen_range(1..=40)),
            Value::Text(statuses[rng.gen_range(0..statuses.len())].to_string()),
            Value::Text(format!(
                "{year:04}-{:02}-{:02}",
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            )),
            Value::Int(rng.gen_range(2..=12)),
        ]);
    }
    db.add_table(journey);

    // hkg_dim_schema_def.
    let mut schema_def = Table::new(
        "hkg_dim_schema_def",
        vec![
            Column::new("schema_def_id", DataType::Int),
            Column::new("schema_name", DataType::Text),
            Column::new("class_name", DataType::Text),
            Column::new("field_count", DataType::Int),
            Column::new("createdTime", DataType::Date),
        ],
    );
    schema_def.primary_key = Some(0);
    let classes = ["XDM Individual Profile", "XDM ExperienceEvent", "Custom"];
    for i in 0..10 {
        let year = rng.gen_range(2022..=2024);
        schema_def.push_row(vec![
            Value::Int(i + 1),
            Value::Text(format!("Schema {}", i + 1)),
            Value::Text(classes[(i as usize) % classes.len()].to_string()),
            Value::Int(rng.gen_range(5..=120)),
            Value::Text(format!(
                "{year:04}-{:02}-{:02}",
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            )),
        ]);
    }
    db.add_table(schema_def);

    // hkg_fact_query_log.
    let mut qlog = Table::new(
        "hkg_fact_query_log",
        vec![
            Column::new("query_log_id", DataType::Int),
            Column::new("dataset_id", DataType::Int),
            Column::new("duration_ms", DataType::Int),
            Column::new("status", DataType::Text),
            Column::new("createdTime", DataType::Date),
        ],
    );
    qlog.primary_key = Some(0);
    qlog.foreign_keys.push(ForeignKey {
        column: 1,
        ref_table: "hkg_dim_dataset".into(),
        ref_column: 0,
    });
    for i in 0..80 {
        let year = rng.gen_range(2023..=2024);
        qlog.push_row(vec![
            Value::Int(i + 1),
            Value::Int(rng.gen_range(1..=20)),
            Value::Int(rng.gen_range(20..=60_000)),
            Value::Text(
                if rng.gen_bool(0.85) {
                    "success"
                } else {
                    "failed"
                }
                .to_string(),
            ),
            Value::Text(format!(
                "{year:04}-{:02}-{:02}",
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            )),
        ]);
    }
    db.add_table(qlog);

    db
}

/// Builds the AEP-like corpus: the fixed marketing database plus jargon-
/// phrased questions with closed-domain difficulty weights.
pub fn build_aep(cfg: &AepConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let db = build_aep_database(&mut rng);
    let profile = DifficultyProfile::aep();

    let mut examples = Vec::with_capacity(cfg.n_examples);
    let mut id = 0;

    // Seed the corpus with the paper's flagship example (Figure 4).
    let flagship = flagship_example(&db, &mut rng);
    if let Some(e) = flagship {
        examples.push(e);
        id += 1;
    }

    let mut attempts = 0;
    while examples.len() < cfg.n_examples && attempts < cfg.n_examples * 30 {
        attempts += 1;
        let Some(intent) = generate_intent(&db, &mut rng) else {
            continue;
        };
        let gold = intent.compile();
        if fisql_engine::execute(&db, &gold).is_err() {
            continue;
        }
        let jargon = jargon_surface(&intent.primary);
        let question = render_question(&intent, jargon, &mut rng);
        let mut channels = applicable_channels(&intent, &db, &profile);
        // Jargon-named tables make table confusion a dominant channel —
        // the question never names the physical table.
        if jargon.is_some() {
            for wc in &mut channels {
                if matches!(wc.channel, ErrorChannel::TableConfusion { .. }) {
                    wc.weight *= 2.0;
                }
            }
        }
        let hardness = Hardness::classify(&intent);
        examples.push(Example {
            id,
            db_index: 0,
            question,
            intent,
            gold,
            channels,
            hardness,
        });
        id += 1;
    }

    Corpus {
        name: "aep-like".to_string(),
        databases: vec![db],
        examples,
    }
}

/// The paper's Figure 4 walkthrough: "how many audiences were created in
/// January?" with an implicit current year of 2024.
fn flagship_example(db: &Database, rng: &mut impl Rng) -> Option<Example> {
    use crate::intent::{AggIntent, Intent, PredIntent, PredKind, Projection, Shape};
    let intent = Intent {
        primary: "hkg_dim_segment".to_string(),
        joins: vec![],
        projections: vec![Projection::Agg(AggIntent::Count)],
        distinct: false,
        preds: vec![PredIntent {
            table: "hkg_dim_segment".to_string(),
            column: "createdTime".to_string(),
            kind: PredKind::MonthWindow {
                year: 2024,
                month: 1,
            },
        }],
        shape: Shape::AggOnly,
    };
    let gold = intent.compile();
    fisql_engine::execute(db, &gold).ok()?;
    // Sanity: the gold matches the paper's Figure 5 corrected query.
    let paper_gold = parse_query(
        "SELECT COUNT(*) FROM hkg_dim_segment \
         WHERE createdTime >= '2024-01-01' AND createdTime < '2024-02-01'",
    )
    .expect("paper query parses");
    debug_assert!(fisql_sqlkit::structurally_equal(&gold, &paper_gold));
    let channels = applicable_channels(&intent, db, &DifficultyProfile::aep());
    let _ = rng;
    Some(Example {
        id: 0,
        db_index: 0,
        question: "how many audiences were created in January?".to_string(),
        intent,
        gold,
        channels,
        hardness: Hardness::Easy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_engine::execute;

    #[test]
    fn aep_database_matches_paper_schema() {
        let mut rng = StdRng::seed_from_u64(1);
        let db = build_aep_database(&mut rng);
        let seg = db.table("hkg_dim_segment").expect("paper table exists");
        assert!(seg.column_index("createdTime").is_some());
        assert!(db.tables.len() >= 7);
    }

    #[test]
    fn paper_figure5_queries_execute() {
        let mut rng = StdRng::seed_from_u64(2);
        let db = build_aep_database(&mut rng);
        for sql in [
            "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' and createdTime < '2023-02-01'",
            "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment \
             WHERE createdTime >= '2024-01-01' and createdTime < '2024-02-01'",
        ] {
            let q = parse_query(sql).unwrap();
            assert!(execute(&db, &q).is_ok(), "{sql}");
        }
    }

    #[test]
    fn the_two_years_give_different_counts() {
        // The flagship ambiguity must be *observable*: the wrong-year
        // query returns a different result, so the user sees the error.
        let mut rng = StdRng::seed_from_u64(3);
        let db = build_aep_database(&mut rng);
        let q2024 = parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2024-01-01' AND createdTime < '2024-02-01'",
        )
        .unwrap();
        let q2023 = parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
        )
        .unwrap();
        let a = execute(&db, &q2024).unwrap();
        let b = execute(&db, &q2023).unwrap();
        assert!(
            !fisql_engine::results_match(&a, &b),
            "2023 and 2024 January counts coincide; ambiguity unobservable"
        );
    }

    #[test]
    fn corpus_builds_with_flagship_first() {
        let corpus = build_aep(&AepConfig {
            n_examples: 60,
            seed: 5,
        });
        assert_eq!(corpus.examples.len(), 60);
        assert!(corpus.examples[0].question.contains("audiences"));
        for e in &corpus.examples {
            assert!(execute(corpus.database(e), &e.gold).is_ok());
            assert!(!e.channels.is_empty(), "AEP example without channels");
        }
    }

    #[test]
    fn aep_channel_mass_exceeds_spider_like_levels() {
        let corpus = build_aep(&AepConfig {
            n_examples: 40,
            seed: 6,
        });
        let avg: f64 = corpus
            .examples
            .iter()
            .map(|e| e.channels.iter().map(|c| c.weight).sum::<f64>())
            .sum::<f64>()
            / corpus.examples.len() as f64;
        assert!(avg > 1.0, "avg channel mass {avg}");
    }

    #[test]
    fn jargon_surfaces_cover_all_tables() {
        let mut rng = StdRng::seed_from_u64(7);
        let db = build_aep_database(&mut rng);
        for t in &db.tables {
            assert!(
                jargon_surface(&t.name).is_some(),
                "no jargon surface for {}",
                t.name
            );
        }
    }
}
