//! Natural-language question rendering.
//!
//! Questions are rendered from [`Intent`]s with template variation, in the
//! style of SPIDER's crowd-sourced questions ("How many singers do we
//! have?", "Show the name of the singer with the largest net worth").
//! Vague phrasings are *deliberate*: a [`PredKind::MonthWindow`] renders
//! as "in January" without a year, reproducing the ambiguity the paper's
//! Figure 4 walkthrough hinges on.

use crate::intent::{AggIntent, Intent, PredIntent, PredKind, Projection, Shape, MONTH_NAMES};
use fisql_sqlkit::ast::{BinOp, Literal};
use rand::Rng;

/// Renders `intent` as a natural-language question. `rng` picks among
/// template variants; `jargon` optionally overrides the surface form of
/// the primary table (the AEP closed-domain vocabulary).
pub fn render_question(intent: &Intent, jargon: Option<&str>, rng: &mut impl Rng) -> String {
    let table_pl = pluralize(jargon.unwrap_or(&intent.primary));
    let filter = filter_phrase(&intent.preds);
    let joined = join_phrase(intent);

    let body = match &intent.shape {
        Shape::Select => {
            let cols = projection_phrase(&intent.projections);
            let distinct = if intent.distinct { "different " } else { "" };
            match rng.gen_range(0..3) {
                0 => format!("What are the {cols} of {distinct}{table_pl}{joined}{filter}?"),
                1 => format!("List the {cols} of all {distinct}{table_pl}{joined}{filter}."),
                _ => format!("Show the {cols} for {distinct}{table_pl}{joined}{filter}."),
            }
        }
        Shape::AggOnly => agg_question(intent, &table_pl, &joined, &filter, rng),
        Shape::GroupBy {
            key,
            having_count_gt,
            ..
        } => match having_count_gt {
            Some(n) => format!(
                "Which {} have more than {n} {table_pl}{filter}?",
                pluralize(&humanize(key))
            ),
            None => format!(
                "For each {}, how many {table_pl} are there{joined}{filter}?",
                humanize(key)
            ),
        },
        Shape::Superlative {
            order_col,
            desc,
            limit,
            ..
        } => {
            let cols = projection_phrase(&intent.projections);
            let dir = superlative_word(order_col, *desc);
            if *limit == 1 {
                format!(
                    "Show the {cols} of the {} with the {dir} {}{filter}.",
                    jargon.unwrap_or(&intent.primary),
                    humanize(order_col)
                )
            } else {
                format!(
                    "List the {cols} of the top {limit} {table_pl} by {}{filter}.",
                    humanize(order_col)
                )
            }
        }
        Shape::Extremum { column, max } => {
            let cols = projection_phrase(&intent.projections);
            let dir = superlative_word(column, *max);
            format!(
                "What is the {cols} of the {} with the {dir} {}{filter}?",
                jargon.unwrap_or(&intent.primary),
                humanize(column)
            )
        }
    };
    body
}

fn agg_question(
    intent: &Intent,
    table_pl: &str,
    joined: &str,
    filter: &str,
    rng: &mut impl Rng,
) -> String {
    let Some(Projection::Agg(agg)) = intent.projections.first() else {
        return format!("How many {table_pl} are there{joined}{filter}?");
    };
    match agg {
        AggIntent::Count => match rng.gen_range(0..3) {
            0 => format!("How many {table_pl} are there{joined}{filter}?"),
            1 => format!("Count the number of {table_pl}{joined}{filter}."),
            _ => format!("How many {table_pl} do we have{joined}{filter}?"),
        },
        AggIntent::CountDistinct(c) => format!(
            "How many different {} appear among {table_pl}{joined}{filter}?",
            pluralize(&humanize(c))
        ),
        AggIntent::Sum(c) => format!(
            "What is the total {} of {table_pl}{joined}{filter}?",
            humanize(c)
        ),
        AggIntent::Avg(c) => format!(
            "What is the average {} of {table_pl}{joined}{filter}?",
            humanize(c)
        ),
        AggIntent::Min(c) => format!(
            "What is the smallest {} among {table_pl}{joined}{filter}?",
            humanize(c)
        ),
        AggIntent::Max(c) => format!(
            "What is the largest {} among {table_pl}{joined}{filter}?",
            humanize(c)
        ),
    }
}

/// Column/projection list phrase: "name and age".
fn projection_phrase(projections: &[Projection]) -> String {
    let parts: Vec<String> = projections
        .iter()
        .map(|p| match p {
            Projection::Column { column, .. } => humanize(column),
            Projection::Agg(a) => match a {
                AggIntent::Count => "count".to_string(),
                AggIntent::CountDistinct(c) => format!("number of different {}", humanize(c)),
                AggIntent::Sum(c) => format!("total {}", humanize(c)),
                AggIntent::Avg(c) => format!("average {}", humanize(c)),
                AggIntent::Min(c) => format!("minimum {}", humanize(c)),
                AggIntent::Max(c) => format!("maximum {}", humanize(c)),
            },
        })
        .collect();
    join_and(&parts)
}

/// Filter phrase: " whose age is greater than 30 and that were created in January".
fn filter_phrase(preds: &[PredIntent]) -> String {
    if preds.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = preds.iter().map(pred_phrase).collect();
    format!(" {}", parts.join(" and "))
}

fn pred_phrase(p: &PredIntent) -> String {
    let col = humanize(&p.column);
    match &p.kind {
        PredKind::Cmp { op, value } => {
            let v = literal_phrase(value);
            let rel = match op {
                BinOp::Eq => "is",
                BinOp::NotEq => "is not",
                BinOp::Gt => "is greater than",
                BinOp::GtEq => "is at least",
                BinOp::Lt => "is less than",
                BinOp::LtEq => "is at most",
                _ => "is",
            };
            format!("whose {col} {rel} {v}")
        }
        PredKind::Like { word } => format!("whose {col} contains '{word}'"),
        PredKind::Between { lo, hi } => format!(
            "whose {col} is between {} and {}",
            literal_phrase(lo),
            literal_phrase(hi)
        ),
        PredKind::IsNull { negated } => {
            if *negated {
                format!("that have a {col}")
            } else {
                format!("that are missing a {col}")
            }
        }
        // The deliberate vagueness: no year is mentioned.
        PredKind::MonthWindow { month, .. } => {
            format!("created in {}", MONTH_NAMES[(*month as usize - 1).min(11)])
        }
    }
}

fn join_phrase(intent: &Intent) -> String {
    if intent.joins.is_empty() {
        String::new()
    } else {
        let tables: Vec<String> = intent
            .joins
            .iter()
            .map(|j| pluralize(&humanize(&j.table)))
            .collect();
        format!(" together with their {}", join_and(&tables))
    }
}

fn literal_phrase(l: &Literal) -> String {
    match l {
        Literal::String(s) => format!("'{s}'"),
        other => other.to_string(),
    }
}

/// "youngest"/"oldest" for age, "highest"/"lowest" otherwise.
fn superlative_word(column: &str, desc_or_max: bool) -> &'static str {
    let lower = column.to_ascii_lowercase();
    if lower.contains("age") && !lower.contains("average") {
        if desc_or_max {
            "oldest"
        } else {
            "youngest"
        }
    } else if desc_or_max {
        "highest"
    } else {
        "lowest"
    }
}

/// `song_release_year` → "song release year".
pub fn humanize(ident: &str) -> String {
    ident.replace('_', " ")
}

/// Naive pluralization good enough for schema nouns.
pub fn pluralize(noun: &str) -> String {
    let n = humanize(noun);
    if n.ends_with('s') || n.ends_with("sh") || n.ends_with("ch") || n.ends_with('x') {
        format!("{n}es")
    } else if n.ends_with('y')
        && !n.ends_with("ay")
        && !n.ends_with("ey")
        && !n.ends_with("oy")
        && !n.ends_with("uy")
    {
        format!("{}ies", &n[..n.len() - 1])
    } else {
        format!("{n}s")
    }
}

fn join_and(parts: &[String]) -> String {
    match parts.len() {
        0 => String::new(),
        1 => parts[0].clone(),
        2 => format!("{} and {}", parts[0], parts[1]),
        _ => format!(
            "{}, and {}",
            parts[..parts.len() - 1].join(", "),
            parts[parts.len() - 1]
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::JoinStep;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn base() -> Intent {
        Intent {
            primary: "singer".into(),
            joins: vec![],
            projections: vec![Projection::Column {
                table: "singer".into(),
                column: "name".into(),
            }],
            distinct: false,
            preds: vec![],
            shape: Shape::Select,
        }
    }

    #[test]
    fn renders_select() {
        let q = render_question(&base(), None, &mut rng());
        assert!(q.to_lowercase().contains("name"), "{q}");
        assert!(q.to_lowercase().contains("singers"), "{q}");
    }

    #[test]
    fn renders_count() {
        let mut i = base();
        i.projections = vec![Projection::Agg(AggIntent::Count)];
        i.shape = Shape::AggOnly;
        let q = render_question(&i, None, &mut rng());
        assert!(
            q.to_lowercase().contains("how many") || q.to_lowercase().contains("count"),
            "{q}"
        );
    }

    #[test]
    fn month_window_question_omits_year() {
        let mut i = base();
        i.preds = vec![PredIntent {
            table: "singer".into(),
            column: "created_time".into(),
            kind: PredKind::MonthWindow {
                year: 2024,
                month: 1,
            },
        }];
        let q = render_question(&i, None, &mut rng());
        assert!(q.contains("January"), "{q}");
        assert!(!q.contains("2024"), "year must stay implicit: {q}");
    }

    #[test]
    fn jargon_overrides_table_surface() {
        let mut i = base();
        i.projections = vec![Projection::Agg(AggIntent::Count)];
        i.shape = Shape::AggOnly;
        let q = render_question(&i, Some("audience"), &mut rng());
        assert!(q.contains("audiences"), "{q}");
        assert!(!q.contains("singer"), "{q}");
    }

    #[test]
    fn superlative_uses_age_words() {
        let mut i = base();
        i.shape = Shape::Superlative {
            order_table: "singer".into(),
            order_col: "age".into(),
            desc: false,
            limit: 1,
        };
        let q = render_question(&i, None, &mut rng());
        assert!(q.contains("youngest"), "{q}");
    }

    #[test]
    fn join_mentioned() {
        let mut i = base();
        i.joins = vec![JoinStep {
            table: "concert".into(),
            left_table: "singer".into(),
            left_col: "singer_id".into(),
            right_col: "singer_id".into(),
        }];
        let q = render_question(&i, None, &mut rng());
        assert!(q.contains("concert"), "{q}");
    }

    #[test]
    fn pluralize_rules() {
        assert_eq!(pluralize("singer"), "singers");
        assert_eq!(pluralize("class"), "classes");
        assert_eq!(pluralize("city_record"), "city records");
        assert_eq!(pluralize("category"), "categories");
        assert_eq!(pluralize("day"), "days");
    }

    #[test]
    fn humanize_replaces_underscores() {
        assert_eq!(humanize("song_release_year"), "song release year");
    }
}
