//! Seeded row population for generated schemas.
//!
//! Values are chosen by column-name heuristics so the data *looks* like
//! the domain (ages in 18..=70, years in 1990..=2024, ISO dates, person
//! names for `name` columns) and — critically for the reproduction —
//! foreign keys reference existing primary keys, so join queries return
//! non-degenerate results.

use crate::vocab::{Theme, CITIES, COUNTRIES, FIRST_NAMES, LAST_NAMES, WORDS};
use fisql_engine::{DataType, Database, Value};
use rand::Rng;

/// Options controlling data generation.
#[derive(Debug, Clone)]
pub struct DataGenOptions {
    /// Minimum rows per table.
    pub min_rows: usize,
    /// Maximum rows per table (inclusive).
    pub max_rows: usize,
    /// Probability that a nullable cell is NULL.
    pub null_probability: f64,
}

impl Default for DataGenOptions {
    fn default() -> Self {
        DataGenOptions {
            min_rows: 15,
            max_rows: 50,
            null_probability: 0.06,
        }
    }
}

/// Populates every table of `db` with rows. Tables are filled in
/// dependency order (as generated: FKs always point at earlier tables).
pub fn populate(db: &mut Database, theme: &Theme, opts: &DataGenOptions, rng: &mut impl Rng) {
    // PK pools of already-populated tables, for FK sampling.
    let mut pk_pools: Vec<(String, Vec<i64>)> = Vec::with_capacity(db.tables.len());
    for ti in 0..db.tables.len() {
        let n_rows = rng.gen_range(opts.min_rows..=opts.max_rows);
        let table = &db.tables[ti];
        let fk_cols: Vec<(usize, String)> = table
            .foreign_keys
            .iter()
            .map(|fk| (fk.column, fk.ref_table.clone()))
            .collect();
        let columns = table.columns.clone();
        let name = table.name.clone();

        let mut rows = Vec::with_capacity(n_rows);
        let mut pks = Vec::with_capacity(n_rows);
        for i in 0..n_rows {
            let mut row = Vec::with_capacity(columns.len());
            for (ci, col) in columns.iter().enumerate() {
                if ci == 0 {
                    // PK: sequential.
                    let pk = (i + 1) as i64;
                    pks.push(pk);
                    row.push(Value::Int(pk));
                    continue;
                }
                if let Some((_, ref_table)) = fk_cols.iter().find(|(c, _)| *c == ci) {
                    let pool = pk_pools
                        .iter()
                        .find(|(n, _)| n.eq_ignore_ascii_case(ref_table))
                        .map(|(_, p)| p.as_slice())
                        .unwrap_or(&[]);
                    if pool.is_empty() {
                        row.push(Value::Null);
                    } else {
                        row.push(Value::Int(pool[rng.gen_range(0..pool.len())]));
                    }
                    continue;
                }
                if rng.gen_bool(opts.null_probability) {
                    row.push(Value::Null);
                    continue;
                }
                row.push(value_for(&col.name, col.dtype, theme, rng));
            }
            rows.push(row);
        }
        let table = &mut db.tables[ti];
        table.rows = rows;
        pk_pools.push((name, pks));
    }
}

/// Generates a plausible value for a column given its name and type.
pub fn value_for(name: &str, dtype: DataType, theme: &Theme, rng: &mut impl Rng) -> Value {
    let lower = name.to_ascii_lowercase();
    match dtype {
        DataType::Int => {
            if lower == "age" || lower.ends_with("_age") {
                Value::Int(rng.gen_range(18..=70))
            } else if lower.contains("year") {
                Value::Int(rng.gen_range(1990..=2024))
            } else if lower.contains("count")
                || lower.contains("capacity")
                || lower.contains("seats")
            {
                Value::Int(rng.gen_range(10..=5000))
            } else if lower.contains("population") {
                Value::Int(rng.gen_range(1_000..=9_000_000))
            } else {
                Value::Int(rng.gen_range(1..=500))
            }
        }
        DataType::Float => {
            if lower.contains("salary") || lower.contains("revenue") || lower.contains("budget") {
                Value::Float((rng.gen_range(30_000..=250_000) as f64) / 1.0)
            } else if lower.contains("rate") || lower.contains("rating") || lower.contains("gpa") {
                Value::Float((rng.gen_range(10..=50) as f64) / 10.0)
            } else {
                Value::Float((rng.gen_range(100..=99_999) as f64) / 100.0)
            }
        }
        DataType::Text => {
            if lower == "name"
                || lower.ends_with("_name") && lower.contains("name") && is_person_like(&lower)
            {
                Value::Text(format!(
                    "{} {}",
                    FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                    LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
                ))
            } else if lower.contains("city") {
                Value::Text(CITIES[rng.gen_range(0..CITIES.len())].to_string())
            } else if lower.contains("country") || lower.contains("nationality") {
                Value::Text(COUNTRIES[rng.gen_range(0..COUNTRIES.len())].to_string())
            } else if lower.contains("email") {
                Value::Text(format!(
                    "{}.{}@example.com",
                    FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_lowercase(),
                    LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())].to_lowercase()
                ))
            } else if is_categorical(&lower) {
                Value::Text(theme.categories[rng.gen_range(0..theme.categories.len())].to_string())
            } else if lower.contains("title") || lower.ends_with("_name") {
                Value::Text(format!(
                    "{} {}",
                    WORDS[rng.gen_range(0..WORDS.len())],
                    WORDS[rng.gen_range(0..WORDS.len())]
                ))
            } else {
                Value::Text(WORDS[rng.gen_range(0..WORDS.len())].to_string())
            }
        }
        DataType::Date => {
            let year = rng.gen_range(2022..=2024);
            let month = rng.gen_range(1..=12);
            let day = rng.gen_range(1..=28);
            Value::Text(format!("{year:04}-{month:02}-{day:02}"))
        }
        DataType::Bool => Value::Bool(rng.gen_bool(0.5)),
    }
}

fn is_person_like(lower: &str) -> bool {
    lower == "name"
        || lower.contains("owner")
        || lower.contains("chef")
        || lower.contains("coach")
        || lower.contains("advisor")
        || lower.contains("author")
}

fn is_categorical(lower: &str) -> bool {
    lower.contains("type")
        || lower.contains("genre")
        || lower.contains("status")
        || lower.contains("level")
        || lower.contains("cuisine")
        || lower.contains("party")
        || lower.contains("position")
        || lower.contains("specialty")
        || lower.contains("industry")
        || lower.contains("period")
        || lower.contains("language")
        || lower.contains("plan")
        || lower.contains("material")
        || lower.contains("field")
        || lower.contains("region")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::{generate_schema, SchemaGenOptions};
    use crate::vocab::THEMES;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_db(seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = generate_schema(&THEMES[1], 0, &SchemaGenOptions::default(), &mut rng);
        populate(&mut db, &THEMES[1], &DataGenOptions::default(), &mut rng);
        db
    }

    #[test]
    fn every_table_has_rows_within_bounds() {
        let db = sample_db(11);
        for t in &db.tables {
            assert!((15..=50).contains(&t.rows.len()), "{}", t.name);
            for row in &t.rows {
                assert_eq!(row.len(), t.columns.len());
            }
        }
    }

    #[test]
    fn primary_keys_are_sequential_and_unique() {
        let db = sample_db(12);
        for t in &db.tables {
            for (i, row) in t.rows.iter().enumerate() {
                assert_eq!(row[0], Value::Int((i + 1) as i64));
            }
        }
    }

    #[test]
    fn foreign_keys_reference_existing_pks() {
        let db = sample_db(13);
        for t in &db.tables {
            for fk in &t.foreign_keys {
                let target = db.table(&fk.ref_table).unwrap();
                let max_pk = target.rows.len() as i64;
                for row in &t.rows {
                    match &row[fk.column] {
                        Value::Int(v) => {
                            assert!(*v >= 1 && *v <= max_pk, "dangling FK {} in {}", v, t.name);
                        }
                        Value::Null => {}
                        other => panic!("FK column holds {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn dates_are_iso_formatted() {
        let db = sample_db(14);
        for t in &db.tables {
            for (ci, c) in t.columns.iter().enumerate() {
                if c.dtype == DataType::Date {
                    for row in &t.rows {
                        if let Value::Text(s) = &row[ci] {
                            assert_eq!(s.len(), 10, "bad date {s}");
                            assert_eq!(&s[4..5], "-");
                            assert_eq!(&s[7..8], "-");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn population_is_deterministic() {
        assert_eq!(sample_db(42), sample_db(42));
    }

    #[test]
    fn value_heuristics() {
        let mut rng = StdRng::seed_from_u64(1);
        let theme = &THEMES[0];
        for _ in 0..50 {
            match value_for("age", DataType::Int, theme, &mut rng) {
                Value::Int(a) => assert!((18..=70).contains(&a)),
                other => panic!("{other:?}"),
            }
            match value_for("year", DataType::Int, theme, &mut rng) {
                Value::Int(y) => assert!((1990..=2024).contains(&y)),
                other => panic!("{other:?}"),
            }
        }
    }
}
