//! Error channels: the structured ways a (simulated) NL2SQL model can
//! misunderstand a question.
//!
//! Each benchmark example carries the list of channels *applicable* to it,
//! derived from its intent and schema (a question with an implicit year
//! can suffer [`ErrorChannel::YearDefault`]; a projection whose column has
//! a confusable sibling can suffer [`ErrorChannel::ColumnConfusion`]; …).
//! The simulated LLM in `fisql-llm` samples each applicable channel with a
//! probability proportional to the weight recorded here times its own
//! per-dataset comprehension prior — closed-domain (AEP-style) examples
//! carry systematically heavier weights, which is exactly the paper's
//! explanation for the SPIDER-vs-AEP accuracy gap (Figure 2).

use crate::intent::{AggIntent, Intent, PredKind, Projection, Shape};
use fisql_engine::Database;
use fisql_sqlkit::ast::{BinOp, Literal};
use serde::{Deserialize, Serialize};

/// One way the model can err on an example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ErrorChannel {
    /// Implicit year resolved to the previous year (Figure 4's
    /// "we are in 2024" scenario).
    YearDefault {
        /// Which predicate carries the date window.
        pred_idx: usize,
    },
    /// A projected column replaced by a confusable sibling (`name` vs
    /// `song_name`).
    ColumnConfusion {
        /// Which projection is corrupted.
        proj_idx: usize,
        /// The wrong column used instead.
        wrong: String,
    },
    /// A filtered column replaced by a confusable sibling.
    FilterColumnConfusion {
        /// Which predicate is corrupted.
        pred_idx: usize,
        /// The wrong column used instead.
        wrong: String,
    },
    /// The primary table replaced by a plausible wrong table (closed-
    /// domain jargon: "audiences" resolved to the wrong dimension table).
    TableConfusion {
        /// The wrong table used instead.
        wrong: String,
    },
    /// ORDER BY (and its LIMIT) dropped from a superlative.
    DropOrderBy,
    /// ORDER BY direction flipped.
    WrongOrderDirection,
    /// LIMIT dropped (ordering kept).
    DropLimit,
    /// Aggregate function confused (COUNT vs SUM, MIN vs MAX).
    AggConfusion {
        /// Which projection is corrupted.
        proj_idx: usize,
        /// The wrong aggregate used instead.
        wrong: AggIntent,
    },
    /// A spurious extra column added to the SELECT list.
    ExtraColumn {
        /// The column gratuitously added.
        column: String,
    },
    /// A requested column dropped from the SELECT list.
    MissingColumn {
        /// Which projection is dropped.
        proj_idx: usize,
    },
    /// A filter predicate dropped entirely.
    DropPredicate {
        /// Which predicate is dropped.
        pred_idx: usize,
    },
    /// A literal replaced by a nearby-but-wrong value.
    LiteralDrift {
        /// Which predicate is corrupted.
        pred_idx: usize,
        /// The wrong literal used instead.
        wrong: Literal,
    },
    /// Comparison operator off by strictness (`>` vs `>=`).
    ComparisonConfusion {
        /// Which predicate is corrupted.
        pred_idx: usize,
        /// The wrong operator used instead.
        wrong_op: BinOp,
    },
    /// A join step omitted (columns of the dropped table are then
    /// mis-attributed to the primary table, usually yielding an execution
    /// error — hallucinated schema linking).
    MissingJoin {
        /// Which join step is dropped.
        join_idx: usize,
    },
    /// DISTINCT omitted.
    MissingDistinct,
    /// HAVING threshold drifts by one.
    HavingThresholdDrift {
        /// The wrong threshold used instead.
        wrong: i64,
    },
    /// Extremum subquery flips MIN↔MAX.
    ExtremumFlip,
}

impl ErrorChannel {
    /// Stable channel kind label, for analysis tables.
    pub fn kind(&self) -> &'static str {
        match self {
            ErrorChannel::YearDefault { .. } => "year-default",
            ErrorChannel::ColumnConfusion { .. } => "column-confusion",
            ErrorChannel::FilterColumnConfusion { .. } => "filter-column-confusion",
            ErrorChannel::TableConfusion { .. } => "table-confusion",
            ErrorChannel::DropOrderBy => "drop-order-by",
            ErrorChannel::WrongOrderDirection => "wrong-order-direction",
            ErrorChannel::DropLimit => "drop-limit",
            ErrorChannel::AggConfusion { .. } => "agg-confusion",
            ErrorChannel::ExtraColumn { .. } => "extra-column",
            ErrorChannel::MissingColumn { .. } => "missing-column",
            ErrorChannel::DropPredicate { .. } => "drop-predicate",
            ErrorChannel::LiteralDrift { .. } => "literal-drift",
            ErrorChannel::ComparisonConfusion { .. } => "comparison-confusion",
            ErrorChannel::MissingJoin { .. } => "missing-join",
            ErrorChannel::MissingDistinct => "missing-distinct",
            ErrorChannel::HavingThresholdDrift { .. } => "having-threshold-drift",
            ErrorChannel::ExtremumFlip => "extremum-flip",
        }
    }
}

/// A channel with its example-specific difficulty weight. The simulated
/// LLM fires the channel with probability `min(1, weight × prior)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedChannel {
    /// The channel.
    pub channel: ErrorChannel,
    /// Relative difficulty weight (1.0 = baseline).
    pub weight: f64,
}

/// Dataset-level difficulty profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifficultyProfile {
    /// Multiplier on lexical-ambiguity channels (column/table confusion).
    pub lexical: f64,
    /// Multiplier on vague-phrasing channels (year default, drop
    /// predicate).
    pub vagueness: f64,
    /// Multiplier on structural channels (joins, order, limit, distinct).
    pub structural: f64,
}

impl DifficultyProfile {
    /// SPIDER-like open-domain profile: common-sense schemas, low
    /// ambiguity.
    pub fn spider() -> Self {
        DifficultyProfile {
            lexical: 1.0,
            vagueness: 1.0,
            structural: 1.0,
        }
    }

    /// AEP-like closed-domain profile: jargon-heavy vocabulary and vague
    /// phrasing from non-technical users.
    pub fn aep() -> Self {
        DifficultyProfile {
            lexical: 2.35,
            vagueness: 0.45,
            structural: 0.3,
        }
    }
}

/// Computes the channels applicable to `intent` against `db`.
pub fn applicable_channels(
    intent: &Intent,
    db: &Database,
    profile: &DifficultyProfile,
) -> Vec<WeightedChannel> {
    let mut out = Vec::new();
    let mut push = |channel: ErrorChannel, weight: f64| {
        out.push(WeightedChannel { channel, weight });
    };

    // Predicate-level channels.
    for (i, p) in intent.preds.iter().enumerate() {
        match &p.kind {
            PredKind::MonthWindow { .. } => {
                // The year is implicit in the question → strong channel.
                push(
                    ErrorChannel::YearDefault { pred_idx: i },
                    1.2 * profile.vagueness,
                );
            }
            PredKind::Cmp { op, value } => {
                if let Literal::Number(n) = value {
                    push(
                        ErrorChannel::LiteralDrift {
                            pred_idx: i,
                            wrong: Literal::Number(drift_number(*n)),
                        },
                        0.45 * profile.vagueness,
                    );
                }
                if let Some(wrong_op) = strictness_neighbor(*op) {
                    push(
                        ErrorChannel::ComparisonConfusion {
                            pred_idx: i,
                            wrong_op,
                        },
                        0.5 * profile.vagueness,
                    );
                }
            }
            _ => {}
        }
        push(
            ErrorChannel::DropPredicate { pred_idx: i },
            0.35 * profile.vagueness,
        );
        if let Some(wrong) = confusable_sibling(db, &p.table, &p.column) {
            push(
                ErrorChannel::FilterColumnConfusion { pred_idx: i, wrong },
                0.6 * profile.lexical,
            );
        }
    }

    // Projection-level channels.
    for (i, proj) in intent.projections.iter().enumerate() {
        match proj {
            Projection::Column { table, column } => {
                if let Some(wrong) = confusable_sibling(db, table, column) {
                    push(
                        ErrorChannel::ColumnConfusion { proj_idx: i, wrong },
                        0.8 * profile.lexical,
                    );
                }
            }
            Projection::Agg(a) => {
                if let Some(wrong) = agg_neighbor(a) {
                    push(
                        ErrorChannel::AggConfusion { proj_idx: i, wrong },
                        0.4 * profile.lexical,
                    );
                }
            }
        }
    }
    if intent.projections.len() > 1 && matches!(intent.shape, Shape::Select) {
        push(
            ErrorChannel::MissingColumn {
                proj_idx: intent.projections.len() - 1,
            },
            0.5 * profile.structural,
        );
    }
    if matches!(intent.shape, Shape::Select | Shape::Superlative { .. }) {
        if let Some(extra) = extra_column_candidate(db, intent) {
            push(
                ErrorChannel::ExtraColumn { column: extra },
                0.4 * profile.structural,
            );
        }
    }

    // Table confusion: another table sharing a name stem.
    if let Some(wrong) = confusable_table(db, &intent.primary) {
        push(
            ErrorChannel::TableConfusion { wrong },
            0.5 * profile.lexical,
        );
    }

    // Shape-level channels.
    match &intent.shape {
        Shape::Superlative { .. } => {
            push(ErrorChannel::DropOrderBy, 0.6 * profile.structural);
            push(ErrorChannel::WrongOrderDirection, 0.5 * profile.structural);
            push(ErrorChannel::DropLimit, 0.4 * profile.structural);
        }
        Shape::GroupBy {
            having_count_gt: Some(n),
            ..
        } => {
            push(
                ErrorChannel::HavingThresholdDrift { wrong: n + 1 },
                0.45 * profile.structural,
            );
        }
        Shape::Extremum { .. } => {
            push(ErrorChannel::ExtremumFlip, 0.5 * profile.structural);
        }
        _ => {}
    }
    for (i, _) in intent.joins.iter().enumerate() {
        push(
            ErrorChannel::MissingJoin { join_idx: i },
            0.45 * profile.structural,
        );
    }
    if intent.distinct {
        push(ErrorChannel::MissingDistinct, 0.5 * profile.structural);
    }
    out
}

/// Applies a channel to the intent and compiles the corrupted query.
pub fn corrupt(intent: &Intent, channel: &ErrorChannel) -> fisql_sqlkit::Query {
    corrupt_many(intent, std::slice::from_ref(channel))
}

/// Applies several channels and compiles the corrupted query.
///
/// Index-bearing channels address the *original* intent, so removals
/// (dropped predicates/projections/joins) are applied last, in descending
/// index order, after all in-place mutations.
pub fn corrupt_many(intent: &Intent, channels: &[ErrorChannel]) -> fisql_sqlkit::Query {
    let mut i = intent.clone();
    let mut drop_limit_post = false;
    let is_removal = |c: &ErrorChannel| {
        matches!(
            c,
            ErrorChannel::MissingColumn { .. }
                | ErrorChannel::DropPredicate { .. }
                | ErrorChannel::MissingJoin { .. }
        )
    };
    let removal_index = |c: &ErrorChannel| match c {
        ErrorChannel::MissingColumn { proj_idx } => *proj_idx,
        ErrorChannel::DropPredicate { pred_idx } => *pred_idx,
        ErrorChannel::MissingJoin { join_idx } => *join_idx,
        _ => 0,
    };
    let (mut removals, mutations): (Vec<&ErrorChannel>, Vec<&ErrorChannel>) =
        channels.iter().partition(|c| is_removal(c));
    removals.sort_by_key(|c| std::cmp::Reverse(removal_index(c)));
    for c in mutations.into_iter().chain(removals) {
        if apply_channel_to_intent(&mut i, c) {
            drop_limit_post = true;
        }
    }
    let mut q = i.compile();
    if drop_limit_post {
        q.limit = None;
    }
    q
}

/// Mutates `i` per `channel`; returns true when the compiled query's LIMIT
/// must be stripped afterwards.
fn apply_channel_to_intent(i: &mut Intent, channel: &ErrorChannel) -> bool {
    let mut drop_limit_post = false;
    match channel {
        ErrorChannel::YearDefault { pred_idx } => {
            if let Some(p) = i.preds.get_mut(*pred_idx) {
                if let PredKind::MonthWindow { year, .. } = &mut p.kind {
                    *year -= 1;
                }
            }
        }
        ErrorChannel::ColumnConfusion { proj_idx, wrong } => {
            if let Some(Projection::Column { column, .. }) = i.projections.get_mut(*proj_idx) {
                column.clone_from(wrong);
            }
        }
        ErrorChannel::FilterColumnConfusion { pred_idx, wrong } => {
            if let Some(p) = i.preds.get_mut(*pred_idx) {
                p.column.clone_from(wrong);
            }
        }
        ErrorChannel::TableConfusion { wrong } => {
            let old = i.primary.clone();
            i.primary.clone_from(wrong);
            for p in &mut i.preds {
                if p.table == old {
                    p.table.clone_from(wrong);
                }
            }
            for proj in &mut i.projections {
                if let Projection::Column { table, .. } = proj {
                    if *table == old {
                        table.clone_from(wrong);
                    }
                }
            }
            for j in &mut i.joins {
                if j.left_table == old {
                    j.left_table.clone_from(wrong);
                }
            }
            if let Shape::Superlative { order_table, .. } = &mut i.shape {
                if *order_table == old {
                    order_table.clone_from(wrong);
                }
            }
            if let Shape::GroupBy { key_table, .. } = &mut i.shape {
                if *key_table == old {
                    key_table.clone_from(wrong);
                }
            }
        }
        ErrorChannel::DropOrderBy => {
            if matches!(i.shape, Shape::Superlative { .. }) {
                i.shape = Shape::Select;
            }
        }
        ErrorChannel::WrongOrderDirection => {
            if let Shape::Superlative { desc, .. } = &mut i.shape {
                *desc = !*desc;
            }
        }
        ErrorChannel::DropLimit => {
            drop_limit_post = true;
        }
        ErrorChannel::AggConfusion { proj_idx, wrong } => {
            if let Some(Projection::Agg(a)) = i.projections.get_mut(*proj_idx) {
                *a = wrong.clone();
            }
        }
        ErrorChannel::ExtraColumn { column } => {
            i.projections.push(Projection::Column {
                table: i.primary.clone(),
                column: column.clone(),
            });
        }
        ErrorChannel::MissingColumn { proj_idx } => {
            if i.projections.len() > 1 && *proj_idx < i.projections.len() {
                i.projections.remove(*proj_idx);
            }
        }
        ErrorChannel::DropPredicate { pred_idx } => {
            if *pred_idx < i.preds.len() {
                i.preds.remove(*pred_idx);
            }
        }
        ErrorChannel::LiteralDrift { pred_idx, wrong } => {
            if let Some(p) = i.preds.get_mut(*pred_idx) {
                if let PredKind::Cmp { value, .. } = &mut p.kind {
                    *value = wrong.clone();
                }
            }
        }
        ErrorChannel::ComparisonConfusion { pred_idx, wrong_op } => {
            if let Some(p) = i.preds.get_mut(*pred_idx) {
                if let PredKind::Cmp { op, .. } = &mut p.kind {
                    *op = *wrong_op;
                }
            }
        }
        ErrorChannel::MissingJoin { join_idx } => {
            if *join_idx < i.joins.len() {
                let dropped = i.joins.remove(*join_idx);
                // Mis-attribute the dropped table's columns to the primary
                // table (hallucinated schema linking).
                for proj in &mut i.projections {
                    if let Projection::Column { table, .. } = proj {
                        if *table == dropped.table {
                            table.clone_from(&i.primary);
                        }
                    }
                }
                for p in &mut i.preds {
                    if p.table == dropped.table {
                        p.table.clone_from(&i.primary);
                    }
                }
                // Later joins that attached to the dropped table reattach
                // to the primary (still likely broken — that is the
                // point).
                for j in &mut i.joins {
                    if j.left_table == dropped.table {
                        j.left_table.clone_from(&i.primary);
                    }
                }
            }
        }
        ErrorChannel::MissingDistinct => {
            i.distinct = false;
        }
        ErrorChannel::HavingThresholdDrift { wrong } => {
            if let Shape::GroupBy {
                having_count_gt: Some(n),
                ..
            } = &mut i.shape
            {
                *n = *wrong;
            }
        }
        ErrorChannel::ExtremumFlip => {
            if let Shape::Extremum { max, .. } = &mut i.shape {
                *max = !*max;
            }
        }
    }
    drop_limit_post
}

/// Finds a same-table sibling column likely to be confused with `column`:
/// shares the trailing name token (`name` / `song_name`) and type class.
pub fn confusable_sibling(db: &Database, table: &str, column: &str) -> Option<String> {
    let t = db.table(table)?;
    let target_stem = stem(column);
    let col_idx = t.column_index(column)?;
    let dtype = t.columns[col_idx].dtype;
    t.columns
        .iter()
        .filter(|c| !c.name.eq_ignore_ascii_case(column))
        .filter(|c| c.dtype.is_textual() == dtype.is_textual())
        .find(|c| stem(&c.name) == target_stem)
        .map(|c| c.name.clone())
}

/// Finds a different table sharing the leading name stem (`order_record` /
/// `order_line`) — the generator's repeated entities (`student`,
/// `student_2`) also qualify.
pub fn confusable_table(db: &Database, table: &str) -> Option<String> {
    let target = first_token(table);
    db.tables
        .iter()
        .filter(|t| !t.name.eq_ignore_ascii_case(table))
        .find(|t| first_token(&t.name) == target)
        .map(|t| t.name.clone())
}

/// A plausible spurious extra column: a text column of the primary table
/// not already projected.
fn extra_column_candidate(db: &Database, intent: &Intent) -> Option<String> {
    let t = db.table(&intent.primary)?;
    let projected: Vec<&str> = intent
        .projections
        .iter()
        .filter_map(|p| match p {
            Projection::Column { column, .. } => Some(column.as_str()),
            Projection::Agg(_) => None,
        })
        .collect();
    t.columns
        .iter()
        .skip(1) // not the PK
        .find(|c| {
            c.dtype.is_textual() && !projected.iter().any(|p| p.eq_ignore_ascii_case(&c.name))
        })
        .map(|c| c.name.clone())
}

fn stem(name: &str) -> &str {
    name.rsplit('_').next().unwrap_or(name)
}

fn first_token(name: &str) -> &str {
    name.split('_').next().unwrap_or(name)
}

fn drift_number(n: i64) -> i64 {
    // Deterministic drift keeps corpus generation reproducible: a
    // magnitude-aware nudge.
    if n.abs() >= 100 {
        n + 10
    } else if n.abs() >= 10 {
        n + 5
    } else {
        n + 1
    }
}

fn strictness_neighbor(op: BinOp) -> Option<BinOp> {
    match op {
        BinOp::Gt => Some(BinOp::GtEq),
        BinOp::GtEq => Some(BinOp::Gt),
        BinOp::Lt => Some(BinOp::LtEq),
        BinOp::LtEq => Some(BinOp::Lt),
        _ => None,
    }
}

fn agg_neighbor(a: &AggIntent) -> Option<AggIntent> {
    match a {
        AggIntent::Count => None,
        AggIntent::CountDistinct(_) => Some(AggIntent::Count),
        AggIntent::Sum(c) => Some(AggIntent::Avg(c.clone())),
        AggIntent::Avg(c) => Some(AggIntent::Sum(c.clone())),
        AggIntent::Min(c) => Some(AggIntent::Max(c.clone())),
        AggIntent::Max(c) => Some(AggIntent::Min(c.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::{JoinStep, PredIntent};
    use fisql_engine::{Column, DataType, Table};
    use fisql_sqlkit::{diff_queries, print_query};

    fn test_db() -> Database {
        let mut db = Database::new("t");
        let mut singer = Table::new(
            "singer",
            vec![
                Column::new("singer_id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("song_name", DataType::Text),
                Column::new("age", DataType::Int),
                Column::new("created_time", DataType::Date),
            ],
        );
        singer.primary_key = Some(0);
        db.add_table(singer);
        db.add_table(Table::new(
            "singer_2",
            vec![
                Column::new("singer_2_id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
        ));
        db
    }

    fn month_intent() -> Intent {
        Intent {
            primary: "singer".into(),
            joins: vec![],
            projections: vec![Projection::Agg(AggIntent::Count)],
            distinct: false,
            preds: vec![PredIntent {
                table: "singer".into(),
                column: "created_time".into(),
                kind: PredKind::MonthWindow {
                    year: 2024,
                    month: 1,
                },
            }],
            shape: Shape::AggOnly,
        }
    }

    #[test]
    fn month_window_gets_year_default_channel() {
        let db = test_db();
        let chans = applicable_channels(&month_intent(), &db, &DifficultyProfile::spider());
        assert!(chans
            .iter()
            .any(|c| matches!(c.channel, ErrorChannel::YearDefault { .. })));
    }

    #[test]
    fn year_default_corruption_shifts_both_bounds() {
        let i = month_intent();
        let gold = i.compile();
        let bad = corrupt(&i, &ErrorChannel::YearDefault { pred_idx: 0 });
        let sql = print_query(&bad);
        assert!(
            sql.contains("2023-01-01") && sql.contains("2023-02-01"),
            "{sql}"
        );
        // The diff back to gold is exactly two Edit-type predicate ops —
        // the paper's Figure 5 demonstration.
        let edits = diff_queries(&bad, &gold);
        assert_eq!(edits.len(), 2);
        assert!(edits
            .iter()
            .all(|e| e.class() == fisql_sqlkit::OpClass::Edit));
    }

    #[test]
    fn confusable_sibling_finds_shared_stem() {
        let db = test_db();
        assert_eq!(
            confusable_sibling(&db, "singer", "name"),
            Some("song_name".to_string())
        );
        assert_eq!(confusable_sibling(&db, "singer", "age"), None);
    }

    #[test]
    fn confusable_table_finds_stem_sibling() {
        let db = test_db();
        assert_eq!(
            confusable_table(&db, "singer"),
            Some("singer_2".to_string())
        );
    }

    #[test]
    fn column_confusion_corruption() {
        let mut i = month_intent();
        i.projections = vec![Projection::Column {
            table: "singer".into(),
            column: "name".into(),
        }];
        i.shape = Shape::Select;
        let bad = corrupt(
            &i,
            &ErrorChannel::ColumnConfusion {
                proj_idx: 0,
                wrong: "song_name".into(),
            },
        );
        assert!(print_query(&bad).contains("song_name"));
    }

    #[test]
    fn aep_profile_concentrates_on_lexical_confusion() {
        // The closed-domain profile models jargon: lexical channels
        // (table/column confusion) are far heavier than on SPIDER, while
        // structural channels are comparable.
        let aep = DifficultyProfile::aep();
        let spider = DifficultyProfile::spider();
        assert!(aep.lexical > 2.0 * spider.lexical);
        // On an intent whose table has a confusable sibling, the AEP
        // table-confusion mass dominates the SPIDER one.
        let db = test_db();
        let i = month_intent();
        let weight_of = |p: &DifficultyProfile| -> f64 {
            applicable_channels(&i, &db, p)
                .iter()
                .filter(|c| matches!(c.channel, ErrorChannel::TableConfusion { .. }))
                .map(|c| c.weight)
                .sum()
        };
        assert!(weight_of(&aep) > 2.0 * weight_of(&spider));
    }

    #[test]
    fn drop_order_by_corruption() {
        let i = Intent {
            primary: "singer".into(),
            joins: vec![],
            projections: vec![Projection::Column {
                table: "singer".into(),
                column: "name".into(),
            }],
            distinct: false,
            preds: vec![],
            shape: Shape::Superlative {
                order_table: "singer".into(),
                order_col: "age".into(),
                desc: true,
                limit: 1,
            },
        };
        let bad = corrupt(&i, &ErrorChannel::DropOrderBy);
        assert_eq!(print_query(&bad), "SELECT name FROM singer");
        let bad = corrupt(&i, &ErrorChannel::DropLimit);
        assert_eq!(
            print_query(&bad),
            "SELECT name FROM singer ORDER BY age DESC"
        );
        let bad = corrupt(&i, &ErrorChannel::WrongOrderDirection);
        assert!(print_query(&bad).contains("ASC"));
    }

    #[test]
    fn missing_join_misattributes_columns() {
        let i = Intent {
            primary: "singer".into(),
            joins: vec![JoinStep {
                table: "concert".into(),
                left_table: "singer".into(),
                left_col: "singer_id".into(),
                right_col: "singer_id".into(),
            }],
            projections: vec![Projection::Column {
                table: "concert".into(),
                column: "year".into(),
            }],
            distinct: false,
            preds: vec![],
            shape: Shape::Select,
        };
        let bad = corrupt(&i, &ErrorChannel::MissingJoin { join_idx: 0 });
        let sql = print_query(&bad);
        assert!(!sql.contains("JOIN"), "{sql}");
        assert!(sql.contains("year"), "{sql}");
    }

    #[test]
    fn extremum_flip() {
        let i = Intent {
            primary: "singer".into(),
            joins: vec![],
            projections: vec![Projection::Column {
                table: "singer".into(),
                column: "name".into(),
            }],
            distinct: false,
            preds: vec![],
            shape: Shape::Extremum {
                column: "age".into(),
                max: false,
            },
        };
        let bad = corrupt(&i, &ErrorChannel::ExtremumFlip);
        assert!(print_query(&bad).contains("MAX(age)"));
    }

    #[test]
    fn every_corruption_differs_from_gold() {
        let db = test_db();
        let mut i = month_intent();
        i.projections = vec![
            Projection::Column {
                table: "singer".into(),
                column: "name".into(),
            },
            Projection::Column {
                table: "singer".into(),
                column: "age".into(),
            },
        ];
        i.shape = Shape::Select;
        let gold = i.compile();
        for wc in applicable_channels(&i, &db, &DifficultyProfile::aep()) {
            let bad = corrupt(&i, &wc.channel);
            assert!(
                !fisql_sqlkit::structurally_equal(&bad, &gold),
                "channel {:?} produced no change",
                wc.channel.kind()
            );
        }
    }
}
