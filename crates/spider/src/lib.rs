//! # fisql-spider
//!
//! Benchmark substrate for the FISQL reproduction: synthetic SPIDER-like
//! and AEP-like corpora plus the execution-accuracy evaluation harness.
//!
//! The paper evaluates on (a) the SPIDER validation set (~200 databases,
//! 1034 dev questions) and (b) an internal Adobe Experience Platform
//! dataset. Neither is shippable here, so this crate generates seeded
//! synthetic equivalents that match the paper's published statistics and
//! ambiguity structure (see DESIGN.md §2 for the substitution argument).
//!
//! Every example is generated *intent-first*: a semantic frame sampled
//! from the schema is compiled into gold SQL and rendered into a natural-
//! language question, and the frame's *error channels* — the structured
//! ways a model can misread the question — are recorded for the simulated
//! LLM in `fisql-llm`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aep;
pub mod channels;
pub mod corpus;
pub mod data_gen;
pub mod eval;
pub mod example;
pub mod intent;
pub mod intent_gen;
pub mod question;
pub mod schema_gen;
pub mod vocab;

pub use aep::{build_aep, build_aep_database, jargon_surface, AepConfig};
pub use channels::{
    applicable_channels, corrupt, corrupt_many, DifficultyProfile, ErrorChannel, WeightedChannel,
};
pub use corpus::{build_spider, SpiderConfig};
pub use eval::{
    check_prediction, check_prediction_with, evaluate, user_visible_result, AccuracyReport, Verdict,
};
pub use example::{Corpus, Example, Hardness};
pub use intent::{AggIntent, Intent, JoinStep, PredIntent, PredKind, Projection, Shape};
pub use intent_gen::generate_intent;
pub use question::{humanize, pluralize, render_question};
