//! Seeded schema generation.
//!
//! Produces databases matching the SPIDER statistics quoted in the paper
//! (§4.1): "about 200 databases with 5-20 tables per database and 5-10
//! columns per table". Foreign keys link later tables to earlier ones so
//! every database has join paths for the question generator.

use crate::vocab::Theme;
use fisql_engine::{Column, DataType, Database, ForeignKey, Table};
use rand::Rng;

/// Options controlling schema generation.
#[derive(Debug, Clone)]
pub struct SchemaGenOptions {
    /// Minimum number of tables.
    pub min_tables: usize,
    /// Maximum number of tables (inclusive).
    pub max_tables: usize,
    /// Minimum columns per table (including the PK).
    pub min_columns: usize,
    /// Maximum columns per table (inclusive).
    pub max_columns: usize,
    /// Probability that a non-first table gains a foreign key.
    pub fk_probability: f64,
    /// Probability of a second foreign key.
    pub second_fk_probability: f64,
}

impl Default for SchemaGenOptions {
    fn default() -> Self {
        SchemaGenOptions {
            min_tables: 5,
            max_tables: 20,
            min_columns: 5,
            max_columns: 10,
            fk_probability: 0.75,
            second_fk_probability: 0.25,
        }
    }
}

/// Generates a database schema (no rows) for `theme`, named
/// `{theme}_{variant}`.
pub fn generate_schema(
    theme: &Theme,
    variant: usize,
    opts: &SchemaGenOptions,
    rng: &mut impl Rng,
) -> Database {
    let mut db = Database::new(format!("{}_{}", theme.name, variant));
    let n_tables = rng.gen_range(opts.min_tables..=opts.max_tables);

    let mut entity_names: Vec<String> = Vec::with_capacity(n_tables);
    for i in 0..n_tables {
        let base = theme.entities[i % theme.entities.len()];
        let name = if i < theme.entities.len() {
            base.to_string()
        } else {
            format!("{}_{}", base, i / theme.entities.len() + 1)
        };
        entity_names.push(name);
    }

    for (i, entity) in entity_names.iter().enumerate() {
        let n_cols = rng.gen_range(opts.min_columns..=opts.max_columns);
        let mut columns = vec![Column::new(format!("{entity}_id"), DataType::Int)];
        let mut used: Vec<String> = vec![format!("{entity}_id")];
        let mut foreign_keys = Vec::new();

        // Foreign keys to earlier tables come right after the PK so join
        // columns are predictable.
        if i > 0 && rng.gen_bool(opts.fk_probability) {
            let mut targets = vec![rng.gen_range(0..i)];
            if i > 1 && rng.gen_bool(opts.second_fk_probability) {
                let second = rng.gen_range(0..i);
                if second != targets[0] {
                    targets.push(second);
                }
            }
            for target in targets {
                let fk_name = format!("{}_id", entity_names[target]);
                if used.iter().any(|u| u == &fk_name) {
                    continue;
                }
                foreign_keys.push(ForeignKey {
                    column: columns.len(),
                    ref_table: entity_names[target].clone(),
                    ref_column: 0,
                });
                used.push(fk_name.clone());
                columns.push(Column::new(fk_name, DataType::Int));
            }
        }

        // Always include at least one text attribute (the "name-like"
        // column questions project).
        push_unique(
            &mut columns,
            &mut used,
            pick(theme.text_attrs, rng),
            DataType::Text,
        );

        while columns.len() < n_cols {
            let roll = rng.gen_range(0..100);
            let (name, dtype) = if roll < 35 {
                (pick(theme.text_attrs, rng), DataType::Text)
            } else if roll < 65 {
                (pick(theme.int_attrs, rng), DataType::Int)
            } else if roll < 85 {
                (pick(theme.float_attrs, rng), DataType::Float)
            } else {
                (pick(theme.date_attrs, rng), DataType::Date)
            };
            push_unique(&mut columns, &mut used, name, dtype);
        }

        let mut table = Table::new(entity.clone(), columns);
        table.primary_key = Some(0);
        table.foreign_keys = foreign_keys;
        db.add_table(table);
    }
    db
}

fn pick<'a>(pool: &[&'a str], rng: &mut impl Rng) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn push_unique(columns: &mut Vec<Column>, used: &mut Vec<String>, name: &str, dtype: DataType) {
    if used.iter().any(|u| u.eq_ignore_ascii_case(name)) {
        return;
    }
    used.push(name.to_string());
    columns.push(Column::new(name, dtype));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::THEMES;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schemas_meet_paper_statistics() {
        let opts = SchemaGenOptions::default();
        let mut rng = StdRng::seed_from_u64(7);
        for theme in THEMES.iter().take(5) {
            for v in 0..4 {
                let db = generate_schema(theme, v, &opts, &mut rng);
                assert!(
                    (5..=20).contains(&db.tables.len()),
                    "table count {} out of range",
                    db.tables.len()
                );
                for t in &db.tables {
                    assert!(
                        (4..=10).contains(&t.columns.len()),
                        "column count {} out of range for {}",
                        t.columns.len(),
                        t.name
                    );
                    assert_eq!(t.primary_key, Some(0));
                    // Every FK references an existing table's PK.
                    for fk in &t.foreign_keys {
                        let target = db.table(&fk.ref_table).expect("fk target exists");
                        assert_eq!(fk.ref_column, 0);
                        assert_eq!(target.primary_key, Some(0));
                        assert!(fk.column < t.columns.len());
                    }
                    // Column names are unique case-insensitively.
                    let mut names: Vec<String> =
                        t.columns.iter().map(|c| c.name.to_lowercase()).collect();
                    names.sort();
                    let before = names.len();
                    names.dedup();
                    assert_eq!(names.len(), before, "dup column in {}", t.name);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let opts = SchemaGenOptions::default();
        let a = generate_schema(&THEMES[0], 1, &opts, &mut StdRng::seed_from_u64(42));
        let b = generate_schema(&THEMES[0], 1, &opts, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = generate_schema(&THEMES[0], 1, &opts, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c, "different seeds should give different schemas");
    }

    #[test]
    fn table_names_unique() {
        let opts = SchemaGenOptions {
            min_tables: 20,
            max_tables: 20,
            ..Default::default()
        };
        let db = generate_schema(&THEMES[1], 0, &opts, &mut StdRng::seed_from_u64(3));
        let mut names: Vec<_> = db.tables.iter().map(|t| t.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 20);
    }
}
