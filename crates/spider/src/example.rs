//! Benchmark example and corpus types.

use crate::channels::WeightedChannel;
use crate::intent::{Intent, Shape};
use fisql_engine::Database;
use fisql_sqlkit::Query;
use serde::{Deserialize, Serialize};

/// SPIDER-style hardness tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Hardness {
    /// Single table, at most one predicate, no shaping.
    Easy,
    /// One join, or multiple predicates, or plain grouping.
    Medium,
    /// Superlatives, HAVING, extremum subqueries.
    Hard,
    /// Multiple joins combined with complex shaping.
    Extra,
}

impl Hardness {
    /// Classifies an intent the way SPIDER's official evaluator buckets
    /// queries (approximately — the official heuristic counts SQL
    /// components; ours counts the intent's).
    pub fn classify(intent: &Intent) -> Hardness {
        let joins = intent.joins.len();
        let preds = intent.preds.len();
        let shaped = !matches!(intent.shape, Shape::Select | Shape::AggOnly);
        let complex_shape = matches!(
            intent.shape,
            Shape::Extremum { .. }
                | Shape::GroupBy {
                    having_count_gt: Some(_),
                    ..
                }
        );
        if joins >= 2 || (joins >= 1 && complex_shape) || (complex_shape && preds >= 2) {
            Hardness::Extra
        } else if complex_shape || matches!(intent.shape, Shape::Superlative { .. }) {
            Hardness::Hard
        } else if joins >= 1 || preds >= 2 || shaped {
            Hardness::Medium
        } else {
            Hardness::Easy
        }
    }

    /// Display label matching the SPIDER evaluator's output.
    pub fn label(&self) -> &'static str {
        match self {
            Hardness::Easy => "easy",
            Hardness::Medium => "medium",
            Hardness::Hard => "hard",
            Hardness::Extra => "extra",
        }
    }
}

/// One benchmark example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Example id, unique within its corpus.
    pub id: usize,
    /// Index into the corpus's database list.
    pub db_index: usize,
    /// Natural-language question.
    pub question: String,
    /// The underlying semantic frame.
    pub intent: Intent,
    /// Gold SQL (compiled from the intent).
    pub gold: Query,
    /// Error channels applicable to this example, with weights.
    pub channels: Vec<WeightedChannel>,
    /// Hardness tier.
    pub hardness: Hardness,
}

/// A corpus: databases plus examples over them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// Corpus name ("spider-like" / "aep-like").
    pub name: String,
    /// Databases, indexed by [`Example::db_index`].
    pub databases: Vec<Database>,
    /// Examples.
    pub examples: Vec<Example>,
}

impl Corpus {
    /// The database an example runs against.
    pub fn database(&self, example: &Example) -> &Database {
        &self.databases[example.db_index]
    }

    /// Hardness histogram `(easy, medium, hard, extra)`.
    pub fn hardness_mix(&self) -> (usize, usize, usize, usize) {
        let mut mix = (0, 0, 0, 0);
        for e in &self.examples {
            match e.hardness {
                Hardness::Easy => mix.0 += 1,
                Hardness::Medium => mix.1 += 1,
                Hardness::Hard => mix.2 += 1,
                Hardness::Extra => mix.3 += 1,
            }
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::{JoinStep, PredIntent, PredKind, Projection};
    use fisql_sqlkit::ast::{BinOp, Literal};

    fn base() -> Intent {
        Intent {
            primary: "t".into(),
            joins: vec![],
            projections: vec![Projection::Column {
                table: "t".into(),
                column: "a".into(),
            }],
            distinct: false,
            preds: vec![],
            shape: Shape::Select,
        }
    }

    #[test]
    fn classify_easy() {
        assert_eq!(Hardness::classify(&base()), Hardness::Easy);
    }

    #[test]
    fn classify_medium_on_join_or_preds() {
        let mut i = base();
        i.joins = vec![JoinStep {
            table: "s".into(),
            left_table: "t".into(),
            left_col: "id".into(),
            right_col: "tid".into(),
        }];
        assert_eq!(Hardness::classify(&i), Hardness::Medium);

        let mut i = base();
        i.preds = vec![
            PredIntent {
                table: "t".into(),
                column: "a".into(),
                kind: PredKind::Cmp {
                    op: BinOp::Gt,
                    value: Literal::Number(1),
                },
            },
            PredIntent {
                table: "t".into(),
                column: "b".into(),
                kind: PredKind::Cmp {
                    op: BinOp::Lt,
                    value: Literal::Number(9),
                },
            },
        ];
        assert_eq!(Hardness::classify(&i), Hardness::Medium);
    }

    #[test]
    fn classify_hard_on_superlative_and_extremum() {
        let mut i = base();
        i.shape = Shape::Superlative {
            order_table: "t".into(),
            order_col: "a".into(),
            desc: true,
            limit: 1,
        };
        assert_eq!(Hardness::classify(&i), Hardness::Hard);

        let mut i = base();
        i.shape = Shape::Extremum {
            column: "a".into(),
            max: true,
        };
        assert_eq!(Hardness::classify(&i), Hardness::Hard);
    }

    #[test]
    fn classify_extra_on_join_plus_complex_shape() {
        let mut i = base();
        i.joins = vec![JoinStep {
            table: "s".into(),
            left_table: "t".into(),
            left_col: "id".into(),
            right_col: "tid".into(),
        }];
        i.shape = Shape::Extremum {
            column: "a".into(),
            max: true,
        };
        assert_eq!(Hardness::classify(&i), Hardness::Extra);
    }
}
