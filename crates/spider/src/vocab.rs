//! Domain vocabulary pools used by the synthetic schema generator.
//!
//! The SPIDER benchmark spans ~200 databases drawn from everyday domains
//! (colleges, flights, pets, concerts, …) whose schemas use common-sense
//! names. The generator reproduces that flavour by instantiating schemas
//! from the domain themes below; the AEP-like corpus instead uses the
//! closed-domain marketing vocabulary in [`crate::aep`].

/// A domain theme: a family of entity concepts the generator can turn
/// into tables.
#[derive(Debug, Clone, Copy)]
pub struct Theme {
    /// Theme identifier, used in database names.
    pub name: &'static str,
    /// Entity nouns; each becomes a table (with `_` plural-free naming).
    pub entities: &'static [&'static str],
    /// Text attribute column names plausible in this theme.
    pub text_attrs: &'static [&'static str],
    /// Integer attribute column names.
    pub int_attrs: &'static [&'static str],
    /// Float attribute column names.
    pub float_attrs: &'static [&'static str],
    /// Date attribute column names.
    pub date_attrs: &'static [&'static str],
    /// Categorical value pool for text attributes.
    pub categories: &'static [&'static str],
}

/// All available themes. 24 themes × seeded variation yields the ~200
/// distinct databases of the SPIDER-like corpus.
pub const THEMES: &[Theme] = &[
    Theme {
        name: "college",
        entities: &[
            "student",
            "course",
            "department",
            "instructor",
            "section",
            "classroom",
            "major",
            "enrollment",
        ],
        text_attrs: &[
            "name",
            "title",
            "building",
            "email",
            "advisor_name",
            "dept_name",
            "level",
        ],
        int_attrs: &[
            "age",
            "credits",
            "capacity",
            "year",
            "enrollment_count",
            "room_number",
        ],
        float_attrs: &["gpa", "salary", "budget", "tuition"],
        date_attrs: &["enroll_date", "start_date", "end_date"],
        categories: &["Freshman", "Sophomore", "Junior", "Senior", "Graduate"],
    },
    Theme {
        name: "concert",
        entities: &[
            "singer",
            "concert",
            "stadium",
            "song",
            "album",
            "band",
            "ticket",
            "venue_staff",
        ],
        text_attrs: &[
            "name",
            "song_name",
            "concert_name",
            "country",
            "location",
            "genre",
            "label",
        ],
        int_attrs: &[
            "age",
            "year",
            "song_release_year",
            "capacity",
            "attendance",
            "duration",
        ],
        float_attrs: &["price", "rating", "highest", "average"],
        date_attrs: &["release_date", "event_date"],
        categories: &["Pop", "Rock", "Jazz", "Folk", "Classical"],
    },
    Theme {
        name: "flight",
        entities: &[
            "flight",
            "airport",
            "airline",
            "aircraft",
            "pilot",
            "booking",
            "passenger",
            "route",
        ],
        text_attrs: &[
            "name",
            "city",
            "country",
            "source_airport",
            "dest_airport",
            "airline_name",
            "abbreviation",
        ],
        int_attrs: &[
            "id_number",
            "distance",
            "elevation",
            "seats",
            "year_founded",
            "flight_number",
        ],
        float_attrs: &["price", "duration_hours", "on_time_rate"],
        date_attrs: &["departure_date", "arrival_date"],
        categories: &["Domestic", "International", "Charter", "Cargo"],
    },
    Theme {
        name: "pets",
        entities: &[
            "pet",
            "owner",
            "veterinarian",
            "treatment",
            "breed",
            "shelter",
            "adoption",
            "appointment",
        ],
        text_attrs: &["name", "pet_type", "breed_name", "city", "state", "color"],
        int_attrs: &["age", "weight", "pet_age", "visits", "capacity"],
        float_attrs: &["fee", "cost", "weight_kg"],
        date_attrs: &["adoption_date", "visit_date", "birth_date"],
        categories: &["Dog", "Cat", "Bird", "Rabbit", "Hamster"],
    },
    Theme {
        name: "employment",
        entities: &[
            "employee",
            "company",
            "position",
            "project",
            "assignment",
            "office",
            "manager",
            "contract",
        ],
        text_attrs: &[
            "name",
            "company_name",
            "title",
            "city",
            "industry",
            "headquarter",
        ],
        int_attrs: &["age", "year", "staff_count", "floor", "hours"],
        float_attrs: &["salary", "revenue", "market_value", "bonus"],
        date_attrs: &["hire_date", "founded_date", "deadline"],
        categories: &["Engineering", "Sales", "Finance", "Marketing", "Operations"],
    },
    Theme {
        name: "library",
        entities: &[
            "book",
            "author",
            "publisher",
            "member",
            "loan",
            "branch",
            "reservation",
            "genre_list",
        ],
        text_attrs: &[
            "title",
            "name",
            "publisher_name",
            "language",
            "city",
            "isbn",
        ],
        int_attrs: &["pages", "year", "copies", "member_count", "age"],
        float_attrs: &["price", "rating", "late_fee"],
        date_attrs: &["publish_date", "due_date", "join_date"],
        categories: &["Fiction", "History", "Science", "Biography", "Poetry"],
    },
    Theme {
        name: "hospital",
        entities: &[
            "patient",
            "doctor",
            "nurse",
            "ward",
            "prescription",
            "procedure_record",
            "department",
            "stay",
        ],
        text_attrs: &[
            "name",
            "diagnosis",
            "specialty",
            "ward_name",
            "medication",
            "blood_type",
        ],
        int_attrs: &["age", "room", "bed_count", "dosage", "year"],
        float_attrs: &["cost", "height", "weight"],
        date_attrs: &["admission_date", "discharge_date", "visit_date"],
        categories: &[
            "Cardiology",
            "Neurology",
            "Oncology",
            "Pediatrics",
            "Radiology",
        ],
    },
    Theme {
        name: "restaurant",
        entities: &[
            "restaurant",
            "dish",
            "chef",
            "reservation",
            "review",
            "ingredient",
            "menu",
            "supplier",
        ],
        text_attrs: &[
            "name",
            "cuisine",
            "city",
            "dish_name",
            "chef_name",
            "street",
        ],
        int_attrs: &[
            "capacity",
            "year_opened",
            "spice_level",
            "calories",
            "table_count",
        ],
        float_attrs: &["price", "rating", "tip_percent"],
        date_attrs: &["visit_date", "opened_date"],
        categories: &["Italian", "Thai", "Mexican", "Indian", "French"],
    },
    Theme {
        name: "ecommerce",
        entities: &[
            "customer",
            "product",
            "order_record",
            "shipment",
            "category_list",
            "cart",
            "payment",
            "warehouse",
        ],
        text_attrs: &[
            "name",
            "product_name",
            "city",
            "country",
            "status_text",
            "carrier",
        ],
        int_attrs: &["quantity", "stock", "year", "zip", "units_sold"],
        float_attrs: &["price", "discount", "total_amount", "weight"],
        date_attrs: &["order_date", "ship_date", "delivery_date"],
        categories: &["Electronics", "Clothing", "Books", "Garden", "Toys"],
    },
    Theme {
        name: "sports",
        entities: &[
            "player",
            "team",
            "match_record",
            "stadium",
            "coach",
            "season",
            "injury",
            "transfer",
        ],
        text_attrs: &[
            "name",
            "team_name",
            "position",
            "country",
            "city",
            "coach_name",
        ],
        int_attrs: &[
            "age", "goals", "points", "year", "capacity", "wins", "losses",
        ],
        float_attrs: &["salary", "height", "average_score"],
        date_attrs: &["match_date", "signed_date"],
        categories: &["Forward", "Midfielder", "Defender", "Goalkeeper", "Coach"],
    },
    Theme {
        name: "realestate",
        entities: &[
            "property",
            "agent",
            "buyer",
            "listing",
            "viewing",
            "neighborhood",
            "mortgage",
            "inspection",
        ],
        text_attrs: &[
            "address",
            "name",
            "city",
            "property_type",
            "agency",
            "status_text",
        ],
        int_attrs: &[
            "bedrooms",
            "bathrooms",
            "year_built",
            "square_feet",
            "floor_count",
        ],
        float_attrs: &["price", "commission", "interest_rate", "lot_size"],
        date_attrs: &["list_date", "sale_date", "viewing_date"],
        categories: &["House", "Apartment", "Condo", "Townhouse", "Land"],
    },
    Theme {
        name: "banking",
        entities: &[
            "account",
            "customer",
            "transaction_record",
            "branch",
            "loan",
            "card",
            "advisor",
            "deposit",
        ],
        text_attrs: &[
            "name",
            "account_type",
            "branch_name",
            "city",
            "currency",
            "status_text",
        ],
        int_attrs: &["age", "year_opened", "credit_score", "term_months"],
        float_attrs: &["balance", "amount", "interest_rate", "credit_limit"],
        date_attrs: &["open_date", "transaction_date", "due_date"],
        categories: &["Checking", "Savings", "Credit", "Investment", "Retirement"],
    },
    Theme {
        name: "museum",
        entities: &[
            "exhibit", "artist", "museum", "visitor", "tour", "artifact", "gallery", "donation",
        ],
        text_attrs: &["name", "title", "nationality", "city", "period", "material"],
        int_attrs: &[
            "year_created",
            "age",
            "visitor_count",
            "floor",
            "piece_count",
        ],
        float_attrs: &["ticket_price", "insured_value", "donation_amount"],
        date_attrs: &["acquired_date", "visit_date"],
        categories: &["Painting", "Sculpture", "Photography", "Textile", "Ceramic"],
    },
    Theme {
        name: "film",
        entities: &[
            "movie",
            "director",
            "actor",
            "studio",
            "screening",
            "award",
            "cinema",
            "review_entry",
        ],
        text_attrs: &[
            "title",
            "name",
            "genre",
            "country",
            "studio_name",
            "language",
        ],
        int_attrs: &["year", "duration", "age", "screen_count", "vote_count"],
        float_attrs: &["gross", "budget", "rating"],
        date_attrs: &["release_date", "ceremony_date"],
        categories: &["Drama", "Comedy", "Action", "Horror", "Documentary"],
    },
    Theme {
        name: "government",
        entities: &[
            "county",
            "city_record",
            "representative",
            "election",
            "district",
            "department",
            "budget_item",
            "policy",
        ],
        text_attrs: &["name", "party", "state", "county_name", "status_text"],
        int_attrs: &["population", "year", "votes", "seat_count", "area"],
        float_attrs: &["budget", "tax_rate", "turnout_percent"],
        date_attrs: &["election_date", "term_start"],
        categories: &[
            "Democratic",
            "Republican",
            "Independent",
            "Green",
            "Libertarian",
        ],
    },
    Theme {
        name: "shipping",
        entities: &[
            "vessel",
            "port",
            "cargo",
            "voyage",
            "captain",
            "container",
            "dock",
            "manifest",
        ],
        text_attrs: &[
            "name",
            "port_name",
            "country",
            "cargo_type",
            "flag",
            "status_text",
        ],
        int_attrs: &["tonnage", "year_built", "crew_count", "container_count"],
        float_attrs: &["length", "draft", "freight_rate"],
        date_attrs: &["departure_date", "arrival_date"],
        categories: &["Bulk", "Tanker", "Container", "RoRo", "Reefer"],
    },
    Theme {
        name: "music_platform",
        entities: &[
            "track",
            "artist",
            "playlist",
            "listener",
            "subscription",
            "label_record",
            "podcast",
            "session_log",
        ],
        text_attrs: &["title", "name", "genre", "country", "device", "plan_name"],
        int_attrs: &[
            "duration_seconds",
            "play_count",
            "age",
            "year",
            "follower_count",
        ],
        float_attrs: &["monthly_fee", "royalty_rate", "rating"],
        date_attrs: &["signup_date", "release_date"],
        categories: &["Free", "Student", "Premium", "Family", "Duo"],
    },
    Theme {
        name: "insurance",
        entities: &[
            "policy",
            "claim",
            "policyholder",
            "adjuster",
            "coverage",
            "premium_record",
            "incident",
            "payout",
        ],
        text_attrs: &[
            "name",
            "policy_type",
            "city",
            "status_text",
            "incident_type",
        ],
        int_attrs: &["age", "year", "claim_count", "term_years"],
        float_attrs: &["premium", "deductible", "payout_amount", "coverage_limit"],
        date_attrs: &["start_date", "claim_date", "expiry_date"],
        categories: &["Auto", "Home", "Life", "Health", "Travel"],
    },
    Theme {
        name: "gaming",
        entities: &[
            "game",
            "player_profile",
            "match_log",
            "guild",
            "item",
            "achievement",
            "tournament",
            "server",
        ],
        text_attrs: &["name", "title", "genre", "region", "platform", "rank_name"],
        int_attrs: &["level", "score", "play_hours", "year", "member_count"],
        float_attrs: &["price", "win_rate", "prize_pool"],
        date_attrs: &["release_date", "joined_date"],
        categories: &["RPG", "FPS", "Strategy", "Puzzle", "Racing"],
    },
    Theme {
        name: "energy",
        entities: &[
            "plant",
            "turbine",
            "grid_node",
            "outage",
            "meter",
            "supplier",
            "tariff",
            "reading",
        ],
        text_attrs: &["name", "plant_type", "region", "operator", "status_text"],
        int_attrs: &[
            "capacity_mw",
            "year_commissioned",
            "household_count",
            "duration_minutes",
        ],
        float_attrs: &["output", "efficiency", "price_per_kwh"],
        date_attrs: &["reading_date", "outage_date"],
        categories: &["Solar", "Wind", "Hydro", "Nuclear", "Gas"],
    },
    Theme {
        name: "logistics",
        entities: &[
            "driver",
            "truck",
            "delivery",
            "depot",
            "route_plan",
            "parcel",
            "client",
            "fuel_log",
        ],
        text_attrs: &["name", "city", "license_plate", "status_text", "depot_name"],
        int_attrs: &["age", "mileage", "parcel_count", "year", "capacity_kg"],
        float_attrs: &["fuel_cost", "distance_km", "weight"],
        date_attrs: &["delivery_date", "dispatch_date"],
        categories: &["Express", "Standard", "Economy", "Overnight", "Same-day"],
    },
    Theme {
        name: "telecom",
        entities: &[
            "subscriber",
            "plan",
            "tower",
            "call_record",
            "device",
            "invoice",
            "region_entry",
            "outage_log",
        ],
        text_attrs: &["name", "plan_name", "city", "device_model", "status_text"],
        int_attrs: &["age", "data_gb", "minutes_used", "year", "tower_count"],
        float_attrs: &["monthly_cost", "overage_fee", "signal_strength"],
        date_attrs: &["activation_date", "invoice_date"],
        categories: &["Prepaid", "Postpaid", "Business", "Family", "Unlimited"],
    },
    Theme {
        name: "agriculture",
        entities: &[
            "farm",
            "crop",
            "harvest",
            "field",
            "equipment",
            "farmer",
            "market_sale",
            "irrigation_log",
        ],
        text_attrs: &["name", "crop_type", "region", "soil_type", "owner_name"],
        int_attrs: &["acreage", "year", "yield_tons", "worker_count"],
        float_attrs: &["price_per_ton", "rainfall", "subsidy"],
        date_attrs: &["harvest_date", "planting_date"],
        categories: &["Wheat", "Corn", "Soy", "Rice", "Barley"],
    },
    Theme {
        name: "research",
        entities: &[
            "paper",
            "researcher",
            "lab",
            "grant",
            "citation_record",
            "conference",
            "dataset_entry",
            "review_log",
        ],
        text_attrs: &["title", "name", "institution", "field", "venue", "country"],
        int_attrs: &[
            "year",
            "citation_count",
            "page_count",
            "h_index",
            "author_count",
        ],
        float_attrs: &["funding_amount", "acceptance_rate", "impact_factor"],
        date_attrs: &["submission_date", "publication_date"],
        categories: &["Databases", "ML", "Systems", "Theory", "HCI"],
    },
    Theme {
        name: "tourism",
        entities: &[
            "hotel",
            "guest",
            "booking_record",
            "attraction",
            "tour_package",
            "guide",
            "review_item",
            "destination",
        ],
        text_attrs: &["name", "city", "country", "attraction_type", "status_text"],
        int_attrs: &[
            "stars",
            "room_count",
            "year_opened",
            "nights",
            "visitor_count",
        ],
        float_attrs: &["nightly_rate", "rating", "package_price"],
        date_attrs: &["checkin_date", "checkout_date"],
        categories: &["Beach", "Mountain", "City", "Desert", "Island"],
    },
];

/// First-name pool for person-ish text values.
pub const FIRST_NAMES: &[&str] = &[
    "Joe", "Ann", "Maria", "Wei", "Priya", "Liam", "Sofia", "Noah", "Emma", "Raj", "Olivia",
    "Mateo", "Yuki", "Omar", "Nina", "Lucas", "Amara", "Ivan", "Chloe", "Hugo", "Zara", "Felix",
    "Ines", "Dmitri", "Leila", "Oscar", "Tara", "Jonas", "Aisha", "Marco",
];

/// Surname pool.
pub const LAST_NAMES: &[&str] = &[
    "Sharp", "Brown", "White", "King", "Nizinik", "Garcia", "Chen", "Patel", "Okafor", "Silva",
    "Novak", "Larsen", "Haddad", "Kim", "Moreau", "Rossi", "Tanaka", "Weber", "Costa", "Dubois",
];

/// City pool.
pub const CITIES: &[&str] = &[
    "New York", "Paris", "Tokyo", "Berlin", "Madrid", "Toronto", "Sydney", "Mumbai", "Lagos",
    "Seoul", "Lima", "Cairo", "Oslo", "Prague", "Lisbon", "Austin",
];

/// Country pool.
pub const COUNTRIES: &[&str] = &[
    "United States",
    "France",
    "Japan",
    "Germany",
    "Spain",
    "Canada",
    "Australia",
    "India",
    "Nigeria",
    "South Korea",
    "Peru",
    "Egypt",
    "Norway",
    "Netherlands",
];

/// Generic word pool for titles and free-text values.
pub const WORDS: &[&str] = &[
    "Sun", "River", "Echo", "Summit", "Harbor", "Aurora", "Cedar", "Quartz", "Falcon", "Ember",
    "Willow", "Atlas", "Comet", "Delta", "Horizon", "Iris", "Juniper", "Krypton", "Lumen",
    "Meadow", "Nimbus", "Onyx", "Prism", "Quill", "Raven", "Sable", "Tundra",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn themes_are_well_formed() {
        assert!(THEMES.len() >= 20, "need enough themes for ~200 DBs");
        for t in THEMES {
            assert!(t.entities.len() >= 6, "theme {} too few entities", t.name);
            assert!(t.text_attrs.len() >= 4);
            assert!(t.int_attrs.len() >= 3);
            assert!(!t.float_attrs.is_empty());
            assert!(!t.date_attrs.is_empty());
            assert!(t.categories.len() >= 4);
        }
    }

    #[test]
    fn theme_names_are_unique() {
        let mut names: Vec<_> = THEMES.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), THEMES.len());
    }

    #[test]
    fn entity_names_unique_within_theme() {
        for t in THEMES {
            let mut e: Vec<_> = t.entities.to_vec();
            e.sort_unstable();
            e.dedup();
            assert_eq!(e.len(), t.entities.len(), "dup entity in {}", t.name);
        }
    }
}
