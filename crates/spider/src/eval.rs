//! Execution-accuracy evaluation harness (the SPIDER evaluator's metric).

use crate::example::{Corpus, Example, Hardness};
use fisql_engine::{execute, results_match, Database, ResultSet};
use fisql_sqlkit::Query;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of checking one prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// Prediction executed and matched gold.
    Correct,
    /// Prediction executed but result differed from gold.
    WrongResult,
    /// Prediction failed to execute.
    ExecutionError {
        /// The engine's error message.
        message: String,
    },
}

impl Verdict {
    /// Whether the prediction counts as correct.
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct)
    }
}

/// Checks a predicted query against an example's gold on `db`.
pub fn check_prediction(db: &Database, example: &Example, predicted: &Query) -> Verdict {
    check_prediction_with(db, example, predicted, |db, q| {
        execute(db, q).map_err(|e| e.to_string())
    })
}

/// [`check_prediction`] with the engine call abstracted out, so callers
/// can route both the gold and the predicted execution through a result
/// cache. The executor must behave like `execute` under unlimited
/// budgets (same rows, same error strings) for the verdict to match an
/// uncached check.
pub fn check_prediction_with(
    db: &Database,
    example: &Example,
    predicted: &Query,
    mut exec: impl FnMut(&Database, &Query) -> Result<ResultSet, String>,
) -> Verdict {
    let gold_rs = match exec(db, &example.gold) {
        Ok(rs) => rs,
        Err(e) => {
            // Corpus construction validates gold; reaching this means the
            // example is corrupt.
            return Verdict::ExecutionError {
                message: format!("gold failed: {e}"),
            };
        }
    };
    match exec(db, predicted) {
        Ok(rs) => {
            if results_match(&rs, &gold_rs) {
                Verdict::Correct
            } else {
                Verdict::WrongResult
            }
        }
        Err(e) => Verdict::ExecutionError { message: e },
    }
}

/// Executes a predicted query, returning what the Assistant would show the
/// user (the "Evaluation" grid of Figure 7), or the error message.
pub fn user_visible_result(db: &Database, predicted: &Query) -> Result<ResultSet, String> {
    execute(db, predicted).map_err(|e| e.to_string())
}

/// Aggregate accuracy report, with per-hardness breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Corpus name.
    pub corpus: String,
    /// Total examples evaluated.
    pub total: usize,
    /// Correct predictions.
    pub correct: usize,
    /// Predictions with execution errors.
    pub execution_errors: usize,
    /// Per-hardness `(correct, total)`.
    pub by_hardness: BTreeMap<String, (usize, usize)>,
}

impl AccuracyReport {
    /// Overall execution accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {}/{} correct ({:.1}%), {} execution errors\n",
            self.corpus,
            self.correct,
            self.total,
            100.0 * self.accuracy(),
            self.execution_errors
        );
        for (h, (c, t)) in &self.by_hardness {
            out.push_str(&format!(
                "  {h:<8} {c:>4}/{t:<4} ({:.1}%)\n",
                if *t == 0 {
                    0.0
                } else {
                    100.0 * *c as f64 / *t as f64
                }
            ));
        }
        out
    }
}

/// Evaluates a batch of `(example, prediction)` pairs over a corpus.
pub fn evaluate<'a>(
    corpus: &Corpus,
    predictions: impl IntoIterator<Item = (&'a Example, &'a Query)>,
) -> AccuracyReport {
    let mut report = AccuracyReport {
        corpus: corpus.name.clone(),
        total: 0,
        correct: 0,
        execution_errors: 0,
        by_hardness: BTreeMap::new(),
    };
    for h in [
        Hardness::Easy,
        Hardness::Medium,
        Hardness::Hard,
        Hardness::Extra,
    ] {
        report.by_hardness.insert(h.label().to_string(), (0, 0));
    }
    for (example, predicted) in predictions {
        let db = corpus.database(example);
        let verdict = check_prediction(db, example, predicted);
        report.total += 1;
        let slot = report
            .by_hardness
            .get_mut(example.hardness.label())
            .expect("hardness bucket");
        slot.1 += 1;
        match verdict {
            Verdict::Correct => {
                report.correct += 1;
                slot.0 += 1;
            }
            Verdict::ExecutionError { .. } => report.execution_errors += 1,
            Verdict::WrongResult => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_spider, SpiderConfig};

    #[test]
    fn gold_predictions_score_100_percent() {
        let corpus = build_spider(&SpiderConfig::small(21));
        let pairs: Vec<_> = corpus.examples.iter().map(|e| (e, &e.gold)).collect();
        let report = evaluate(&corpus, pairs);
        assert_eq!(report.correct, report.total);
        assert_eq!(report.execution_errors, 0);
        assert!((report.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn corrupted_predictions_mostly_fail() {
        use crate::channels::corrupt;
        let corpus = build_spider(&SpiderConfig::small(22));
        let mut corrupted: Vec<(usize, fisql_sqlkit::Query)> = Vec::new();
        for (i, e) in corpus.examples.iter().enumerate() {
            if let Some(wc) = e.channels.first() {
                corrupted.push((i, corrupt(&e.intent, &wc.channel)));
            }
        }
        let pairs: Vec<_> = corrupted
            .iter()
            .map(|(i, q)| (&corpus.examples[*i], q))
            .collect();
        assert!(!pairs.is_empty());
        let report = evaluate(&corpus, pairs);
        // Some corruptions are semantically invisible on the concrete data
        // (e.g. a dropped DISTINCT on already-unique values), but most must
        // change the result.
        assert!(
            (report.correct as f64) < 0.5 * report.total as f64,
            "{}/{} corrupted predictions still 'correct'",
            report.correct,
            report.total
        );
    }

    #[test]
    fn report_renders_hardness_rows() {
        let corpus = build_spider(&SpiderConfig::small(23));
        let pairs: Vec<_> = corpus.examples.iter().map(|e| (e, &e.gold)).collect();
        let text = evaluate(&corpus, pairs).render();
        assert!(text.contains("easy"));
        assert!(text.contains("medium"));
    }
}
