//! The SPIDER-like corpus builder.

use crate::channels::{applicable_channels, DifficultyProfile};
use crate::data_gen::{populate, DataGenOptions};
use crate::example::{Corpus, Example, Hardness};
use crate::intent_gen::generate_intent;
use crate::question::render_question;
use crate::schema_gen::{generate_schema, SchemaGenOptions};
use crate::vocab::THEMES;
use fisql_engine::execute;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the SPIDER-like corpus.
#[derive(Debug, Clone)]
pub struct SpiderConfig {
    /// Number of databases (paper: "about 200").
    pub n_databases: usize,
    /// Number of examples (paper: 1034 dev questions).
    pub n_examples: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for SpiderConfig {
    fn default() -> Self {
        SpiderConfig {
            n_databases: 200,
            n_examples: 1034,
            seed: 0xF15C,
        }
    }
}

/// A smaller configuration for tests and quick runs.
impl SpiderConfig {
    /// 12 databases / 80 examples: fast but structurally identical.
    pub fn small(seed: u64) -> Self {
        SpiderConfig {
            n_databases: 12,
            n_examples: 80,
            seed,
        }
    }
}

/// Builds the SPIDER-like corpus: ~200 seeded databases over the domain
/// themes, populated with data, with intent-first generated questions
/// whose gold SQL is validated by execution.
pub fn build_spider(cfg: &SpiderConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let schema_opts = SchemaGenOptions::default();
    let data_opts = DataGenOptions::default();
    let profile = DifficultyProfile::spider();

    let mut databases = Vec::with_capacity(cfg.n_databases);
    for i in 0..cfg.n_databases {
        let theme = &THEMES[i % THEMES.len()];
        let variant = i / THEMES.len();
        let mut db = generate_schema(theme, variant, &schema_opts, &mut rng);
        populate(&mut db, theme, &data_opts, &mut rng);
        databases.push(db);
    }

    let mut examples = Vec::with_capacity(cfg.n_examples);
    let mut id = 0;
    let mut attempts = 0;
    while examples.len() < cfg.n_examples && attempts < cfg.n_examples * 20 {
        attempts += 1;
        let db_index = rng.gen_range(0..databases.len());
        let db = &databases[db_index];
        let Some(intent) = generate_intent(db, &mut rng) else {
            continue;
        };
        let gold = intent.compile();
        // Gold must execute cleanly.
        if execute(db, &gold).is_err() {
            continue;
        }
        let question = render_question(&intent, None, &mut rng);
        let channels = applicable_channels(&intent, db, &profile);
        let hardness = Hardness::classify(&intent);
        examples.push(Example {
            id,
            db_index,
            question,
            intent,
            gold,
            channels,
            hardness,
        });
        id += 1;
    }

    Corpus {
        name: "spider-like".to_string(),
        databases,
        examples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_builds_completely() {
        let corpus = build_spider(&SpiderConfig::small(7));
        assert_eq!(corpus.databases.len(), 12);
        assert_eq!(corpus.examples.len(), 80);
        for e in &corpus.examples {
            assert!(e.db_index < corpus.databases.len());
            assert!(!e.question.is_empty());
            // Gold executes on its database.
            assert!(execute(corpus.database(e), &e.gold).is_ok());
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = build_spider(&SpiderConfig::small(9));
        let b = build_spider(&SpiderConfig::small(9));
        assert_eq!(a.examples.len(), b.examples.len());
        for (x, y) in a.examples.iter().zip(&b.examples) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.gold, y.gold);
        }
    }

    #[test]
    fn hardness_mix_has_spread() {
        let corpus = build_spider(&SpiderConfig::small(11));
        let (e, m, h, _x) = corpus.hardness_mix();
        assert!(e > 0, "no easy examples");
        assert!(m > 0, "no medium examples");
        assert!(h > 0, "no hard examples");
    }

    #[test]
    fn most_examples_have_channels() {
        let corpus = build_spider(&SpiderConfig::small(13));
        let with = corpus
            .examples
            .iter()
            .filter(|e| !e.channels.is_empty())
            .count();
        assert!(
            with * 10 >= corpus.examples.len() * 7,
            "{with}/{} examples have channels",
            corpus.examples.len()
        );
    }
}
