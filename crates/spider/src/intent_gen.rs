//! Seeded intent sampling against a concrete database.
//!
//! Every generated gold query is validated by execution before an example
//! is accepted, so the corpus contains no broken gold SQL.

use crate::intent::{AggIntent, Intent, JoinStep, PredIntent, PredKind, Projection, Shape};
use fisql_engine::{DataType, Database, Table, Value};
use fisql_sqlkit::ast::{BinOp, Literal};
use rand::Rng;

/// Samples an intent against `db`. Returns `None` when the database lacks
/// the structure the sampled shape needs (caller retries).
pub fn generate_intent(db: &Database, rng: &mut impl Rng) -> Option<Intent> {
    let primary = pick_table(db, rng)?;
    let shape_roll = rng.gen_range(0..100);

    match shape_roll {
        0..=29 => gen_select(db, primary, rng),
        30..=54 => gen_agg(db, primary, rng),
        55..=69 => gen_group_by(db, primary, rng),
        70..=84 => gen_superlative(db, primary, rng),
        _ => gen_extremum(db, primary, rng),
    }
}

fn pick_table<'a>(db: &'a Database, rng: &mut impl Rng) -> Option<&'a Table> {
    let eligible: Vec<&Table> = db
        .tables
        .iter()
        .filter(|t| !t.rows.is_empty() && t.columns.len() >= 3)
        .collect();
    if eligible.is_empty() {
        return None;
    }
    Some(eligible[rng.gen_range(0..eligible.len())])
}

fn gen_select(db: &Database, primary: &Table, rng: &mut impl Rng) -> Option<Intent> {
    let mut projections = Vec::new();
    let n_cols = if rng.gen_bool(0.4) { 2 } else { 1 };
    let candidates = non_pk_columns(primary);
    if candidates.is_empty() {
        return None;
    }
    for _ in 0..n_cols {
        let c = candidates[rng.gen_range(0..candidates.len())];
        if !projections
            .iter()
            .any(|p| matches!(p, Projection::Column { column, .. } if column == c))
        {
            projections.push(Projection::Column {
                table: primary.name.clone(),
                column: c.to_string(),
            });
        }
    }
    let joins = maybe_join(db, primary, rng, 0.3);
    let preds = gen_preds(db, primary, &joins, rng, 0.75);
    let distinct = projections.len() == 1 && rng.gen_bool(0.15);
    Some(Intent {
        primary: primary.name.clone(),
        joins,
        projections,
        distinct,
        preds,
        shape: Shape::Select,
    })
}

fn gen_agg(db: &Database, primary: &Table, rng: &mut impl Rng) -> Option<Intent> {
    let agg = if rng.gen_bool(0.55) {
        AggIntent::Count
    } else {
        let nums = numeric_columns(primary);
        if nums.is_empty() {
            AggIntent::Count
        } else {
            let c = nums[rng.gen_range(0..nums.len())].to_string();
            match rng.gen_range(0..4) {
                0 => AggIntent::Sum(c),
                1 => AggIntent::Avg(c),
                2 => AggIntent::Min(c),
                _ => AggIntent::Max(c),
            }
        }
    };
    let joins = maybe_join(db, primary, rng, 0.2);
    let preds = gen_preds(db, primary, &joins, rng, 0.8);
    Some(Intent {
        primary: primary.name.clone(),
        joins,
        projections: vec![Projection::Agg(agg)],
        distinct: false,
        preds,
        shape: Shape::AggOnly,
    })
}

fn gen_group_by(db: &Database, primary: &Table, rng: &mut impl Rng) -> Option<Intent> {
    let keys = text_columns(primary);
    if keys.is_empty() {
        return gen_agg(db, primary, rng);
    }
    let key = keys[rng.gen_range(0..keys.len())].to_string();
    let having = if rng.gen_bool(0.35) {
        Some(rng.gen_range(1..=3))
    } else {
        None
    };
    Some(Intent {
        primary: primary.name.clone(),
        joins: vec![],
        projections: vec![Projection::Agg(AggIntent::Count)],
        distinct: false,
        preds: gen_preds(db, primary, &[], rng, 0.3),
        shape: Shape::GroupBy {
            key_table: primary.name.clone(),
            key,
            having_count_gt: having,
        },
    })
}

fn gen_superlative(db: &Database, primary: &Table, rng: &mut impl Rng) -> Option<Intent> {
    let nums = numeric_columns(primary);
    let texts = text_columns(primary);
    if nums.is_empty() || texts.is_empty() {
        return gen_select(db, primary, rng);
    }
    let order_col = nums[rng.gen_range(0..nums.len())].to_string();
    let proj = texts[rng.gen_range(0..texts.len())].to_string();
    let limit = if rng.gen_bool(0.8) {
        1
    } else {
        rng.gen_range(2..=5)
    };
    Some(Intent {
        primary: primary.name.clone(),
        joins: vec![],
        projections: vec![Projection::Column {
            table: primary.name.clone(),
            column: proj,
        }],
        distinct: false,
        preds: gen_preds(db, primary, &[], rng, 0.25),
        shape: Shape::Superlative {
            order_table: primary.name.clone(),
            order_col,
            desc: rng.gen_bool(0.5),
            limit,
        },
    })
}

fn gen_extremum(db: &Database, primary: &Table, rng: &mut impl Rng) -> Option<Intent> {
    let nums = numeric_columns(primary);
    let texts = text_columns(primary);
    if nums.is_empty() || texts.is_empty() {
        return gen_agg(db, primary, rng);
    }
    let column = nums[rng.gen_range(0..nums.len())].to_string();
    let n_proj = if rng.gen_bool(0.3) { 2 } else { 1 };
    let mut projections = Vec::new();
    for _ in 0..n_proj {
        let c = texts[rng.gen_range(0..texts.len())].to_string();
        if !projections
            .iter()
            .any(|p| matches!(p, Projection::Column { column, .. } if *column == c))
        {
            projections.push(Projection::Column {
                table: primary.name.clone(),
                column: c,
            });
        }
    }
    Some(Intent {
        primary: primary.name.clone(),
        joins: vec![],
        projections,
        distinct: false,
        preds: vec![],
        shape: Shape::Extremum {
            column,
            max: rng.gen_bool(0.5),
        },
    })
}

/// With probability `p`, adds one FK join step from the primary table
/// (either direction along a foreign key).
fn maybe_join(db: &Database, primary: &Table, rng: &mut impl Rng, p: f64) -> Vec<JoinStep> {
    if !rng.gen_bool(p) {
        return Vec::new();
    }
    let mut options: Vec<JoinStep> = Vec::new();
    // Child direction: primary has an FK to another table.
    for fk in &primary.foreign_keys {
        if let Some(target) = db.table(&fk.ref_table) {
            options.push(JoinStep {
                table: target.name.clone(),
                left_table: primary.name.clone(),
                left_col: primary.columns[fk.column].name.clone(),
                right_col: target.columns[fk.ref_column].name.clone(),
            });
        }
    }
    // Parent direction: another table has an FK to primary.
    for t in &db.tables {
        if t.name == primary.name {
            continue;
        }
        for fk in &t.foreign_keys {
            if fk.ref_table.eq_ignore_ascii_case(&primary.name) {
                options.push(JoinStep {
                    table: t.name.clone(),
                    left_table: primary.name.clone(),
                    left_col: primary.columns[fk.ref_column].name.clone(),
                    right_col: t.columns[fk.column].name.clone(),
                });
            }
        }
    }
    if options.is_empty() {
        return Vec::new();
    }
    vec![options.swap_remove(rng.gen_range(0..options.len()))]
}

/// Samples 0-2 predicates over the primary (or a joined) table, with
/// literals drawn from actual stored data so filters are non-degenerate.
fn gen_preds(
    db: &Database,
    primary: &Table,
    joins: &[JoinStep],
    rng: &mut impl Rng,
    p_any: f64,
) -> Vec<PredIntent> {
    let mut preds = Vec::new();
    if !rng.gen_bool(p_any) {
        return preds;
    }
    let n = if rng.gen_bool(0.25) { 2 } else { 1 };
    // Candidate (table, column, dtype) triples.
    let mut candidates: Vec<(&Table, usize)> = Vec::new();
    for (ci, c) in primary.columns.iter().enumerate() {
        if ci != 0 && !c.name.ends_with("_id") {
            candidates.push((primary, ci));
        }
    }
    for j in joins {
        if let Some(t) = db.table(&j.table) {
            for (ci, c) in t.columns.iter().enumerate() {
                if ci != 0 && !c.name.ends_with("_id") {
                    candidates.push((t, ci));
                }
            }
        }
    }
    if candidates.is_empty() {
        return preds;
    }
    for _ in 0..n {
        let (t, ci) = candidates[rng.gen_range(0..candidates.len())];
        let col = &t.columns[ci];
        if preds
            .iter()
            .any(|p: &PredIntent| p.column == col.name && p.table == t.name)
        {
            continue;
        }
        let kind = match col.dtype {
            DataType::Date => PredKind::MonthWindow {
                year: 2024,
                month: rng.gen_range(1..=6),
            },
            DataType::Int => {
                let v = sample_value(t, ci, rng).and_then(|v| match v {
                    Value::Int(n) => Some(n),
                    _ => None,
                });
                let Some(v) = v else { continue };
                let op = [BinOp::Gt, BinOp::Lt, BinOp::GtEq, BinOp::Eq][rng.gen_range(0..4)];
                PredKind::Cmp {
                    op,
                    value: Literal::Number(v),
                }
            }
            DataType::Float => {
                let v = sample_value(t, ci, rng).and_then(|v| v.as_f64());
                let Some(v) = v else { continue };
                PredKind::Cmp {
                    op: if rng.gen_bool(0.5) {
                        BinOp::Gt
                    } else {
                        BinOp::Lt
                    },
                    value: Literal::Float((v * 100.0).round() / 100.0),
                }
            }
            DataType::Text => {
                let v = sample_value(t, ci, rng).and_then(|v| match v {
                    Value::Text(s) => Some(s),
                    _ => None,
                });
                let Some(s) = v else { continue };
                if rng.gen_bool(0.25) && s.len() >= 3 {
                    let word = s.split_whitespace().next().unwrap_or(&s).to_string();
                    PredKind::Like { word }
                } else {
                    PredKind::Cmp {
                        op: BinOp::Eq,
                        value: Literal::String(s),
                    }
                }
            }
            DataType::Bool => continue,
        };
        preds.push(PredIntent {
            table: t.name.clone(),
            column: col.name.clone(),
            kind,
        });
    }
    preds
}

fn sample_value(t: &Table, ci: usize, rng: &mut impl Rng) -> Option<Value> {
    for _ in 0..8 {
        let row = &t.rows[rng.gen_range(0..t.rows.len())];
        if !row[ci].is_null() {
            return Some(row[ci].clone());
        }
    }
    None
}

fn non_pk_columns(t: &Table) -> Vec<&str> {
    t.columns
        .iter()
        .enumerate()
        .filter(|(i, c)| *i != 0 && !c.name.ends_with("_id"))
        .map(|(_, c)| c.name.as_str())
        .collect()
}

fn numeric_columns(t: &Table) -> Vec<&str> {
    t.columns
        .iter()
        .enumerate()
        .filter(|(i, c)| *i != 0 && c.dtype.is_numeric() && !c.name.ends_with("_id"))
        .map(|(_, c)| c.name.as_str())
        .collect()
}

fn text_columns(t: &Table) -> Vec<&str> {
    t.columns
        .iter()
        .filter(|c| c.dtype == DataType::Text)
        .map(|c| c.name.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_gen::{populate, DataGenOptions};
    use crate::schema_gen::{generate_schema, SchemaGenOptions};
    use crate::vocab::THEMES;
    use fisql_engine::execute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_db() -> Database {
        let mut rng = StdRng::seed_from_u64(99);
        let mut db = generate_schema(&THEMES[2], 0, &SchemaGenOptions::default(), &mut rng);
        populate(&mut db, &THEMES[2], &DataGenOptions::default(), &mut rng);
        db
    }

    #[test]
    fn generated_intents_compile_and_execute() {
        let db = sample_db();
        let mut rng = StdRng::seed_from_u64(1);
        let mut executed = 0;
        for _ in 0..200 {
            if let Some(intent) = generate_intent(&db, &mut rng) {
                let gold = intent.compile();
                let result = execute(&db, &gold);
                assert!(
                    result.is_ok(),
                    "gold failed: {}\n{:?}",
                    fisql_sqlkit::print_query(&gold),
                    result.err()
                );
                executed += 1;
            }
        }
        assert!(executed > 150, "only {executed} intents generated");
    }

    #[test]
    fn shape_variety_is_present() {
        let db = sample_db();
        let mut rng = StdRng::seed_from_u64(2);
        let mut shapes = std::collections::HashSet::new();
        for _ in 0..300 {
            if let Some(intent) = generate_intent(&db, &mut rng) {
                shapes.insert(match intent.shape {
                    Shape::Select => "select",
                    Shape::AggOnly => "agg",
                    Shape::GroupBy { .. } => "group",
                    Shape::Superlative { .. } => "superlative",
                    Shape::Extremum { .. } => "extremum",
                });
            }
        }
        assert!(shapes.len() >= 4, "shapes seen: {shapes:?}");
    }

    #[test]
    fn joins_appear_sometimes() {
        let db = sample_db();
        let mut rng = StdRng::seed_from_u64(3);
        let with_joins = (0..300)
            .filter_map(|_| generate_intent(&db, &mut rng))
            .filter(|i| !i.joins.is_empty())
            .count();
        assert!(with_joins > 10, "joins: {with_joins}");
    }

    #[test]
    fn predicates_use_real_data_values() {
        let db = sample_db();
        let mut rng = StdRng::seed_from_u64(4);
        let mut eq_preds = 0;
        for _ in 0..300 {
            let Some(intent) = generate_intent(&db, &mut rng) else {
                continue;
            };
            for p in &intent.preds {
                if let PredKind::Cmp {
                    op: BinOp::Eq,
                    value: Literal::String(s),
                } = &p.kind
                {
                    // The value exists in the column it filters.
                    let t = db.table(&p.table).unwrap();
                    let ci = t.column_index(&p.column).unwrap();
                    assert!(
                        t.rows.iter().any(|r| r[ci] == Value::Text(s.clone())),
                        "value {s} not found in {}.{}",
                        p.table,
                        p.column
                    );
                    eq_preds += 1;
                }
            }
        }
        assert!(eq_preds > 5);
    }
}
