//! Golden tests for the paper's prompt skeletons (Figures 1, 5, 6 and the
//! router/rewrite prompts). The rendered prompts are the *interface* the
//! paper defines; these tests freeze their exact shape so a refactor
//! cannot silently drift from the published format.

use fisql_engine::{Column, DataType, Database, Table};
use fisql_llm::{prompt, Demonstration};
use fisql_sqlkit::OpClass;

fn demo_db() -> Database {
    let mut db = Database::new("demo");
    let mut t = Table::new(
        "hkg_dim_segment",
        vec![
            Column::new("segment_id", DataType::Int),
            Column::new("segment_name", DataType::Text),
            Column::new("createdTime", DataType::Date),
        ],
    );
    t.primary_key = Some(0);
    db.add_table(t);
    db
}

#[test]
fn figure1_zero_shot_golden() {
    let p = prompt::zero_shot_prompt(&demo_db(), "how many audiences were created in January?");
    let expected = "\
You are an expert SQL assistant. Given the database schema below, write a single SQL query that answers the user question. Return only the SQL query.

Schema:
CREATE TABLE hkg_dim_segment (
  segment_id INT PRIMARY KEY,
  segment_name TEXT,
  createdTime DATE
);

Question: how many audiences were created in January?
Query:";
    assert_eq!(p, expected);
}

#[test]
fn few_shot_prompt_golden() {
    let demo = Demonstration {
        question: "how many segments are there?".into(),
        sql: "SELECT COUNT(*) FROM hkg_dim_segment".into(),
    };
    let p = prompt::few_shot_prompt(&demo_db(), &[&demo], "count active segments");
    assert!(p.contains("Here are some examples:\n"));
    assert!(p.contains(
        "Question: how many segments are there?\nQuery: SELECT COUNT(*) FROM hkg_dim_segment\n"
    ));
    assert!(p.ends_with("Question: count active segments\nQuery:"));
}

#[test]
fn figure5_feedback_demo_golden() {
    let d = prompt::feedback_demo(
        "how many audiences were created in January?",
        "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment WHERE createdTime >= '2023-01-01' and createdTime < '2023-02-01'",
        "we are in 2024",
        "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment WHERE createdTime >= '2024-01-01' and createdTime < '2024-02-01'",
    );
    let expected = "\
Question: how many audiences were created in January?
Query: SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment WHERE createdTime >= '2023-01-01' and createdTime < '2023-02-01'
The SQL query you have generated has received the following feedback: we are in 2024
Taking into account the feedback, please rewrite the SQL query.
Query: SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment WHERE createdTime >= '2024-01-01' and createdTime < '2024-02-01'
";
    assert_eq!(d, expected);
}

#[test]
fn figure6_feedback_prompt_golden_tail() {
    let p = prompt::feedback_prompt(
        &demo_db(),
        &[],
        &[],
        "how many audiences were created in January?",
        "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdTime >= '2023-01-01'",
        "we are in 2024",
    );
    // The Figure 6 tail, verbatim (italicized additions in the paper).
    let expected_tail = "\
Here is the question you need to answer:
Question: how many audiences were created in January?
Query: SELECT COUNT(*) FROM hkg_dim_segment WHERE createdTime >= '2023-01-01'
The SQL query you have generated has received the following feedback: we are in 2024
Taking into account the feedback, please rewrite the SQL query.
Query:";
    assert!(
        p.ends_with(expected_tail),
        "prompt tail drifted from Figure 6:\n{p}"
    );
}

#[test]
fn feedback_prompt_includes_routed_demos_between_schema_and_question() {
    let type_demos = prompt::type_demonstrations(OpClass::Edit);
    let p = prompt::feedback_prompt(
        &demo_db(),
        &[],
        &type_demos,
        "q",
        "SELECT 1",
        "we are in 2024",
    );
    let schema_pos = p.find("CREATE TABLE").unwrap();
    let demo_pos = p.find("Provide song name instead of singer name").unwrap();
    let question_pos = p.find("Here is the question you need to answer").unwrap();
    assert!(schema_pos < demo_pos && demo_pos < question_pos);
}

#[test]
fn router_prompt_golden() {
    let p = prompt::router_prompt("change to 2024");
    let expected = "\
Classify the user feedback on a SQL query into one of three operation types: Add (the feedback suggests adding a SQL operation), Remove (the feedback suggests removing a SQL operation), or Edit (the feedback updates arguments of an existing SQL operation).

Feedback: order the names in ascending order.
Type: Add

Feedback: do not give descriptions
Type: Remove

Feedback: we are in 2024
Type: Edit

Feedback: change to 2024
Type:";
    assert_eq!(p, expected);
}

#[test]
fn rewrite_prompt_golden() {
    let p = prompt::rewrite_prompt(
        "how many audiences were created in January?",
        "we are in 2024",
    );
    assert!(p.starts_with("Rewrite the user's question"));
    assert!(p.contains("Rewritten: how many audiences were created in January 2024?"));
    assert!(p.ends_with("Rewritten:"));
}

#[test]
fn type_demonstrations_are_figure5_formatted() {
    for class in [OpClass::Add, OpClass::Remove, OpClass::Edit] {
        for d in prompt::type_demonstrations(class) {
            assert!(d.starts_with("Question: "), "{d}");
            assert!(d.contains("\nQuery: "));
            assert!(d.contains("has received the following feedback: "), "{d}");
            assert!(d.contains("Taking into account the feedback, please rewrite the SQL query."));
        }
    }
}
