//! Router-vs-realized agreement accounting.
//!
//! The feedback router predicts an edit class (Add / Remove / Edit /
//! Rewrite) from the user's feedback text; the conformance gate in
//! `fisql-core` later diffs the regenerated candidate against the
//! previous query to see which classes were *actually realized*. These
//! counters aggregate how often the two agree — the telemetry behind the
//! conformance columns of the correction report.

use fisql_sqlkit::OpClass;
use serde::{Deserialize, Serialize};

/// Scores how well a candidate's realized edit classes line up with the
/// routed feedback class: `2` when the *dominant* (first) realized class
/// is the routed one, `1` when the routed class appears anywhere in the
/// realized set, `0` otherwise.
///
/// Used by the search-refine strategy as one term of its static
/// closeness score; kept integer-valued so scores stay exactly
/// reproducible across platforms.
pub fn routing_alignment(routed: OpClass, realized: &[OpClass]) -> i64 {
    match realized.first() {
        Some(&first) if first == routed => 2,
        _ if realized.contains(&routed) => 1,
        _ => 0,
    }
}

/// Aggregate counters for router-vs-realized conformance checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgreementStats {
    /// Conformance checks performed (one per gated candidate).
    pub checks: u64,
    /// Checks where the realized classes included the routed class on
    /// the first candidate.
    pub agreements: u64,
    /// Conformance re-prompts issued (one per first-candidate
    /// disagreement, by design).
    pub retries: u64,
    /// Re-prompts whose second candidate conformed.
    pub recovered: u64,
}

impl AgreementStats {
    /// Records one conformance check.
    pub fn record(&mut self, agreed: bool, retried: bool, agreed_after_retry: bool) {
        self.checks += 1;
        self.agreements += u64::from(agreed);
        self.retries += u64::from(retried);
        self.recovered += u64::from(retried && agreed_after_retry);
    }

    /// Accumulates another set of counters (sharded-runner merge).
    pub fn merge(&mut self, other: &AgreementStats) {
        self.checks += other.checks;
        self.agreements += other.agreements;
        self.retries += other.retries;
        self.recovered += other.recovered;
    }

    /// Checks whose first candidate disagreed.
    pub fn disagreements(&self) -> u64 {
        self.checks - self.agreements
    }

    /// First-candidate agreement as a fraction of all checks; `0.0` when
    /// no checks ran.
    pub fn agreement_rate(&self) -> f64 {
        if self.checks == 0 {
            0.0
        } else {
            self.agreements as f64 / self.checks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = AgreementStats::default();
        a.record(true, false, true);
        a.record(false, true, true);
        a.record(false, true, false);
        assert_eq!(a.checks, 3);
        assert_eq!(a.agreements, 1);
        assert_eq!(a.disagreements(), 2);
        assert_eq!(a.retries, 2);
        assert_eq!(a.recovered, 1);

        let mut b = AgreementStats::default();
        b.record(true, false, true);
        b.merge(&a);
        assert_eq!(b.checks, 4);
        assert_eq!(b.agreements, 2);
        assert!((b.agreement_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_rate_is_zero() {
        assert_eq!(AgreementStats::default().agreement_rate(), 0.0);
        assert_eq!(AgreementStats::default().disagreements(), 0);
    }

    #[test]
    fn routing_alignment_tiers() {
        use OpClass::{Add, Edit, Remove};
        assert_eq!(routing_alignment(Edit, &[Edit, Add]), 2);
        assert_eq!(routing_alignment(Edit, &[Add, Edit]), 1);
        assert_eq!(routing_alignment(Remove, &[Add, Edit]), 0);
        assert_eq!(routing_alignment(Edit, &[]), 0);
    }
}
