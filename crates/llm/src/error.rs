//! Typed backend failures.
//!
//! The paper's assistant sits on a remote `gpt-3.5-turbo` endpoint; a
//! production deployment of the pipeline has to survive that endpoint
//! timing out, rate-limiting, or returning garbage. [`BackendError`] is
//! the honest vocabulary for those outcomes, consumed by the retry
//! middleware ([`crate::resilience`]) and, past the retry budget, by the
//! correction loop's graceful-degradation path in `fisql-core`.

use std::fmt;

/// Why one backend call failed.
///
/// The first four variants are *call-level* outcomes a single attempt can
/// produce (and the fault injector [`crate::faults::FaultyBackend`] can
/// synthesize); [`BackendError::Exhausted`] is the *aggregate* outcome the
/// resilience middleware reports once its attempt budget, session
/// deadline, or circuit breaker gave up — carrying the last call-level
/// error as its chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The call exceeded its wall-clock budget.
    Timeout {
        /// How long the attempt ran before being cut off, milliseconds.
        elapsed_ms: u64,
    },
    /// The endpoint asked us to back off.
    RateLimited {
        /// Server-provided retry hint, milliseconds.
        retry_after_ms: u64,
    },
    /// A transient transport/server fault (connection reset, 5xx, …).
    Transient {
        /// Human-readable detail.
        detail: String,
    },
    /// The backend answered, but the payload was unusable (unparsable
    /// SQL, empty completion, refused instruction).
    MalformedOutput {
        /// Human-readable detail.
        detail: String,
    },
    /// The resilience layer gave up: attempt budget spent, session
    /// deadline passed, or circuit breaker open.
    Exhausted {
        /// Attempts actually made (0 when the breaker rejected the call
        /// before any attempt).
        attempts: u32,
        /// Why the layer stopped retrying.
        reason: ExhaustedReason,
        /// The last call-level error observed, if any (the error chain).
        last: Option<Box<BackendError>>,
    },
}

/// Why the resilience layer stopped retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustedReason {
    /// Every budgeted attempt failed.
    AttemptBudget,
    /// The per-session deadline passed (counting backoff time).
    SessionDeadline,
    /// The circuit breaker was open and rejected the call outright.
    BreakerOpen,
}

impl BackendError {
    /// Whether a retry could plausibly change the outcome. `Exhausted` is
    /// terminal by construction.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, BackendError::Exhausted { .. })
    }

    /// Server-suggested minimum delay before the next attempt,
    /// milliseconds (only rate-limit responses carry one).
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            BackendError::RateLimited { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }

    /// Renders the error and its chain on one line, outermost first —
    /// what degradation events record in transcripts and reports.
    pub fn chain(&self) -> String {
        let mut out = self.to_string();
        let mut cur: &dyn std::error::Error = self;
        while let Some(src) = cur.source() {
            out.push_str(": ");
            out.push_str(&src.to_string());
            cur = src;
        }
        out
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Timeout { elapsed_ms } => {
                write!(f, "backend call timed out after {elapsed_ms} ms")
            }
            BackendError::RateLimited { retry_after_ms } => {
                write!(f, "backend rate-limited (retry after {retry_after_ms} ms)")
            }
            BackendError::Transient { detail } => write!(f, "transient backend fault: {detail}"),
            BackendError::MalformedOutput { detail } => {
                write!(f, "backend returned malformed output: {detail}")
            }
            BackendError::Exhausted {
                attempts, reason, ..
            } => {
                let why = match reason {
                    ExhaustedReason::AttemptBudget => "attempt budget spent",
                    ExhaustedReason::SessionDeadline => "session deadline passed",
                    ExhaustedReason::BreakerOpen => "circuit breaker open",
                };
                write!(f, "backend exhausted after {attempts} attempt(s) ({why})")
            }
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Exhausted {
                last: Some(last), ..
            } => Some(last.as_ref()),
            _ => None,
        }
    }
}

/// Result alias for fallible backend calls.
pub type BackendResult<T> = Result<T, BackendError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_chain_render_the_full_story() {
        let e = BackendError::Exhausted {
            attempts: 3,
            reason: ExhaustedReason::AttemptBudget,
            last: Some(Box::new(BackendError::RateLimited {
                retry_after_ms: 250,
            })),
        };
        let chain = e.chain();
        assert!(chain.contains("exhausted after 3 attempt(s)"), "{chain}");
        assert!(chain.contains("retry after 250 ms"), "{chain}");
    }

    #[test]
    fn retryability_and_hints() {
        assert!(BackendError::Timeout { elapsed_ms: 10 }.is_retryable());
        assert!(BackendError::MalformedOutput {
            detail: "empty".into()
        }
        .is_retryable());
        let exhausted = BackendError::Exhausted {
            attempts: 1,
            reason: ExhaustedReason::BreakerOpen,
            last: None,
        };
        assert!(!exhausted.is_retryable());
        assert_eq!(
            BackendError::RateLimited { retry_after_ms: 42 }.retry_after_ms(),
            Some(42)
        );
        assert_eq!(exhausted.retry_after_ms(), None);
    }
}
