//! Calibration constants for the simulated LLM.
//!
//! Every probability in the simulation lives here, in one documented
//! struct, so the ablation benches can sweep them and DESIGN.md §7 can
//! point at a single source of truth. Defaults are tuned so that the
//! *mechanisms* (channel firing, demonstration damping, feedback
//! resolution) reproduce the paper's headline numbers:
//!
//! - Figure 2: zero-shot execution accuracy ≈ 68.6% on SPIDER-like,
//!   ≈ 24% on AEP-like;
//! - §4.1: roughly 243/1034 SPIDER errors;
//! - Tables 2-3 / Figure 8 correction rates (see `fisql-core`).

use serde::{Deserialize, Serialize};

/// The simulated LLM's behavioural constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Multiplier from a channel's difficulty weight to its firing
    /// probability in a zero-/few-shot generation.
    pub base_fire_rate: f64,
    /// Upper clamp on any single channel's firing probability.
    pub max_fire_prob: f64,
    /// Multiplicative damping applied per in-context demonstration
    /// (demonstrations ground the model, reducing misreadings).
    pub few_shot_damping: f64,
    /// Demonstrations beyond this count stop helping.
    pub few_shot_cap: usize,
    /// Residual firing probability for a channel whose resolution is
    /// spelled out in the prompt (e.g. the rewritten question names the
    /// correct year explicitly).
    pub resolved_residual: f64,
    /// Probability the feedback-type router misclassifies an utterance.
    pub router_noise: f64,
    /// Probability that a feedback edit is applied *correctly* given
    /// routed (type-matched) demonstrations in context.
    pub edit_apply_with_routing: f64,
    /// Probability that a feedback edit is applied correctly *without*
    /// routed demonstrations (the FISQL(−Routing) ablation).
    pub edit_apply_without_routing: f64,
    /// Probability that a hint present in a *rewritten question* actually
    /// disambiguates regeneration (the Query Rewrite baseline). Direct
    /// feedback editing does not pay this discount: FISQL revises the
    /// previous SQL in context, whereas a paraphrased question is just
    /// another question the model can misread again.
    pub rewrite_hint_efficacy: f64,
    /// Channel-refire multiplier during rewrite regeneration: the merged
    /// question is longer and clunkier than the original, and the model
    /// re-parses it from scratch.
    pub rewrite_refire_boost: f64,
    /// Probability that rewriting re-rolls a channel's sticky latent — a
    /// genuinely fresh read of that aspect of the question.
    pub rewrite_refresh: f64,
    /// Additive bonus to the edit-apply success probability when the
    /// routed demonstrations were *dynamically selected* for this
    /// feedback (the paper's §5 future-work extension): more relevant
    /// demonstrations ground the revision better.
    pub dynamic_demo_bonus: f64,
    /// Multiplier on apply success for *moderate* edits (column swaps,
    /// generic predicate rewrites) — revisions the LLM gets mostly right
    /// but not as reliably as literal substitutions.
    pub moderate_edit_reliability: f64,
    /// Multiplier on apply success for *structural* edits (ordering,
    /// grouping, joins, limits) — the revisions GPT-class models fumble
    /// most often.
    pub structural_edit_reliability: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            base_fire_rate: 0.30,
            max_fire_prob: 0.92,
            few_shot_damping: 0.93,
            few_shot_cap: 5,
            resolved_residual: 0.06,
            router_noise: 0.06,
            edit_apply_with_routing: 0.89,
            edit_apply_without_routing: 0.86,
            rewrite_hint_efficacy: 0.40,
            rewrite_refire_boost: 1.40,
            rewrite_refresh: 0.08,
            dynamic_demo_bonus: 0.05,
            moderate_edit_reliability: 0.68,
            structural_edit_reliability: 0.52,
        }
    }
}

impl Calibration {
    /// Firing probability for a channel of difficulty `weight`, with
    /// `demos` demonstrations in context, optionally `resolved` by an
    /// explicit hint.
    pub fn fire_prob(&self, weight: f64, demos: usize, resolved: bool) -> f64 {
        if resolved {
            return self.resolved_residual;
        }
        let damping = self
            .few_shot_damping
            .powi(demos.min(self.few_shot_cap) as i32);
        (weight * self.base_fire_rate * damping).min(self.max_fire_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_prob_monotone_in_weight() {
        let c = Calibration::default();
        assert!(c.fire_prob(2.0, 0, false) > c.fire_prob(1.0, 0, false));
    }

    #[test]
    fn demos_reduce_fire_prob() {
        let c = Calibration::default();
        assert!(c.fire_prob(1.0, 5, false) < c.fire_prob(1.0, 0, false));
        // Cap: beyond few_shot_cap no extra damping.
        assert_eq!(c.fire_prob(1.0, 5, false), c.fire_prob(1.0, 50, false));
    }

    #[test]
    fn resolution_dominates() {
        let c = Calibration::default();
        assert_eq!(c.fire_prob(10.0, 0, true), c.resolved_residual);
    }

    #[test]
    fn clamp_applies() {
        let c = Calibration::default();
        assert!(c.fire_prob(1000.0, 0, false) <= c.max_fire_prob);
    }
}
