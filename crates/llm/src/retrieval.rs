//! Demonstration store for retrieval-augmented generation.
//!
//! Embeddings are memoized through the process-wide concurrent cache
//! ([`crate::cache::embed_cached`]): repeated retrievals for the same
//! question — common when several strategies sweep the same corpus, or
//! when the parallel runner fans a replay out across threads — skip the
//! re-embedding entirely. Cached and uncached retrieval return identical
//! demonstrations (the cache stores exact computed vectors).

use crate::cache::embed_cached;
use crate::embedding::Embedding;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One (question, SQL) demonstration pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Demonstration {
    /// Natural-language question.
    pub question: String,
    /// Its SQL answer, as text.
    pub sql: String,
}

/// An embedded demonstration pool with top-k cosine retrieval.
#[derive(Debug, Clone)]
pub struct DemoStore {
    demos: Vec<Demonstration>,
    embeddings: Vec<Arc<Embedding>>,
}

impl DemoStore {
    /// Builds a store from demonstrations, embedding each question
    /// (through the shared embedding cache, so rebuilding a store over
    /// the same corpus is nearly free).
    pub fn new(demos: Vec<Demonstration>) -> Self {
        let embeddings = demos.iter().map(|d| embed_cached(&d.question)).collect();
        DemoStore { demos, embeddings }
    }

    /// Number of stored demonstrations.
    pub fn len(&self) -> usize {
        self.demos.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.demos.is_empty()
    }

    /// Returns the `k` demonstrations most similar to `query`, best
    /// first. Ties break by insertion order (stable).
    pub fn retrieve(&self, query: &str, k: usize) -> Vec<&Demonstration> {
        if k == 0 || self.demos.is_empty() {
            return Vec::new();
        }
        let q = embed_cached(query);
        let mut scored: Vec<(usize, f32)> = self
            .embeddings
            .iter()
            .enumerate()
            .map(|(i, e)| (i, q.cosine(e.as_ref())))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored
            .into_iter()
            .take(k)
            .map(|(i, _)| &self.demos[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DemoStore {
        DemoStore::new(vec![
            Demonstration {
                question: "how many singers are there".into(),
                sql: "SELECT COUNT(*) FROM singer".into(),
            },
            Demonstration {
                question: "average age of all singers".into(),
                sql: "SELECT AVG(age) FROM singer".into(),
            },
            Demonstration {
                question: "list flights departing from Paris".into(),
                sql: "SELECT * FROM flight WHERE source = 'Paris'".into(),
            },
        ])
    }

    #[test]
    fn retrieves_most_similar_first() {
        let s = store();
        let got = s.retrieve("how many flights are there", 2);
        assert_eq!(got.len(), 2);
        // Both the count demo and the flight demo should beat the AVG one.
        let qs: Vec<&str> = got.iter().map(|d| d.question.as_str()).collect();
        assert!(qs.iter().any(|q| q.contains("how many")));
    }

    #[test]
    fn k_zero_returns_nothing() {
        assert!(store().retrieve("anything", 0).is_empty());
    }

    #[test]
    fn k_larger_than_pool_returns_all() {
        assert_eq!(store().retrieve("singers", 10).len(), 3);
    }

    #[test]
    fn cached_retrieval_matches_uncached_ranking() {
        // A cold retrieve computes the query embedding; a warm retrieve
        // serves it from the shared cache. Both must return the same
        // demonstrations in the same order, and both must agree with a
        // from-scratch cosine ranking.
        let s = store();
        let query = "how many flights depart from Paris";
        let cold: Vec<Demonstration> = s.retrieve(query, 3).into_iter().cloned().collect();
        let warm: Vec<Demonstration> = s.retrieve(query, 3).into_iter().cloned().collect();
        assert_eq!(cold, warm);

        let q = Embedding::embed(query);
        let mut reference: Vec<(usize, f32)> = s
            .demos
            .iter()
            .enumerate()
            .map(|(i, d)| (i, q.cosine(&Embedding::embed(&d.question))))
            .collect();
        reference.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let expected: Vec<Demonstration> = reference
            .into_iter()
            .take(3)
            .map(|(i, _)| s.demos[i].clone())
            .collect();
        assert_eq!(cold, expected);
    }

    #[test]
    fn empty_store_is_safe() {
        let s = DemoStore::new(vec![]);
        assert!(s.is_empty());
        assert!(s.retrieve("q", 3).is_empty());
    }
}
