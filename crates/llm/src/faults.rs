//! Deterministic fault injection for chaos runs.
//!
//! [`FaultyBackend`] wraps any [`FallibleLanguageModel`] and makes a
//! configurable fraction of calls fail with synthetic
//! [`BackendError`]s — timeouts, rate limits, transient transport faults,
//! malformed completions — plus optional *outage windows* during which
//! every call fails regardless of rate.
//!
//! # Replayability
//!
//! The whole point of this module is that chaos runs are **replayable
//! bit-for-bit at any worker count**. The fault decision for a call is a
//! pure hash of
//!
//! ```text
//! (config seed, role, call arguments, attempt index)
//! ```
//!
//! exactly like [`SimLlm`](crate::SimLlm) derives its sampling from
//! `(seed, example_id, salt)` — never from a shared mutable call counter,
//! which would make the schedule depend on thread interleaving. The
//! *attempt index* is the one piece of context the arguments cannot
//! carry: the retry middleware publishes it through [`call_attempt`]
//! (a thread-local, sound because one logical call — retries included —
//! always runs on one thread), so a retried call re-rolls its fault while
//! a replayed run reproduces it.
//!
//! The two calibration roles (`edit_success_prob`,
//! `edit_complexity_factor`) pass through un-faulted: they are
//! client-side lookup tables, not remote calls.

use crate::backend::FallibleLanguageModel;
use crate::error::{BackendError, BackendResult};
use crate::model::{GenRequest, Generation};
use fisql_sqlkit::{EditOp, OpClass, Query};
use std::cell::Cell;

/// Environment variable carrying a uniform fault rate (`0.0..=1.0`) for
/// chaos CI jobs; see [`FaultConfig::from_env`].
pub const FAULT_RATE_ENV: &str = "FISQL_FAULT_RATE";

/// Per-error-kind injection rates and outage windows.
///
/// Rates are per *attempt* probabilities in `[0, 1]`; their sum is the
/// overall per-attempt fault rate. An outage window forces every call for
/// an affected example to fail with [`BackendError::Transient`] on every
/// attempt — modelling a backend that is *down*, not merely flaky — so
/// retry budgets genuinely exhaust and degradation paths run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed the fault schedule derives from (independent of the model
    /// seed, so chaos and model behaviour decorrelate).
    pub seed: u64,
    /// Probability of a synthetic timeout per attempt.
    pub timeout: f64,
    /// Probability of a synthetic rate-limit per attempt.
    pub rate_limited: f64,
    /// Probability of a synthetic transient transport fault per attempt.
    pub transient: f64,
    /// Probability of a synthetic malformed completion per attempt.
    pub malformed: f64,
    /// Probability of an injected *panic* per attempt — modelling a bug
    /// in the backend client rather than a failure of the remote service.
    /// Panics are not [`BackendError`]s: they unwind through the whole
    /// correction pipeline and are caught only by the evaluation runner's
    /// per-case isolation boundary, which records the case as crashed.
    /// Excluded from [`FaultConfig::uniform`] and from
    /// [`FaultConfig::total_rate`] because it is not an error *kind* the
    /// retry middleware can see.
    pub panic: f64,
    /// Outage period in example-id space: every `outage_period`-th block
    /// of example ids enters an outage. `0` disables outages.
    pub outage_period: u64,
    /// Width of each outage window (`example_id % outage_period <
    /// outage_width` is in outage).
    pub outage_width: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA17,
            timeout: 0.0,
            rate_limited: 0.0,
            transient: 0.0,
            malformed: 0.0,
            panic: 0.0,
            outage_period: 0,
            outage_width: 0,
        }
    }
}

impl FaultConfig {
    /// A config spreading `rate` evenly across the four error kinds, with
    /// no outage windows.
    pub fn uniform(rate: f64) -> FaultConfig {
        let per_kind = (rate / 4.0).clamp(0.0, 0.25);
        FaultConfig {
            timeout: per_kind,
            rate_limited: per_kind,
            transient: per_kind,
            malformed: per_kind,
            ..FaultConfig::default()
        }
    }

    /// Reads [`FAULT_RATE_ENV`] into a uniform config; `None` when unset,
    /// empty, unparsable, or zero.
    pub fn from_env() -> Option<FaultConfig> {
        let rate: f64 = std::env::var(FAULT_RATE_ENV).ok()?.trim().parse().ok()?;
        (rate > 0.0).then(|| FaultConfig::uniform(rate))
    }

    /// The overall per-attempt fault rate (outside outage windows).
    pub fn total_rate(&self) -> f64 {
        self.timeout + self.rate_limited + self.transient + self.malformed
    }

    /// Whether `example_id` falls inside an outage window.
    pub fn in_outage(&self, example_id: u64) -> bool {
        self.outage_period > 0 && example_id % self.outage_period < self.outage_width
    }
}

thread_local! {
    /// The current attempt index for the in-flight backend call, set by
    /// the retry middleware. 0 = first attempt.
    static ATTEMPT: Cell<u32> = const { Cell::new(0) };
}

/// Runs `f` with the thread's call-attempt index set to `attempt`, then
/// restores the previous value. The resilience middleware wraps each
/// retry in this so the fault schedule can distinguish attempts while
/// staying a pure function of per-call context.
pub fn with_attempt<R>(attempt: u32, f: impl FnOnce() -> R) -> R {
    ATTEMPT.with(|a| {
        let prev = a.replace(attempt);
        let out = f();
        a.set(prev);
        out
    })
}

/// The attempt index of the in-flight backend call on this thread
/// (0 outside any [`with_attempt`] scope, i.e. a first attempt).
pub fn call_attempt() -> u32 {
    ATTEMPT.with(|a| a.get())
}

/// The six backend roles, as salt for the fault schedule so the same
/// example's generate and classify calls fault independently.
#[derive(Debug, Clone, Copy)]
enum Role {
    Generate = 1,
    Classify = 2,
    Rewrite = 3,
    ApplyEdit = 4,
}

/// A deterministic fault-injecting wrapper around any backend.
#[derive(Debug, Clone)]
pub struct FaultyBackend<B> {
    inner: B,
    cfg: FaultConfig,
}

impl<B: FallibleLanguageModel> FaultyBackend<B> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: B, cfg: FaultConfig) -> Self {
        FaultyBackend { inner, cfg }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The fault schedule.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// SplitMix-style avalanche over the call key. One latent per
    /// (seed, role, key, attempt); sub-draws (kind selection, synthetic
    /// delays) reuse its high bits.
    fn latent(&self, role: Role, key: u64) -> u64 {
        let mut h: u64 = 0x2545F4914F6CDD1D;
        for v in [self.cfg.seed, role as u64, key, call_attempt() as u64] {
            h ^= v.wrapping_add(0x9E3779B97F4A7C15).rotate_left(17);
            h = h.wrapping_mul(0xD6E8FEB86659FD93);
            h ^= h >> 32;
        }
        h
    }

    /// The fault decision for one call. `example_id` drives outage
    /// windows; `key` is a pure hash of the call arguments.
    fn maybe_fault(&self, role: Role, example_id: u64, key: u64) -> BackendResult<()> {
        if self.cfg.in_outage(example_id) {
            return Err(BackendError::Transient {
                detail: format!("simulated outage window (example {example_id})"),
            });
        }
        let h = self.latent(role, key);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let mut threshold = self.cfg.timeout;
        if u < threshold {
            return Err(BackendError::Timeout {
                elapsed_ms: 1_000 + h % 9_000,
            });
        }
        threshold += self.cfg.rate_limited;
        if u < threshold {
            return Err(BackendError::RateLimited {
                retry_after_ms: 50 + h % 450,
            });
        }
        threshold += self.cfg.transient;
        if u < threshold {
            return Err(BackendError::Transient {
                detail: "connection reset by peer".into(),
            });
        }
        threshold += self.cfg.malformed;
        if u < threshold {
            return Err(BackendError::MalformedOutput {
                detail: "completion was not parsable SQL".into(),
            });
        }
        threshold += self.cfg.panic;
        // Deliberately NOT a BackendError: this models a client-side
        // bug, and must unwind to the runner's isolation boundary.
        assert!(
            u >= threshold,
            "injected backend panic (example {example_id}, key {key:#x})"
        );
        Ok(())
    }
}

fn text_key(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl<B: FallibleLanguageModel> FallibleLanguageModel for FaultyBackend<B> {
    fn try_generate_sql(&self, req: &GenRequest<'_>) -> BackendResult<Generation> {
        let key = (req.example.id as u64).rotate_left(32) ^ req.salt;
        self.maybe_fault(Role::Generate, req.example.id as u64, key)?;
        self.inner.try_generate_sql(req)
    }

    fn try_classify_feedback(&self, utterance: &str, salt: u64) -> BackendResult<OpClass> {
        let key = text_key(utterance) ^ salt.rotate_left(32);
        self.maybe_fault(Role::Classify, key, key)?;
        self.inner.try_classify_feedback(utterance, salt)
    }

    fn try_rewrite_question(&self, question: &str, feedback: &str) -> BackendResult<String> {
        let key = text_key(question) ^ text_key(feedback).rotate_left(32);
        self.maybe_fault(Role::Rewrite, key, key)?;
        self.inner.try_rewrite_question(question, feedback)
    }

    fn try_edit_success_prob(&self, routed: bool, dynamic: bool) -> BackendResult<f64> {
        // Calibration lookup, client-side: never faulted.
        self.inner.try_edit_success_prob(routed, dynamic)
    }

    fn try_edit_complexity_factor(&self, edits: &[EditOp]) -> BackendResult<f64> {
        // Calibration lookup, client-side: never faulted.
        self.inner.try_edit_complexity_factor(edits)
    }

    fn try_apply_feedback_edit_with_prob(
        &self,
        previous: &Query,
        edits: &[EditOp],
        p: f64,
        example_id: usize,
        salt: u64,
    ) -> BackendResult<Query> {
        let key = (example_id as u64).rotate_left(32) ^ salt ^ ((edits.len() as u64) << 48);
        self.maybe_fault(Role::ApplyEdit, example_id as u64, key)?;
        self.inner
            .try_apply_feedback_edit_with_prob(previous, edits, p, example_id, salt)
    }

    fn begin_session(&self) {
        self.inner.begin_session();
    }

    fn resilience_stats(&self) -> Option<crate::resilience::ResilienceStats> {
        self.inner.resilience_stats()
    }

    fn session_virtual_elapsed_ms(&self) -> Option<u64> {
        self.inner.session_virtual_elapsed_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GenMode, LlmConfig, SimLlm};
    use fisql_spider::{build_aep, AepConfig};

    fn corpus() -> fisql_spider::Corpus {
        build_aep(&AepConfig {
            n_examples: 40,
            seed: 5,
        })
    }

    fn faulty(rate: f64) -> FaultyBackend<SimLlm> {
        FaultyBackend::new(
            SimLlm::new(LlmConfig::default()),
            FaultConfig::uniform(rate),
        )
    }

    #[test]
    fn zero_rate_never_faults_and_matches_inner() {
        let corpus = corpus();
        let b = faulty(0.0);
        for e in &corpus.examples {
            let req = GenRequest {
                example: e,
                demos: 0,
                hint_text: "",
                salt: 0,
                mode: GenMode::Initial,
            };
            let out = b.try_generate_sql(&req).expect("rate 0 must never fault");
            assert_eq!(out.query, b.inner().generate_sql(&req).query);
        }
    }

    #[test]
    fn fault_schedule_is_deterministic_and_attempt_sensitive() {
        let corpus = corpus();
        let b = faulty(0.5);
        let outcome = |example_idx: usize, attempt: u32| {
            with_attempt(attempt, || {
                b.try_generate_sql(&GenRequest {
                    example: &corpus.examples[example_idx],
                    demos: 0,
                    hint_text: "",
                    salt: 0,
                    mode: GenMode::Initial,
                })
                .is_ok()
            })
        };
        let mut faulted = 0;
        let mut attempt_varies = 0;
        for i in 0..corpus.examples.len() {
            // Same call, same attempt: identical outcome (replayability).
            assert_eq!(outcome(i, 0), outcome(i, 0));
            assert_eq!(outcome(i, 1), outcome(i, 1));
            if !outcome(i, 0) {
                faulted += 1;
            }
            if outcome(i, 0) != outcome(i, 1) {
                attempt_varies += 1;
            }
        }
        assert!(faulted > 0, "50% schedule never fired");
        assert!(
            attempt_varies > 0,
            "attempt index never changed an outcome — retries would be pointless"
        );
    }

    #[test]
    fn fault_rate_is_roughly_calibrated() {
        let corpus = corpus();
        let b = faulty(0.2);
        let mut faults = 0;
        let mut calls = 0;
        for e in &corpus.examples {
            for salt in 0..25 {
                calls += 1;
                if b.try_classify_feedback(&e.question, salt).is_err() {
                    faults += 1;
                }
            }
        }
        let rate = faults as f64 / calls as f64;
        assert!((0.1..0.3).contains(&rate), "observed fault rate {rate}");
    }

    #[test]
    fn all_four_kinds_are_injected() {
        let corpus = corpus();
        let b = faulty(0.8);
        let mut kinds = std::collections::BTreeSet::new();
        for e in &corpus.examples {
            for salt in 0..20 {
                if let Err(err) = b.try_classify_feedback(&e.question, salt) {
                    kinds.insert(match err {
                        BackendError::Timeout { .. } => "timeout",
                        BackendError::RateLimited { .. } => "rate-limited",
                        BackendError::Transient { .. } => "transient",
                        BackendError::MalformedOutput { .. } => "malformed",
                        BackendError::Exhausted { .. } => "exhausted",
                    });
                }
            }
        }
        assert_eq!(
            kinds.into_iter().collect::<Vec<_>>(),
            ["malformed", "rate-limited", "timeout", "transient"]
        );
    }

    #[test]
    fn outage_windows_fail_every_attempt() {
        let corpus = corpus();
        let cfg = FaultConfig {
            outage_period: 10,
            outage_width: 3,
            ..FaultConfig::default()
        };
        let b = FaultyBackend::new(SimLlm::new(LlmConfig::default()), cfg);
        for e in &corpus.examples {
            let call = |attempt| {
                with_attempt(attempt, || {
                    b.try_generate_sql(&GenRequest {
                        example: e,
                        demos: 0,
                        hint_text: "",
                        salt: 0,
                        mode: GenMode::Initial,
                    })
                })
            };
            if cfg.in_outage(e.id as u64) {
                for attempt in 0..4 {
                    assert!(call(attempt).is_err(), "outage must defeat retries");
                }
            } else {
                assert!(call(0).is_ok(), "no faults outside the outage window");
            }
        }
    }

    #[test]
    fn calibration_roles_pass_through_unfaulted() {
        let b = faulty(1.0); // every remote call faults …
        assert!(b.try_edit_success_prob(true, false).is_ok());
        assert!(b.try_edit_complexity_factor(&[]).is_ok());
        // … and remote roles indeed fault at rate 1.
        assert!(b.try_rewrite_question("q", "f").is_err());
    }

    #[test]
    fn panic_rate_unwinds_instead_of_erroring() {
        let cfg = FaultConfig {
            panic: 1.0,
            ..FaultConfig::default()
        };
        // Panics are not error kinds: the retry surface never sees them.
        assert_eq!(cfg.total_rate(), 0.0);
        let b = FaultyBackend::new(SimLlm::new(LlmConfig::default()), cfg);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.try_classify_feedback("how many singers", 0)
        }));
        assert!(unwound.is_err(), "panic rate 1 must unwind");
    }

    #[test]
    fn uniform_and_env_parsing() {
        let cfg = FaultConfig::uniform(0.2);
        assert!((cfg.total_rate() - 0.2).abs() < 1e-12);
        assert_eq!(FaultConfig::uniform(0.0).total_rate(), 0.0);
        // from_env is exercised only when the variable is set; the chaos
        // CI job sets FISQL_FAULT_RATE=0.2.
        if let Some(env_cfg) = FaultConfig::from_env() {
            assert!(env_cfg.total_rate() > 0.0);
        }
    }
}
