//! Retry, backoff, and circuit-breaking middleware for fallible backends.
//!
//! [`Resilient<B>`] wraps any [`FallibleLanguageModel`] and gives every
//! remote call:
//!
//! - a **retry loop** with an attempt budget and exponential backoff with
//!   deterministic jitter (hashed from the call key and attempt, never
//!   from a global RNG);
//! - a **per-session deadline** counted in *virtual time*: computed
//!   backoff delays accumulate against the deadline whether or not they
//!   are actually slept, so the schedule — and therefore every
//!   deterministic report — is identical whether the middleware sleeps
//!   (live backends) or not (simulated chaos runs);
//! - a **circuit breaker** (closed → open → half-open) that stops
//!   hammering a down backend: after `failure_threshold` consecutive
//!   exhausted calls the breaker opens and fails the next
//!   `cooldown_calls` calls fast, then half-opens and lets one probe
//!   through — success closes it, failure re-opens it.
//!
//! # Breaker scope and determinism
//!
//! Breaker state and the deadline clock are scoped to a *resilience
//! session* — one correction case in the evaluation runner, one
//! conversation in the chat surface — and sessions are thread-local
//! (a case runs entirely on one worker thread). A process-global breaker
//! would make sharded evaluation order-dependent: whether call N finds
//! the breaker open would depend on which thread tripped it first, and
//! reports would stop being bit-identical across worker counts. Global
//! *telemetry* still exists: [`ResilienceStats`] counters are atomic and
//! process-wide, quarantined in `RunMetrics` exactly like cache hit
//! counters.

use crate::backend::FallibleLanguageModel;
use crate::error::{BackendError, BackendResult, ExhaustedReason};
use crate::faults;
use crate::model::{GenRequest, Generation};
use fisql_sqlkit::{EditOp, OpClass, Query};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for [`Resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Maximum attempts per call (first try + retries). Clamped to ≥ 1.
    pub attempt_budget: u32,
    /// Base backoff before the first retry, milliseconds. Doubled per
    /// retry up to [`ResilienceConfig::backoff_cap_ms`].
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Jitter fraction in `[0, 1]`: each delay is multiplied by
    /// `1 + jitter * u` with `u` hashed deterministically from the call
    /// key and attempt.
    pub jitter: f64,
    /// Virtual-time budget per session, milliseconds: once accumulated
    /// backoff passes it, calls fail fast with
    /// [`ExhaustedReason::SessionDeadline`]. `None` = unbounded.
    pub session_deadline_ms: Option<u64>,
    /// Consecutive exhausted calls that open the breaker. `0` disables
    /// the breaker.
    pub failure_threshold: u32,
    /// Calls rejected while open before the breaker half-opens for a
    /// probe.
    pub cooldown_calls: u32,
    /// Actually sleep backoff delays (live backends). Simulated chaos
    /// runs leave this off: delays are only charged to the virtual
    /// deadline clock, so runs stay fast and bit-replayable.
    pub sleep: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            attempt_budget: 3,
            backoff_base_ms: 100,
            backoff_cap_ms: 2_000,
            jitter: 0.2,
            session_deadline_ms: Some(30_000),
            failure_threshold: 5,
            cooldown_calls: 2,
            sleep: false,
        }
    }
}

/// Cumulative resilience telemetry (process-wide, atomic). Deltas are
/// deterministic for a deterministic fault schedule — the counters are
/// order-free sums over per-call outcomes — but they are *volatile
/// observables* like cache stats and live in `RunMetrics`, never in the
/// serialized report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Logical backend calls that entered the middleware.
    pub calls: u64,
    /// Physical attempts made (≥ calls when retries happen).
    pub attempts: u64,
    /// Retries (attempts beyond each call's first).
    pub retries: u64,
    /// Calls that gave up with [`BackendError::Exhausted`].
    pub exhausted: u64,
    /// Closed→open breaker transitions.
    pub breaker_trips: u64,
    /// Calls rejected outright by an open breaker.
    pub breaker_fast_fails: u64,
    /// Virtual backoff time charged, milliseconds.
    pub backoff_ms: u64,
}

impl ResilienceStats {
    /// Counter deltas since `before` (saturating, so a stale snapshot
    /// never underflows).
    pub fn since(&self, before: &ResilienceStats) -> ResilienceStats {
        ResilienceStats {
            calls: self.calls.saturating_sub(before.calls),
            attempts: self.attempts.saturating_sub(before.attempts),
            retries: self.retries.saturating_sub(before.retries),
            exhausted: self.exhausted.saturating_sub(before.exhausted),
            breaker_trips: self.breaker_trips.saturating_sub(before.breaker_trips),
            breaker_fast_fails: self
                .breaker_fast_fails
                .saturating_sub(before.breaker_fast_fails),
            backoff_ms: self.backoff_ms.saturating_sub(before.backoff_ms),
        }
    }
}

#[derive(Debug, Default)]
struct AtomicStats {
    calls: AtomicU64,
    attempts: AtomicU64,
    retries: AtomicU64,
    exhausted: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_fast_fails: AtomicU64,
    backoff_ms: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ResilienceStats {
        ResilienceStats {
            calls: self.calls.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_fast_fails: self.breaker_fast_fails.load(Ordering::Relaxed),
            backoff_ms: self.backoff_ms.load(Ordering::Relaxed),
        }
    }
}

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls fail fast until the cooldown is spent.
    Open,
    /// One probe call is allowed through.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
struct SessionState {
    /// Consecutive exhausted calls while closed.
    consecutive_failures: u32,
    /// Remaining fast-fail calls while open.
    cooldown_remaining: u32,
    state: BreakerState,
    /// Virtual time charged so far, milliseconds.
    virtual_elapsed_ms: u64,
}

impl SessionState {
    fn fresh() -> SessionState {
        SessionState {
            consecutive_failures: 0,
            cooldown_remaining: 0,
            state: BreakerState::Closed,
            virtual_elapsed_ms: 0,
        }
    }
}

thread_local! {
    /// Per-thread session states, keyed by middleware instance id. A
    /// session (one runner case, one chat conversation) runs on one
    /// thread, so thread-locality makes breaker decisions a pure
    /// function of that session's own call history — the property that
    /// keeps sharded chaos runs bit-identical at any worker count.
    static SESSIONS: RefCell<HashMap<u64, SessionState>> = RefCell::new(HashMap::new());
}

static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(1);

/// Retry/backoff/breaker middleware around a fallible backend.
#[derive(Debug, Clone)]
pub struct Resilient<B> {
    inner: B,
    cfg: ResilienceConfig,
    /// Identity for session-state lookup; clones share it (they are the
    /// same logical middleware).
    instance_id: u64,
    stats: Arc<AtomicStats>,
}

impl<B: FallibleLanguageModel> Resilient<B> {
    /// Wraps `inner` with the given configuration.
    pub fn new(inner: B, cfg: ResilienceConfig) -> Self {
        Resilient {
            inner,
            cfg,
            instance_id: NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed),
            stats: Arc::new(AtomicStats::default()),
        }
    }

    /// Wraps `inner` with [`ResilienceConfig::default`].
    pub fn with_defaults(inner: B) -> Self {
        Resilient::new(inner, ResilienceConfig::default())
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The configuration.
    pub fn config(&self) -> &ResilienceConfig {
        &self.cfg
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> ResilienceStats {
        self.stats.snapshot()
    }

    /// This thread's current breaker state (diagnostics/tests).
    pub fn breaker_state(&self) -> BreakerState {
        self.with_session(|s| s.state)
    }

    fn with_session<R>(&self, f: impl FnOnce(&mut SessionState) -> R) -> R {
        SESSIONS.with(|cell| {
            let mut map = cell.borrow_mut();
            f(map
                .entry(self.instance_id)
                .or_insert_with(SessionState::fresh))
        })
    }

    /// Deterministic jitter draw in `[0, 1)` for (call key, attempt).
    fn jitter_unit(&self, key: u64, attempt: u32) -> f64 {
        let mut h: u64 = 0x9E6C63D0876A9A35;
        for v in [self.instance_id, key, attempt as u64] {
            h ^= v.wrapping_add(0x9E3779B97F4A7C15).rotate_left(29);
            h = h.wrapping_mul(0xC2B2AE3D27D4EB4F);
            h ^= h >> 31;
        }
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Backoff delay before retry number `retry` (1-based), honouring a
    /// rate-limit hint from the previous error.
    fn backoff_ms(&self, key: u64, retry: u32, hint_ms: Option<u64>) -> u64 {
        let exp = self
            .cfg
            .backoff_base_ms
            .saturating_mul(1u64 << (retry - 1).min(16))
            .min(self.cfg.backoff_cap_ms);
        let jittered = (exp as f64
            * (1.0 + self.cfg.jitter.clamp(0.0, 1.0) * self.jitter_unit(key, retry)))
            as u64;
        jittered.max(hint_ms.unwrap_or(0))
    }

    /// Breaker bookkeeping after a call settles.
    fn record_outcome(&self, success: bool) {
        if self.cfg.failure_threshold == 0 {
            return;
        }
        self.with_session(|s| match (s.state, success) {
            (BreakerState::Closed, true) => s.consecutive_failures = 0,
            (BreakerState::Closed, false) => {
                s.consecutive_failures += 1;
                if s.consecutive_failures >= self.cfg.failure_threshold {
                    s.state = BreakerState::Open;
                    s.cooldown_remaining = self.cfg.cooldown_calls;
                    self.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
                }
            }
            (BreakerState::HalfOpen, true) => {
                s.state = BreakerState::Closed;
                s.consecutive_failures = 0;
            }
            (BreakerState::HalfOpen, false) => {
                s.state = BreakerState::Open;
                s.cooldown_remaining = self.cfg.cooldown_calls;
                self.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
            }
            (BreakerState::Open, _) => {}
        });
    }

    /// The retry loop: runs `f` under the budget/deadline/breaker policy.
    fn call<T>(&self, key: u64, f: impl Fn() -> BackendResult<T>) -> BackendResult<T> {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);

        // Breaker gate.
        if self.cfg.failure_threshold > 0 {
            let rejected = self.with_session(|s| match s.state {
                BreakerState::Open if s.cooldown_remaining > 0 => {
                    s.cooldown_remaining -= 1;
                    true
                }
                BreakerState::Open => {
                    s.state = BreakerState::HalfOpen;
                    false
                }
                _ => false,
            });
            if rejected {
                self.stats
                    .breaker_fast_fails
                    .fetch_add(1, Ordering::Relaxed);
                self.stats.exhausted.fetch_add(1, Ordering::Relaxed);
                return Err(BackendError::Exhausted {
                    attempts: 0,
                    reason: ExhaustedReason::BreakerOpen,
                    last: None,
                });
            }
        }

        let budget = self.cfg.attempt_budget.max(1);
        let mut last: Option<BackendError> = None;
        for attempt in 0..budget {
            if attempt > 0 {
                let hint = last.as_ref().and_then(BackendError::retry_after_ms);
                let delay = self.backoff_ms(key, attempt, hint);
                let over_deadline = self.with_session(|s| {
                    let next = s.virtual_elapsed_ms.saturating_add(delay);
                    match self.cfg.session_deadline_ms {
                        Some(deadline) if next > deadline => true,
                        _ => {
                            s.virtual_elapsed_ms = next;
                            false
                        }
                    }
                });
                if over_deadline {
                    self.record_outcome(false);
                    self.stats.exhausted.fetch_add(1, Ordering::Relaxed);
                    return Err(BackendError::Exhausted {
                        attempts: attempt,
                        reason: ExhaustedReason::SessionDeadline,
                        last: last.map(Box::new),
                    });
                }
                self.stats.backoff_ms.fetch_add(delay, Ordering::Relaxed);
                if self.cfg.sleep && delay > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
            }
            self.stats.attempts.fetch_add(1, Ordering::Relaxed);
            match faults::with_attempt(attempt, &f) {
                Ok(value) => {
                    self.record_outcome(true);
                    return Ok(value);
                }
                Err(err) if err.is_retryable() => last = Some(err),
                Err(err) => {
                    // A nested Exhausted (stacked middleware) is terminal.
                    self.record_outcome(false);
                    self.stats.exhausted.fetch_add(1, Ordering::Relaxed);
                    return Err(err);
                }
            }
        }
        self.record_outcome(false);
        self.stats.exhausted.fetch_add(1, Ordering::Relaxed);
        Err(BackendError::Exhausted {
            attempts: budget,
            reason: ExhaustedReason::AttemptBudget,
            last: last.map(Box::new),
        })
    }
}

fn text_key(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl<B: FallibleLanguageModel> FallibleLanguageModel for Resilient<B> {
    fn try_generate_sql(&self, req: &GenRequest<'_>) -> BackendResult<Generation> {
        let key = (req.example.id as u64).rotate_left(32) ^ req.salt;
        self.call(key, || self.inner.try_generate_sql(req))
    }

    fn try_classify_feedback(&self, utterance: &str, salt: u64) -> BackendResult<OpClass> {
        let key = text_key(utterance) ^ salt.rotate_left(32);
        self.call(key, || self.inner.try_classify_feedback(utterance, salt))
    }

    fn try_rewrite_question(&self, question: &str, feedback: &str) -> BackendResult<String> {
        let key = text_key(question) ^ text_key(feedback).rotate_left(32);
        self.call(key, || self.inner.try_rewrite_question(question, feedback))
    }

    fn try_edit_success_prob(&self, routed: bool, dynamic: bool) -> BackendResult<f64> {
        // Calibration lookup, client-side: no retry policy needed.
        self.inner.try_edit_success_prob(routed, dynamic)
    }

    fn try_edit_complexity_factor(&self, edits: &[EditOp]) -> BackendResult<f64> {
        self.inner.try_edit_complexity_factor(edits)
    }

    fn try_apply_feedback_edit_with_prob(
        &self,
        previous: &Query,
        edits: &[EditOp],
        p: f64,
        example_id: usize,
        salt: u64,
    ) -> BackendResult<Query> {
        let key = (example_id as u64).rotate_left(32) ^ salt;
        self.call(key, || {
            self.inner
                .try_apply_feedback_edit_with_prob(previous, edits, p, example_id, salt)
        })
    }

    fn begin_session(&self) {
        self.with_session(|s| *s = SessionState::fresh());
        self.inner.begin_session();
    }

    fn resilience_stats(&self) -> Option<ResilienceStats> {
        Some(self.stats())
    }

    fn session_virtual_elapsed_ms(&self) -> Option<u64> {
        // The virtual deadline clock doubles as a deterministic stall
        // signal: backoff charged against this session advances it
        // identically at any worker count, so a watchdog reading it
        // expires stalled cases reproducibly.
        Some(self.with_session(|s| s.virtual_elapsed_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A scripted backend: each rewrite call pops the next outcome.
    struct Scripted {
        outcomes: Mutex<Vec<BackendResult<String>>>,
    }

    impl Scripted {
        fn new(mut outcomes: Vec<BackendResult<String>>) -> Self {
            outcomes.reverse(); // pop() takes from the front of the script
            Scripted {
                outcomes: Mutex::new(outcomes),
            }
        }
    }

    impl FallibleLanguageModel for Scripted {
        fn try_generate_sql(&self, _req: &GenRequest<'_>) -> BackendResult<Generation> {
            unimplemented!("script drives rewrite_question only")
        }
        fn try_classify_feedback(&self, _u: &str, _s: u64) -> BackendResult<OpClass> {
            unimplemented!()
        }
        fn try_rewrite_question(&self, _q: &str, _f: &str) -> BackendResult<String> {
            self.outcomes
                .lock()
                .expect("script lock poisoned")
                .pop()
                .unwrap_or_else(|| Ok("ok".into()))
        }
        fn try_edit_success_prob(&self, _r: bool, _d: bool) -> BackendResult<f64> {
            Ok(1.0)
        }
        fn try_edit_complexity_factor(&self, _e: &[EditOp]) -> BackendResult<f64> {
            Ok(1.0)
        }
        fn try_apply_feedback_edit_with_prob(
            &self,
            previous: &Query,
            _edits: &[EditOp],
            _p: f64,
            _id: usize,
            _salt: u64,
        ) -> BackendResult<Query> {
            Ok(previous.clone())
        }
    }

    fn transient() -> BackendResult<String> {
        Err(BackendError::Transient {
            detail: "boom".into(),
        })
    }

    fn cfg() -> ResilienceConfig {
        ResilienceConfig {
            attempt_budget: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 100,
            jitter: 0.5,
            session_deadline_ms: None,
            failure_threshold: 2,
            cooldown_calls: 2,
            sleep: false,
        }
    }

    #[test]
    fn retries_until_success_within_budget() {
        let r = Resilient::new(
            Scripted::new(vec![transient(), Ok("second try".into())]),
            cfg(),
        );
        r.begin_session();
        assert_eq!(r.try_rewrite_question("q", "f").unwrap(), "second try");
        let s = r.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.attempts, 2);
        assert_eq!(s.retries, 1);
        assert_eq!(s.exhausted, 0);
        assert!(s.backoff_ms > 0);
    }

    #[test]
    fn budget_exhaustion_reports_the_chain() {
        let r = Resilient::new(
            Scripted::new(vec![
                transient(),
                Err(BackendError::RateLimited { retry_after_ms: 77 }),
                transient(),
            ]),
            cfg(),
        );
        r.begin_session();
        let err = r.try_rewrite_question("q", "f").unwrap_err();
        match &err {
            BackendError::Exhausted {
                attempts: 3,
                reason: ExhaustedReason::AttemptBudget,
                last: Some(last),
            } => assert!(matches!(**last, BackendError::Transient { .. })),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.stats().exhausted, 1);
    }

    #[test]
    fn rate_limit_hint_floors_the_backoff() {
        let r = Resilient::new(Scripted::new(vec![]), cfg());
        assert!(r.backoff_ms(1, 1, Some(5_000)) >= 5_000);
        // And without a hint the delay respects base/cap scaling.
        let d1 = r.backoff_ms(1, 1, None);
        let d3 = r.backoff_ms(1, 3, None);
        assert!((10..=15).contains(&d1), "first retry delay {d1}");
        assert!(d3 >= d1, "backoff must not shrink: {d1} -> {d3}");
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let r = Resilient::new(
            Scripted::new(vec![
                // Two calls fail entirely (2 * 3 attempts) -> breaker opens.
                transient(),
                transient(),
                transient(),
                transient(),
                transient(),
                transient(),
                // The half-open probe succeeds -> breaker closes.
                Ok("recovered".into()),
            ]),
            cfg(),
        );
        r.begin_session();
        assert_eq!(r.breaker_state(), BreakerState::Closed);
        assert!(r.try_rewrite_question("q", "f").is_err());
        assert!(r.try_rewrite_question("q", "f").is_err());
        assert_eq!(r.breaker_state(), BreakerState::Open);
        assert_eq!(r.stats().breaker_trips, 1);

        // Cooldown: two fast-fails without touching the backend.
        for _ in 0..2 {
            match r.try_rewrite_question("q", "f").unwrap_err() {
                BackendError::Exhausted {
                    attempts: 0,
                    reason: ExhaustedReason::BreakerOpen,
                    ..
                } => {}
                other => panic!("expected fast-fail, got {other:?}"),
            }
        }
        assert_eq!(r.stats().breaker_fast_fails, 2);

        // Next call half-opens and probes; the scripted success closes.
        assert_eq!(r.try_rewrite_question("q", "f").unwrap(), "recovered");
        assert_eq!(r.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let mut c = cfg();
        c.attempt_budget = 1;
        c.cooldown_calls = 1;
        let r = Resilient::new(
            Scripted::new(vec![transient(), transient(), transient()]),
            c,
        );
        r.begin_session();
        assert!(r.try_rewrite_question("q", "f").is_err()); // failure 1
        assert!(r.try_rewrite_question("q", "f").is_err()); // failure 2 -> open
        assert_eq!(r.breaker_state(), BreakerState::Open);
        assert!(r.try_rewrite_question("q", "f").is_err()); // cooldown fast-fail
        assert!(r.try_rewrite_question("q", "f").is_err()); // probe fails -> open again
        assert_eq!(r.breaker_state(), BreakerState::Open);
        assert_eq!(r.stats().breaker_trips, 2);
    }

    #[test]
    fn session_deadline_counts_virtual_backoff() {
        let mut c = cfg();
        c.session_deadline_ms = Some(15); // one ~10 ms retry fits, two don't
        let r = Resilient::new(
            Scripted::new(vec![transient(), transient(), transient()]),
            c,
        );
        r.begin_session();
        let err = r.try_rewrite_question("q", "f").unwrap_err();
        match err {
            BackendError::Exhausted {
                reason: ExhaustedReason::SessionDeadline,
                attempts,
                ..
            } => assert!(attempts >= 1, "at least the first attempt ran"),
            other => panic!("expected deadline exhaustion, got {other:?}"),
        }
        // begin_session resets the clock: the next session gets a fresh
        // backoff budget, so its retry runs (and drains the script to a
        // success) instead of failing fast on a spent deadline.
        let retries_before = r.stats().retries;
        r.begin_session();
        assert_eq!(r.try_rewrite_question("q", "f").unwrap(), "ok");
        assert!(
            r.stats().retries > retries_before,
            "reset clock must allow a retry"
        );
    }

    #[test]
    fn begin_session_resets_breaker_state() {
        let mut c = cfg();
        c.attempt_budget = 1;
        let r = Resilient::new(Scripted::new(vec![transient(), transient()]), c);
        r.begin_session();
        assert!(r.try_rewrite_question("q", "f").is_err());
        assert!(r.try_rewrite_question("q", "f").is_err());
        assert_eq!(r.breaker_state(), BreakerState::Open);
        r.begin_session();
        assert_eq!(r.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn stats_since_computes_deltas() {
        let before = ResilienceStats {
            calls: 10,
            attempts: 15,
            retries: 5,
            exhausted: 1,
            breaker_trips: 0,
            breaker_fast_fails: 0,
            backoff_ms: 120,
        };
        let after = ResilienceStats {
            calls: 13,
            attempts: 20,
            retries: 7,
            exhausted: 2,
            breaker_trips: 1,
            breaker_fast_fails: 2,
            backoff_ms: 300,
        };
        let d = after.since(&before);
        assert_eq!(d.calls, 3);
        assert_eq!(d.attempts, 5);
        assert_eq!(d.retries, 2);
        assert_eq!(d.exhausted, 1);
        assert_eq!(d.breaker_trips, 1);
        assert_eq!(d.breaker_fast_fails, 2);
        assert_eq!(d.backoff_ms, 180);
    }
}
