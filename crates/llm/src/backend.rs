//! The LLM-backend abstraction.
//!
//! The feedback-incorporation pipeline and the parallel evaluation runner
//! are generic over [`LanguageModel`] rather than tied to [`SimLlm`], so a
//! real-LLM backend (an HTTP client for `gpt-3.5-turbo`-class models, a
//! local inference server, …) can slot in without touching the pipeline.
//! The `Send + Sync` bound is load-bearing: the runner shares one backend
//! reference across its scoped worker threads.
//!
//! Two traits, one failure story:
//!
//! - [`LanguageModel`] is the *infallible* surface: in-process backends
//!   ([`SimLlm`]) that cannot fail.
//! - [`FallibleLanguageModel`] is what the pipeline actually consumes:
//!   every role returns `Result<_, BackendError>`, so remote backends can
//!   report timeouts, rate limits, and malformed completions honestly. A
//!   blanket impl lifts every `LanguageModel` into it (returning `Ok`
//!   always), so existing call sites and custom infallible backends keep
//!   working unchanged.
//!
//! The fault injector ([`crate::faults::FaultyBackend`]) and the retry
//! middleware ([`crate::resilience::Resilient`]) implement only the
//! fallible trait — they are the layers where failure is real.

use crate::error::BackendResult;
use crate::model::{GenRequest, Generation, SimLlm};
use crate::resilience::ResilienceStats;
use fisql_sqlkit::{EditOp, OpClass, Query};

/// The three roles the paper prompts its LLM for (§3.2-3.3), plus the
/// calibration surface the pipeline consults when deciding how reliably
/// an edit will be applied.
///
/// Implementations must be deterministic for a fixed input (the
/// evaluation protocol depends on replayability); a stochastic backend
/// should derive its sampling from the call arguments, as [`SimLlm`]
/// does from `(seed, example_id, salt)`.
pub trait LanguageModel: Send + Sync {
    /// NL2SQL generation (role 1, Figure 1/6 prompts).
    fn generate_sql(&self, req: &GenRequest<'_>) -> Generation;

    /// Feedback-type identification (role 2, §3.3).
    fn classify_feedback(&self, utterance: &str, salt: u64) -> OpClass;

    /// The Query Rewrite baseline's paraphrasing step (§4.1).
    fn rewrite_question(&self, question: &str, feedback: &str) -> String;

    /// Success probability of applying a feedback edit, given whether
    /// routed (type-matched) demonstrations are in context and whether
    /// they were selected dynamically.
    fn edit_success_prob(&self, routed: bool, dynamic: bool) -> f64;

    /// Reliability multiplier for a concrete set of edits (literal swaps
    /// are easy, structural changes are hard).
    fn edit_complexity_factor(&self, edits: &[EditOp]) -> f64;

    /// Applies interpreted feedback edits to the previous query with an
    /// explicit success probability (role 3).
    fn apply_feedback_edit_with_prob(
        &self,
        previous: &Query,
        edits: &[EditOp],
        p: f64,
        example_id: usize,
        salt: u64,
    ) -> Query;
}

/// The fallible backend surface the pipeline consumes: the same six
/// roles as [`LanguageModel`], each returning
/// `Result<_, `[`BackendError`](crate::error::BackendError)`>`.
///
/// Implement this directly for backends that can fail (remote clients,
/// the fault injector, the resilience middleware); implement
/// [`LanguageModel`] for backends that cannot — the blanket impl lifts
/// them here for free.
///
/// Determinism contract: like [`LanguageModel`], every method must be a
/// pure function of its arguments (plus per-call attempt context, see
/// [`crate::faults::call_attempt`]) — the evaluation runner replays
/// faulted runs bit-for-bit at any worker count on the strength of it.
pub trait FallibleLanguageModel: Send + Sync {
    /// NL2SQL generation (role 1), fallibly.
    fn try_generate_sql(&self, req: &GenRequest<'_>) -> BackendResult<Generation>;

    /// Feedback-type identification (role 2), fallibly.
    fn try_classify_feedback(&self, utterance: &str, salt: u64) -> BackendResult<OpClass>;

    /// The Query Rewrite baseline's paraphrasing step, fallibly.
    fn try_rewrite_question(&self, question: &str, feedback: &str) -> BackendResult<String>;

    /// Edit success probability (calibration surface), fallibly.
    fn try_edit_success_prob(&self, routed: bool, dynamic: bool) -> BackendResult<f64>;

    /// Edit complexity multiplier (calibration surface), fallibly.
    fn try_edit_complexity_factor(&self, edits: &[EditOp]) -> BackendResult<f64>;

    /// Applies interpreted feedback edits (role 3), fallibly.
    fn try_apply_feedback_edit_with_prob(
        &self,
        previous: &Query,
        edits: &[EditOp],
        p: f64,
        example_id: usize,
        salt: u64,
    ) -> BackendResult<Query>;

    /// Marks the start of a resilience session — one correction case in
    /// the runner, one conversation in the chat surface. Middleware
    /// resets per-session state (circuit breaker, deadline clock) here;
    /// plain backends need not care.
    fn begin_session(&self) {}

    /// Cumulative resilience telemetry, when this backend (or a layer
    /// inside it) is retry middleware. `None` for plain backends.
    fn resilience_stats(&self) -> Option<ResilienceStats> {
        None
    }

    /// Milliseconds of *virtual* time charged against the current
    /// thread's session, when this backend keeps a session clock (the
    /// resilience middleware charges simulated latency for timeouts and
    /// backoff waits). The evaluation runner's stall watchdog consults
    /// this to expire stalled cases *deterministically*: unlike wall
    /// time, the virtual clock advances identically at any worker
    /// count. `None` (the default) means no session clock.
    fn session_virtual_elapsed_ms(&self) -> Option<u64> {
        None
    }
}

/// Every infallible backend is trivially a fallible one.
impl<T: LanguageModel + ?Sized> FallibleLanguageModel for T {
    fn try_generate_sql(&self, req: &GenRequest<'_>) -> BackendResult<Generation> {
        Ok(self.generate_sql(req))
    }

    fn try_classify_feedback(&self, utterance: &str, salt: u64) -> BackendResult<OpClass> {
        Ok(self.classify_feedback(utterance, salt))
    }

    fn try_rewrite_question(&self, question: &str, feedback: &str) -> BackendResult<String> {
        Ok(self.rewrite_question(question, feedback))
    }

    fn try_edit_success_prob(&self, routed: bool, dynamic: bool) -> BackendResult<f64> {
        Ok(self.edit_success_prob(routed, dynamic))
    }

    fn try_edit_complexity_factor(&self, edits: &[EditOp]) -> BackendResult<f64> {
        Ok(self.edit_complexity_factor(edits))
    }

    fn try_apply_feedback_edit_with_prob(
        &self,
        previous: &Query,
        edits: &[EditOp],
        p: f64,
        example_id: usize,
        salt: u64,
    ) -> BackendResult<Query> {
        Ok(self.apply_feedback_edit_with_prob(previous, edits, p, example_id, salt))
    }
}

impl LanguageModel for SimLlm {
    fn generate_sql(&self, req: &GenRequest<'_>) -> Generation {
        SimLlm::generate_sql(self, req)
    }

    fn classify_feedback(&self, utterance: &str, salt: u64) -> OpClass {
        SimLlm::classify_feedback(self, utterance, salt)
    }

    fn rewrite_question(&self, question: &str, feedback: &str) -> String {
        SimLlm::rewrite_question(self, question, feedback)
    }

    fn edit_success_prob(&self, routed: bool, dynamic: bool) -> f64 {
        SimLlm::edit_success_prob(self, routed, dynamic)
    }

    fn edit_complexity_factor(&self, edits: &[EditOp]) -> f64 {
        SimLlm::edit_complexity_factor(self, edits)
    }

    fn apply_feedback_edit_with_prob(
        &self,
        previous: &Query,
        edits: &[EditOp],
        p: f64,
        example_id: usize,
        salt: u64,
    ) -> Query {
        SimLlm::apply_feedback_edit_with_prob(self, previous, edits, p, example_id, salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GenMode, LlmConfig};
    use fisql_spider::{build_aep, AepConfig};

    fn assert_model<L: LanguageModel>(_: &L) {}

    #[test]
    fn sim_llm_satisfies_the_trait_and_agrees_with_inherent_methods() {
        let llm = SimLlm::new(LlmConfig::default());
        assert_model(&llm);
        let dynamic: &dyn LanguageModel = &llm;

        let corpus = build_aep(&AepConfig {
            n_examples: 3,
            seed: 21,
        });
        let req = GenRequest {
            example: &corpus.examples[0],
            demos: 0,
            hint_text: "",
            salt: 0,
            mode: GenMode::Initial,
        };
        assert_eq!(
            dynamic.generate_sql(&req).query,
            llm.generate_sql(&req).query
        );
        assert_eq!(
            dynamic.classify_feedback("we are in 2024", 0),
            llm.classify_feedback("we are in 2024", 0)
        );
        assert_eq!(
            dynamic.rewrite_question("how many?", "we are in 2024"),
            llm.rewrite_question("how many?", "we are in 2024")
        );
        assert_eq!(
            dynamic.edit_success_prob(true, false),
            llm.edit_success_prob(true, false)
        );
    }

    #[test]
    fn blanket_impl_lifts_infallible_backends() {
        let llm = SimLlm::new(LlmConfig::default());
        let fallible: &dyn FallibleLanguageModel = &llm;
        let corpus = build_aep(&AepConfig {
            n_examples: 3,
            seed: 21,
        });
        let req = GenRequest {
            example: &corpus.examples[0],
            demos: 0,
            hint_text: "",
            salt: 0,
            mode: GenMode::Initial,
        };
        assert_eq!(
            fallible.try_generate_sql(&req).unwrap().query,
            llm.generate_sql(&req).query
        );
        assert_eq!(
            fallible.try_classify_feedback("we are in 2024", 0).unwrap(),
            llm.classify_feedback("we are in 2024", 0)
        );
        assert_eq!(
            fallible
                .try_rewrite_question("how many?", "we are in 2024")
                .unwrap(),
            llm.rewrite_question("how many?", "we are in 2024")
        );
        // Plain backends expose no resilience machinery.
        assert!(fallible.resilience_stats().is_none());
        fallible.begin_session(); // a no-op, but callable
    }
}
