//! The LLM-backend abstraction.
//!
//! The feedback-incorporation pipeline and the parallel evaluation runner
//! are generic over [`LanguageModel`] rather than tied to [`SimLlm`], so a
//! real-LLM backend (an HTTP client for `gpt-3.5-turbo`-class models, a
//! local inference server, …) can slot in without touching the pipeline.
//! The `Send + Sync` bound is load-bearing: the runner shares one backend
//! reference across its scoped worker threads.

use crate::model::{GenRequest, Generation, SimLlm};
use fisql_sqlkit::{EditOp, OpClass, Query};

/// The three roles the paper prompts its LLM for (§3.2-3.3), plus the
/// calibration surface the pipeline consults when deciding how reliably
/// an edit will be applied.
///
/// Implementations must be deterministic for a fixed input (the
/// evaluation protocol depends on replayability); a stochastic backend
/// should derive its sampling from the call arguments, as [`SimLlm`]
/// does from `(seed, example_id, salt)`.
pub trait LanguageModel: Send + Sync {
    /// NL2SQL generation (role 1, Figure 1/6 prompts).
    fn generate_sql(&self, req: &GenRequest<'_>) -> Generation;

    /// Feedback-type identification (role 2, §3.3).
    fn classify_feedback(&self, utterance: &str, salt: u64) -> OpClass;

    /// The Query Rewrite baseline's paraphrasing step (§4.1).
    fn rewrite_question(&self, question: &str, feedback: &str) -> String;

    /// Success probability of applying a feedback edit, given whether
    /// routed (type-matched) demonstrations are in context and whether
    /// they were selected dynamically.
    fn edit_success_prob(&self, routed: bool, dynamic: bool) -> f64;

    /// Reliability multiplier for a concrete set of edits (literal swaps
    /// are easy, structural changes are hard).
    fn edit_complexity_factor(&self, edits: &[EditOp]) -> f64;

    /// Applies interpreted feedback edits to the previous query with an
    /// explicit success probability (role 3).
    fn apply_feedback_edit_with_prob(
        &self,
        previous: &Query,
        edits: &[EditOp],
        p: f64,
        example_id: usize,
        salt: u64,
    ) -> Query;
}

impl LanguageModel for SimLlm {
    fn generate_sql(&self, req: &GenRequest<'_>) -> Generation {
        SimLlm::generate_sql(self, req)
    }

    fn classify_feedback(&self, utterance: &str, salt: u64) -> OpClass {
        SimLlm::classify_feedback(self, utterance, salt)
    }

    fn rewrite_question(&self, question: &str, feedback: &str) -> String {
        SimLlm::rewrite_question(self, question, feedback)
    }

    fn edit_success_prob(&self, routed: bool, dynamic: bool) -> f64 {
        SimLlm::edit_success_prob(self, routed, dynamic)
    }

    fn edit_complexity_factor(&self, edits: &[EditOp]) -> f64 {
        SimLlm::edit_complexity_factor(self, edits)
    }

    fn apply_feedback_edit_with_prob(
        &self,
        previous: &Query,
        edits: &[EditOp],
        p: f64,
        example_id: usize,
        salt: u64,
    ) -> Query {
        SimLlm::apply_feedback_edit_with_prob(self, previous, edits, p, example_id, salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GenMode, LlmConfig};
    use fisql_spider::{build_aep, AepConfig};

    fn assert_model<L: LanguageModel>(_: &L) {}

    #[test]
    fn sim_llm_satisfies_the_trait_and_agrees_with_inherent_methods() {
        let llm = SimLlm::new(LlmConfig::default());
        assert_model(&llm);
        let dynamic: &dyn LanguageModel = &llm;

        let corpus = build_aep(&AepConfig {
            n_examples: 3,
            seed: 21,
        });
        let req = GenRequest {
            example: &corpus.examples[0],
            demos: 0,
            hint_text: "",
            salt: 0,
            mode: GenMode::Initial,
        };
        assert_eq!(
            dynamic.generate_sql(&req).query,
            llm.generate_sql(&req).query
        );
        assert_eq!(
            dynamic.classify_feedback("we are in 2024", 0),
            llm.classify_feedback("we are in 2024", 0)
        );
        assert_eq!(
            dynamic.rewrite_question("how many?", "we are in 2024"),
            llm.rewrite_question("how many?", "we are in 2024")
        );
        assert_eq!(
            dynamic.edit_success_prob(true, false),
            llm.edit_success_prob(true, false)
        );
    }
}
