//! Hashed bag-of-words embeddings.
//!
//! The paper's Assistant uses a RAG pipeline to "adaptively draw user
//! query-relevant SQL demonstrations" (§3.2). Standing in for the
//! proprietary embedding service is a classic feature-hashing bag-of-words
//! vectorizer: deterministic, dependency-free, and good enough to rank
//! demonstrations by lexical relatedness — which is what demonstration
//! retrieval for NL2SQL largely reduces to.

/// Embedding dimensionality.
pub const DIM: usize = 256;

/// A dense embedding vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding(pub [f32; DIM]);

impl Embedding {
    /// Embeds a text by hashing lower-cased alphanumeric tokens into
    /// [`DIM`] buckets (with a sign hash to reduce collision bias) and
    /// L2-normalizing.
    pub fn embed(text: &str) -> Embedding {
        let mut v = [0f32; DIM];
        for token in tokenize(text) {
            let h = fnv1a(token.as_bytes());
            let bucket = (h % DIM as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[bucket] += sign;
        }
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        Embedding(v)
    }

    /// Cosine similarity (vectors are unit-norm, so this is a dot
    /// product). Empty texts embed to the zero vector and score 0 against
    /// everything.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum()
    }
}

/// Lower-cased alphanumeric tokens plus word bigrams (bigrams let
/// "release year" match "song_release_year" better than unigrams alone).
pub fn tokenize(text: &str) -> Vec<String> {
    let unigrams: Vec<String> = text
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect();
    let mut tokens = unigrams.clone();
    for w in unigrams.windows(2) {
        tokens.push(format!("{}_{}", w[0], w[1]));
    }
    tokens
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_have_similarity_one() {
        let a = Embedding::embed("how many singers are there");
        let b = Embedding::embed("how many singers are there");
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn related_texts_beat_unrelated() {
        let q = Embedding::embed("how many audiences were created in January");
        let related = Embedding::embed("count the audiences created in February");
        let unrelated = Embedding::embed("average salary of pilots by airline");
        assert!(q.cosine(&related) > q.cosine(&unrelated));
    }

    #[test]
    fn case_and_punctuation_insensitive() {
        let a = Embedding::embed("List the NAMES, of singers!");
        let b = Embedding::embed("list the names of singers");
        assert!(a.cosine(&b) > 0.8);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let z = Embedding::embed("");
        let a = Embedding::embed("anything");
        assert_eq!(z.cosine(&a), 0.0);
        assert_eq!(z.cosine(&z), 0.0);
    }

    #[test]
    fn tokenizer_emits_bigrams() {
        let toks = tokenize("release year");
        assert!(toks.contains(&"release_year".to_string()));
    }

    #[test]
    fn underscores_split_identifiers() {
        let toks = tokenize("song_release_year");
        assert!(toks.contains(&"release".to_string()));
        assert!(toks.contains(&"song_release".to_string()));
    }
}
