//! Prompt construction, mirroring the paper's Figures 1, 5, and 6.
//!
//! Even though the backing model is simulated, the full prompt text is
//! built and threaded through every call: the pipeline stays faithful to
//! the paper end-to-end, prompt-construction bugs are testable, and the
//! prompts double as documentation of the method.

use crate::retrieval::Demonstration;
use fisql_engine::Database;
use fisql_sqlkit::OpClass;

/// The zero-shot NL2SQL prompt of Figure 1: generic instructions plus full
/// schema definitions, no in-context examples.
pub fn zero_shot_prompt(db: &Database, question: &str) -> String {
    format!(
        "You are an expert SQL assistant. Given the database schema below, \
         write a single SQL query that answers the user question. \
         Return only the SQL query.\n\n\
         Schema:\n{}\n\
         Question: {question}\n\
         Query:",
        db.schema_text()
    )
}

/// The few-shot NL2SQL prompt: Figure 1's skeleton extended with RAG
/// demonstrations (§3.2).
pub fn few_shot_prompt(db: &Database, demos: &[&Demonstration], question: &str) -> String {
    let mut out = String::from(
        "You are an expert SQL assistant. Given the database schema below, \
         write a single SQL query that answers the user question. \
         Return only the SQL query.\n\n",
    );
    out.push_str("Schema:\n");
    out.push_str(&db.schema_text());
    if !demos.is_empty() {
        out.push_str("\nHere are some examples:\n");
        for d in demos {
            out.push_str(&format!("Question: {}\nQuery: {}\n\n", d.question, d.sql));
        }
    }
    out.push_str(&format!("Question: {question}\nQuery:"));
    out
}

/// One feedback demonstration, rendered in the Figure 5 format.
pub fn feedback_demo(question: &str, query: &str, feedback: &str, revised: &str) -> String {
    format!(
        "Question: {question}\n\
         Query: {query}\n\
         The SQL query you have generated has received the following feedback: {feedback}\n\
         Taking into account the feedback, please rewrite the SQL query.\n\
         Query: {revised}\n"
    )
}

/// The feedback-incorporation prompt of Figure 6: the standard NL2SQL
/// prompt minimally extended with the previous query and the user
/// feedback. `type_demos` are the routed demonstrations for the predicted
/// feedback type (§3.3); pass an empty slice for the FISQL(−Routing)
/// ablation.
pub fn feedback_prompt(
    db: &Database,
    rag_demos: &[&Demonstration],
    type_demos: &[String],
    question: &str,
    previous_query: &str,
    feedback: &str,
) -> String {
    let mut out = String::from(
        "You are an expert SQL assistant. Given the database schema below, \
         write a single SQL query that answers the user question. \
         Return only the SQL query.\n\n",
    );
    out.push_str("Schema:\n");
    out.push_str(&db.schema_text());
    if !rag_demos.is_empty() || !type_demos.is_empty() {
        out.push_str("\nHere are some examples:\n");
        for d in rag_demos {
            out.push_str(&format!("Question: {}\nQuery: {}\n\n", d.question, d.sql));
        }
        for d in type_demos {
            out.push_str(d);
            out.push('\n');
        }
    }
    out.push_str(&format!(
        "Here is the question you need to answer:\n\
         Question: {question}\n\
         Query: {previous_query}\n\
         The SQL query you have generated has received the following feedback: {feedback}\n\
         Taking into account the feedback, please rewrite the SQL query.\n\
         Query:"
    ));
    out
}

/// The feedback-type identification prompt (§3.3): few-shot
/// classification of feedback into Add / Remove / Edit, with the paper's
/// Table 1 examples as demonstrations.
pub fn router_prompt(feedback: &str) -> String {
    format!(
        "Classify the user feedback on a SQL query into one of three \
         operation types: Add (the feedback suggests adding a SQL \
         operation), Remove (the feedback suggests removing a SQL \
         operation), or Edit (the feedback updates arguments of an \
         existing SQL operation).\n\n\
         Feedback: order the names in ascending order.\nType: Add\n\n\
         Feedback: do not give descriptions\nType: Remove\n\n\
         Feedback: we are in 2024\nType: Edit\n\n\
         Feedback: {feedback}\nType:"
    )
}

/// The query-rewrite prompt (§4.1 baseline): a paraphrasing model merges
/// the original question and the feedback into one refreshed question.
pub fn rewrite_prompt(question: &str, feedback: &str) -> String {
    format!(
        "Rewrite the user's question so that it also reflects their \
         follow-up feedback. Return a single self-contained question.\n\n\
         Question: how many audiences were created in January?\n\
         Feedback: we are in 2024\n\
         Rewritten: how many audiences were created in January 2024?\n\n\
         Question: {question}\n\
         Feedback: {feedback}\n\
         Rewritten:"
    )
}

/// Folds a static-analysis diagnostic report into a regeneration prompt.
///
/// When `core::pipeline`'s analyzer gate finds error-severity problems in
/// a candidate query, the rendered report (see
/// `fisql_sqlkit::check::render_report`) is appended to the prompt so the
/// next regeneration sees exactly which names or clauses were invalid and
/// what the nearest schema-valid alternatives are.
pub fn diagnostics_addendum(report: &str) -> String {
    format!(
        "\n\nThe candidate SQL has schema problems found by static \
         analysis. Fix them in your revision:\n{report}"
    )
}

/// Folds a feedback-conformance diagnostic into a regeneration prompt.
///
/// When the conformance gate in `core::pipeline` finds that the edit
/// class realized by a candidate (per `fisql_sqlkit::diff_queries`)
/// disagrees with the routed feedback type, this addendum tells the
/// re-prompted model what kind of change the feedback called for and what
/// the candidate actually did.
pub fn conformance_addendum(routed: &str, realized: &[String]) -> String {
    let did = if realized.is_empty() {
        "made no change to the query".to_string()
    } else {
        format!("realized {} operations instead", realized.join(", "))
    };
    format!(
        "\n\nThe feedback calls for a {routed}-type revision, but your \
         candidate {did}. Regenerate so the revision actually applies a \
         {routed} operation to the previous SQL."
    )
}

/// The fixed demonstration set retrieved for each routed feedback type
/// (§3.3: "we retrieve a fixed set of examples that illustrate how to
/// revise SQL queries based on the predicted feedback type").
pub fn type_demonstrations(class: OpClass) -> Vec<String> {
    match class {
        OpClass::Add => vec![
            feedback_demo(
                "List the names of all customers.",
                "SELECT name FROM customer",
                "order the names in ascending order.",
                "SELECT name FROM customer ORDER BY name ASC",
            ),
            feedback_demo(
                "Show products in the toys category.",
                "SELECT product_name FROM product",
                "only include products in the toys category",
                "SELECT product_name FROM product WHERE category = 'Toys'",
            ),
        ],
        OpClass::Remove => vec![
            feedback_demo(
                "List the names of employees.",
                "SELECT name, description FROM employee",
                "do not give descriptions",
                "SELECT name FROM employee",
            ),
            feedback_demo(
                "How many orders are there?",
                "SELECT COUNT(*) FROM order_record WHERE status = 'open'",
                "count all orders, not just open ones",
                "SELECT COUNT(*) FROM order_record",
            ),
        ],
        OpClass::Edit => vec![
            feedback_demo(
                "how many audiences were created in January?",
                "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment \
                 WHERE createdTime >= '2023-01-01' and createdTime < '2023-02-01'",
                "we are in 2024",
                "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment \
                 WHERE createdTime >= '2024-01-01' and createdTime < '2024-02-01'",
            ),
            feedback_demo(
                "Show the name and the release year of the song by the youngest singer.",
                "SELECT Name, Song_release_year FROM singer \
                 WHERE Age = (SELECT min(Age) FROM singer)",
                "Provide song name instead of singer name",
                "SELECT Song_Name, Song_release_year FROM singer \
                 WHERE Age = (SELECT min(Age) FROM singer)",
            ),
        ],
        OpClass::Rewrite => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_engine::{Column, DataType, Table};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.add_table(Table::new(
            "singer",
            vec![
                Column::new("singer_id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
        ));
        db
    }

    #[test]
    fn zero_shot_contains_schema_and_question() {
        let p = zero_shot_prompt(&db(), "how many singers?");
        assert!(p.contains("CREATE TABLE singer"));
        assert!(p.contains("how many singers?"));
        assert!(!p.contains("examples"), "zero-shot must carry no demos");
    }

    #[test]
    fn feedback_prompt_matches_figure6_shape() {
        let p = feedback_prompt(
            &db(),
            &[],
            &[],
            "how many audiences were created in January?",
            "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdTime >= '2023-01-01'",
            "we are in 2024",
        );
        assert!(p.contains("has received the following feedback: we are in 2024"));
        assert!(p.contains("Taking into account the feedback, please rewrite the SQL query."));
    }

    #[test]
    fn router_prompt_carries_table1_examples() {
        let p = router_prompt("change to 2024");
        assert!(p.contains("order the names in ascending order."));
        assert!(p.contains("do not give descriptions"));
        assert!(p.contains("we are in 2024"));
        assert!(p.ends_with("Type:"));
    }

    #[test]
    fn type_demos_exist_for_all_three_classes() {
        for class in [OpClass::Add, OpClass::Remove, OpClass::Edit] {
            assert!(!type_demonstrations(class).is_empty());
        }
        assert!(type_demonstrations(OpClass::Rewrite).is_empty());
    }
}
