//! # fisql-llm
//!
//! Simulated-LLM substrate for the FISQL reproduction.
//!
//! The paper builds on OpenAI's `gpt-3.5-turbo-1106`, which cannot run in
//! this offline reproduction. This crate replaces it with [`SimLlm`]: a
//! deterministic, seeded model that plays the same three roles the paper
//! prompts GPT for — NL2SQL generation, feedback-type classification, and
//! feedback-conditioned regeneration — behind the *same prompts* (built
//! verbatim per the paper's Figures 1, 5, and 6 by [`prompt`]).
//!
//! The substitution argument (DESIGN.md §2): the paper's claims concern
//! the pipeline *around* the LLM — routing plus demonstrations plus
//! feedback context versus query rewriting — not GPT-3.5 itself. A
//! calibrated comprehension model reproduces the shape of every reported
//! number while keeping each pipeline stage real and testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod backend;
pub mod cache;
pub mod calibration;
pub mod embedding;
pub mod error;
pub mod faults;
pub mod model;
pub mod prompt;
pub mod resilience;
pub mod retrieval;
pub mod routing_pool;

pub use agreement::{routing_alignment, AgreementStats};
pub use backend::{FallibleLanguageModel, LanguageModel};
pub use cache::{CacheStats, ConcurrentCache};
pub use calibration::Calibration;
pub use embedding::Embedding;
pub use error::{BackendError, BackendResult, ExhaustedReason};
pub use faults::{FaultConfig, FaultyBackend, FAULT_RATE_ENV};
pub use model::{
    channel_resolved_by_text, keyword_route, GenMode, GenRequest, Generation, LlmConfig, SimLlm,
};
pub use resilience::{BreakerState, ResilienceConfig, ResilienceStats, Resilient};
pub use retrieval::{DemoStore, Demonstration};
pub use routing_pool::{clause_inventory, ClauseKind, FeedbackDemo, RoutingPool};
