//! Concurrent memoization for the hot retrieval/embedding paths.
//!
//! The parallel evaluation runner replays the same feedback texts,
//! questions, and routed-demo lookups across strategies, rounds, and
//! worker threads. Embedding a text and ranking a demonstration pool are
//! pure functions of their inputs, so this module memoizes them behind an
//! `RwLock`-guarded map shared across threads.
//!
//! **Determinism.** Cached values are computed by pure functions of the
//! key, so a cache hit returns bit-identical data to a recomputation; two
//! racing threads that both miss compute identical values and the first
//! insert wins. Results therefore never depend on thread count or
//! interleaving — only the hit/miss *counters* do, which is why the
//! runner reports them as volatile throughput metrics rather than as part
//! of the deterministic [`CorrectionReport`](../../fisql_core/experiment/struct.CorrectionReport.html).

use crate::embedding::Embedding;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Cumulative cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a recomputation.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter delta since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters aggregated over every [`ConcurrentCache`]
/// (embedding cache, routed-demo caches, …). Snapshot before and after a
/// run and diff with [`CacheStats::since`] to get per-run numbers.
pub fn global_stats() -> CacheStats {
    CacheStats {
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_MISSES.load(Ordering::Relaxed),
    }
}

/// A thread-safe memo map with hit/miss accounting.
///
/// Reads take a shared lock; only first-time computations take the write
/// lock. Values must be cheap to clone (wrap big payloads in [`Arc`]).
#[derive(Debug, Default)]
pub struct ConcurrentCache<K, V> {
    map: RwLock<HashMap<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> ConcurrentCache<K, V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ConcurrentCache {
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, recording a hit or miss.
    ///
    /// Poison-tolerant: cache entries are pure-function results, so a
    /// panic on another thread mid-insert cannot leave a torn value —
    /// at worst a key is missing, which is just a miss. Propagating the
    /// poison would instead cascade one worker's panic into every
    /// cache user.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let got = self
            .map
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(key)
            .cloned();
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Inserts a computed value. If another thread raced the computation
    /// the existing (identical, by purity of the compute function) value
    /// is kept.
    pub fn insert(&self, key: K, value: V) {
        self.map
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .entry(key)
            .or_insert(value);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// This cache's own hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

fn embed_cache() -> &'static ConcurrentCache<String, Arc<Embedding>> {
    static CACHE: OnceLock<ConcurrentCache<String, Arc<Embedding>>> = OnceLock::new();
    CACHE.get_or_init(ConcurrentCache::new)
}

/// [`Embedding::embed`] memoized process-wide.
///
/// Questions and feedback texts recur heavily across strategies, rounds,
/// and repeated runs (every strategy re-embeds the same annotated
/// feedback set), so the embedding cache is shared by all stores and
/// pools in the process.
pub fn embed_cached(text: &str) -> Arc<Embedding> {
    let cache = embed_cache();
    if let Some(hit) = cache.get(text) {
        return hit;
    }
    let computed = Arc::new(Embedding::embed(text));
    cache.insert(text.to_string(), computed.clone());
    computed
}

/// Stats of the process-wide embedding cache alone.
pub fn embedding_cache_stats() -> CacheStats {
    embed_cache().stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_embedding_matches_direct_computation() {
        let direct = Embedding::embed("how many singers are there");
        let cached = embed_cached("how many singers are there");
        assert_eq!(*cached, direct);
        // Warm lookup returns the identical vector.
        let warm = embed_cached("how many singers are there");
        assert_eq!(*warm, direct);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache: ConcurrentCache<String, u64> = ConcurrentCache::new();
        assert_eq!(cache.get("a"), None);
        cache.insert("a".into(), 7);
        assert_eq!(cache.get("a"), Some(7));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn racing_inserts_keep_first_value() {
        let cache: ConcurrentCache<u32, u32> = ConcurrentCache::new();
        cache.insert(1, 10);
        cache.insert(1, 99); // late duplicate (identical in real use)
        assert_eq!(cache.get(&1), Some(10));
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        let cache: Arc<ConcurrentCache<u64, u64>> = Arc::new(ConcurrentCache::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for k in 0..50u64 {
                        if cache.get(&k).is_none() {
                            cache.insert(k, k * k);
                        }
                        assert_eq!(cache.get(&k), Some(k * k));
                    }
                    t
                });
            }
        });
        assert_eq!(cache.len(), 50);
    }

    #[test]
    fn stats_since_subtracts_snapshots() {
        let before = CacheStats { hits: 3, misses: 5 };
        let after = CacheStats {
            hits: 10,
            misses: 6,
        };
        let delta = after.since(&before);
        assert_eq!(delta, CacheStats { hits: 7, misses: 1 });
    }
}
