//! Dynamic feedback-demonstration selection (the paper's §5 future work:
//! "our routing mechanism can be enhanced with dynamic example selection
//! based on query structure and feedback").
//!
//! Instead of the *fixed* per-type demonstration set of §3.3
//! ([`crate::prompt::type_demonstrations`]), a [`RoutingPool`] holds a
//! larger library of feedback demonstrations tagged by operation type and
//! the clause they touch, and selects the `k` most relevant ones by
//! similarity between the incoming feedback (plus the previous query's
//! clause inventory) and each demonstration.

use crate::cache::{embed_cached, CacheStats, ConcurrentCache};
use crate::embedding::Embedding;
use crate::prompt::feedback_demo;
use fisql_sqlkit::{OpClass, Query};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which clause a feedback demonstration is about (coarse; used as a
/// structure signal alongside the text similarity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ClauseKind {
    Select,
    From,
    Where,
    GroupHaving,
    OrderLimit,
    Distinct,
}

/// One feedback demonstration in the pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedbackDemo {
    /// The demonstration's question.
    pub question: String,
    /// The pre-feedback SQL.
    pub query: String,
    /// The user feedback text.
    pub feedback: String,
    /// The revised SQL.
    pub revised: String,
    /// Operation type.
    pub class: OpClass,
    /// Clause touched.
    pub clause: ClauseKind,
}

impl FeedbackDemo {
    /// Renders in the Figure 5 prompt format.
    pub fn render(&self) -> String {
        feedback_demo(&self.question, &self.query, &self.feedback, &self.revised)
    }
}

/// Memo key for one dynamic selection: routed class, feedback text,
/// clause-inventory bitmask of the previous query, and `k`.
type SelectKey = (OpClass, String, u8, usize);

/// A library of feedback demonstrations with dynamic selection.
///
/// Selections are memoized in a concurrent cache shared by all clones of
/// the pool: the multi-round correction protocol re-selects for the same
/// `(class, feedback, clause shape)` triple every round and across every
/// worker thread, and selection is a pure function of the key.
#[derive(Debug, Clone)]
pub struct RoutingPool {
    demos: Vec<FeedbackDemo>,
    embeddings: Vec<Embedding>,
    select_cache: Arc<ConcurrentCache<SelectKey, Vec<String>>>,
}

impl RoutingPool {
    /// Builds a pool, embedding each demonstration's feedback text.
    pub fn new(demos: Vec<FeedbackDemo>) -> Self {
        let embeddings = demos
            .iter()
            .map(|d| Embedding::embed(&d.feedback))
            .collect();
        RoutingPool {
            demos,
            embeddings,
            select_cache: Arc::new(ConcurrentCache::new()),
        }
    }

    /// Hit/miss counters of this pool's selection cache (shared across
    /// clones).
    pub fn select_cache_stats(&self) -> CacheStats {
        self.select_cache.stats()
    }

    /// The built-in library: the fixed §3.3 demonstrations plus a wider
    /// spread across clause kinds.
    pub fn builtin() -> Self {
        use ClauseKind::*;
        use OpClass::*;
        let mk = |question: &str,
                  query: &str,
                  feedback: &str,
                  revised: &str,
                  class: OpClass,
                  clause: ClauseKind| FeedbackDemo {
            question: question.to_string(),
            query: query.to_string(),
            feedback: feedback.to_string(),
            revised: revised.to_string(),
            class,
            clause,
        };
        RoutingPool::new(vec![
            mk(
                "List the names of all customers.",
                "SELECT name FROM customer",
                "order the names in ascending order.",
                "SELECT name FROM customer ORDER BY name ASC",
                Add,
                OrderLimit,
            ),
            mk(
                "Show the best-rated restaurants.",
                "SELECT name FROM restaurant ORDER BY rating DESC",
                "only show the top 5",
                "SELECT name FROM restaurant ORDER BY rating DESC LIMIT 5",
                Add,
                OrderLimit,
            ),
            mk(
                "Show products in the toys category.",
                "SELECT product_name FROM product",
                "only include products in the toys category",
                "SELECT product_name FROM product WHERE category = 'Toys'",
                Add,
                Where,
            ),
            mk(
                "List all the cities we ship to.",
                "SELECT city FROM shipment",
                "remove duplicate rows from the answer",
                "SELECT DISTINCT city FROM shipment",
                Add,
                Distinct,
            ),
            mk(
                "Show each customer's orders.",
                "SELECT name FROM customer",
                "you need to bring in the order information",
                "SELECT customer.name, order_record.order_id FROM customer \
                 JOIN order_record ON customer.customer_id = order_record.customer_id",
                Add,
                From,
            ),
            mk(
                "List the names of employees.",
                "SELECT name, description FROM employee",
                "do not give descriptions",
                "SELECT name FROM employee",
                Remove,
                Select,
            ),
            mk(
                "How many orders are there?",
                "SELECT COUNT(*) FROM order_record WHERE status = 'open'",
                "count all orders, not just open ones",
                "SELECT COUNT(*) FROM order_record",
                Remove,
                Where,
            ),
            mk(
                "List players by score.",
                "SELECT name FROM player ORDER BY score DESC LIMIT 10",
                "no need to sort the results",
                "SELECT name FROM player",
                Remove,
                OrderLimit,
            ),
            mk(
                "how many audiences were created in January?",
                "SELECT COUNT(*) FROM hkg_dim_segment \
                 WHERE createdTime >= '2023-01-01' and createdTime < '2023-02-01'",
                "we are in 2024",
                "SELECT COUNT(*) FROM hkg_dim_segment \
                 WHERE createdTime >= '2024-01-01' and createdTime < '2024-02-01'",
                Edit,
                Where,
            ),
            mk(
                "Show the name and the release year of the song by the youngest singer.",
                "SELECT Name, Song_release_year FROM singer \
                 WHERE Age = (SELECT min(Age) FROM singer)",
                "Provide song name instead of singer name",
                "SELECT Song_Name, Song_release_year FROM singer \
                 WHERE Age = (SELECT min(Age) FROM singer)",
                Edit,
                Select,
            ),
            mk(
                "How many sessions ran yesterday?",
                "SELECT COUNT(*) FROM session_log WHERE duration > 100",
                "it should be 500",
                "SELECT COUNT(*) FROM session_log WHERE duration > 500",
                Edit,
                Where,
            ),
            mk(
                "Which stores stock this item?",
                "SELECT store_name FROM warehouse",
                "use store instead of warehouse",
                "SELECT store_name FROM store",
                Edit,
                From,
            ),
            mk(
                "Which countries have more than 3 singers?",
                "SELECT country, COUNT(*) FROM singer GROUP BY country HAVING COUNT(*) > 5",
                "the threshold should be 3",
                "SELECT country, COUNT(*) FROM singer GROUP BY country HAVING COUNT(*) > 3",
                Edit,
                GroupHaving,
            ),
            mk(
                "Sort the singers from oldest to youngest.",
                "SELECT name FROM singer ORDER BY age ASC",
                "sort by age (descending)",
                "SELECT name FROM singer ORDER BY age DESC",
                Edit,
                OrderLimit,
            ),
        ])
    }

    /// Number of demonstrations in the pool.
    pub fn len(&self) -> usize {
        self.demos.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.demos.is_empty()
    }

    /// Selects the `k` rendered demonstrations most relevant to the
    /// routed class, the feedback text, and the previous query's clause
    /// inventory. Scoring: text cosine + structure bonus when the
    /// demonstration's clause exists in the previous query, restricted to
    /// the routed class (falling back to all classes when the class has
    /// no demos).
    pub fn select(
        &self,
        class: OpClass,
        feedback: &str,
        previous: &Query,
        k: usize,
    ) -> Vec<String> {
        if k == 0 || self.demos.is_empty() {
            return Vec::new();
        }
        let present = clause_inventory(previous);
        let key: SelectKey = (class, feedback.to_string(), inventory_bits(&present), k);
        if let Some(cached) = self.select_cache.get(&key) {
            return cached;
        }
        let fb = embed_cached(feedback);
        let scored = |restrict: bool| {
            let mut v: Vec<(usize, f32)> = self
                .demos
                .iter()
                .enumerate()
                .filter(|(_, d)| !restrict || d.class == class)
                .map(|(i, d)| {
                    let text = fb.cosine(&self.embeddings[i]);
                    let structure = if present.contains(&d.clause) {
                        0.25
                    } else {
                        0.0
                    };
                    (i, text + structure)
                })
                .collect();
            v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            v
        };
        let mut ranked = scored(true);
        if ranked.is_empty() {
            ranked = scored(false);
        }
        let picked: Vec<String> = ranked
            .into_iter()
            .take(k)
            .map(|(i, _)| self.demos[i].render())
            .collect();
        self.select_cache.insert(key, picked.clone());
        picked
    }
}

/// Packs a clause inventory into a stable bitmask for cache keying.
fn inventory_bits(present: &[ClauseKind]) -> u8 {
    present.iter().fold(0u8, |acc, kind| {
        acc | match kind {
            ClauseKind::Select => 1 << 0,
            ClauseKind::From => 1 << 1,
            ClauseKind::Where => 1 << 2,
            ClauseKind::GroupHaving => 1 << 3,
            ClauseKind::OrderLimit => 1 << 4,
            ClauseKind::Distinct => 1 << 5,
        }
    })
}

/// The clause kinds present in a query (which clauses feedback could be
/// about).
pub fn clause_inventory(q: &Query) -> Vec<ClauseKind> {
    let mut out = vec![ClauseKind::Select, ClauseKind::From];
    if q.core.where_clause.is_some() {
        out.push(ClauseKind::Where);
    }
    if !q.core.group_by.is_empty() || q.core.having.is_some() {
        out.push(ClauseKind::GroupHaving);
    }
    if !q.order_by.is_empty() || q.limit.is_some() {
        out.push(ClauseKind::OrderLimit);
    }
    if q.core.distinct {
        out.push(ClauseKind::Distinct);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_sqlkit::parse_query;

    #[test]
    fn builtin_pool_covers_all_classes_and_clauses() {
        let pool = RoutingPool::builtin();
        assert!(pool.len() >= 12);
        for class in [OpClass::Add, OpClass::Remove, OpClass::Edit] {
            assert!(
                pool.demos.iter().any(|d| d.class == class),
                "no demo for {class}"
            );
        }
        for clause in [
            ClauseKind::Select,
            ClauseKind::From,
            ClauseKind::Where,
            ClauseKind::OrderLimit,
        ] {
            assert!(
                pool.demos.iter().any(|d| d.clause == clause),
                "no demo for {clause:?}"
            );
        }
    }

    #[test]
    fn selection_prefers_similar_feedback() {
        let pool = RoutingPool::builtin();
        let q =
            parse_query("SELECT COUNT(*) FROM hkg_dim_segment WHERE createdTime >= '2023-01-01'")
                .unwrap();
        let picked = pool.select(OpClass::Edit, "we are in 2025", &q, 2);
        assert_eq!(picked.len(), 2);
        assert!(
            picked[0].contains("we are in 2024"),
            "year demo should rank first:\n{}",
            picked[0]
        );
    }

    #[test]
    fn selection_respects_routed_class() {
        let pool = RoutingPool::builtin();
        let q = parse_query("SELECT name FROM customer").unwrap();
        let picked = pool.select(OpClass::Remove, "do not show the address", &q, 3);
        assert!(!picked.is_empty());
        // Every selected demo is a Remove-type demo (they all came from
        // the Remove shelf, whose rendered texts we can spot-check).
        assert!(picked
            .iter()
            .any(|p| p.contains("do not give descriptions")));
    }

    #[test]
    fn structure_bonus_prefers_clauses_present_in_query() {
        let pool = RoutingPool::builtin();
        let with_order = parse_query("SELECT name FROM t ORDER BY name ASC").unwrap();
        let picked = pool.select(
            OpClass::Remove,
            "that last bit is unnecessary",
            &with_order,
            1,
        );
        // With no lexical overlap the structure bonus decides; the query
        // has ORDER BY, so an OrderLimit demo should surface.
        assert!(
            picked[0].contains("no need to sort") || picked[0].contains("ORDER BY"),
            "{}",
            picked[0]
        );
    }

    #[test]
    fn cached_selection_matches_fresh_selection() {
        let pool = RoutingPool::builtin();
        let q =
            parse_query("SELECT COUNT(*) FROM hkg_dim_segment WHERE createdTime >= '2023-01-01'")
                .unwrap();
        let before = pool.select_cache_stats();
        let cold = pool.select(OpClass::Edit, "we are in 2025", &q, 2);
        let warm = pool.select(OpClass::Edit, "we are in 2025", &q, 2);
        assert_eq!(cold, warm, "memoized selection must be identical");
        let delta = pool.select_cache_stats().since(&before);
        assert_eq!((delta.hits, delta.misses), (1, 1));
        // A fresh, cache-cold pool agrees too.
        assert_eq!(
            RoutingPool::builtin().select(OpClass::Edit, "we are in 2025", &q, 2),
            cold
        );
    }

    #[test]
    fn clones_share_the_selection_cache() {
        let pool = RoutingPool::builtin();
        let q = parse_query("SELECT name FROM customer").unwrap();
        let clone = pool.clone();
        let from_original = pool.select(OpClass::Remove, "drop the address", &q, 2);
        let before = clone.select_cache_stats();
        let from_clone = clone.select(OpClass::Remove, "drop the address", &q, 2);
        assert_eq!(from_original, from_clone);
        assert_eq!(clone.select_cache_stats().since(&before).hits, 1);
    }

    #[test]
    fn empty_k_or_pool_is_safe() {
        let pool = RoutingPool::new(vec![]);
        let q = parse_query("SELECT 1").unwrap();
        assert!(pool.is_empty());
        assert!(pool.select(OpClass::Edit, "x", &q, 3).is_empty());
        assert!(RoutingPool::builtin()
            .select(OpClass::Edit, "x", &q, 0)
            .is_empty());
    }

    #[test]
    fn clause_inventory_reflects_query() {
        let q = parse_query(
            "SELECT DISTINCT a FROM t WHERE x = 1 GROUP BY a HAVING COUNT(*) > 1 \
             ORDER BY a ASC LIMIT 3",
        )
        .unwrap();
        let inv = clause_inventory(&q);
        for kind in [
            ClauseKind::Select,
            ClauseKind::From,
            ClauseKind::Where,
            ClauseKind::GroupHaving,
            ClauseKind::OrderLimit,
            ClauseKind::Distinct,
        ] {
            assert!(inv.contains(&kind), "{kind:?} missing");
        }
    }
}
